#!/bin/sh
# Offline CI gate: formatting, lints, docs, build, full test suite,
# and an end-to-end trace round-trip smoke.
# Run from the repository root; no network access required.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (no deps, warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test --workspace --release -q

echo "== trace round-trip smoke =="
# A live run's report and its offline reconstruction from the JSONL
# trace must agree line for line on the headline metrics and the
# counter block (see docs/OBSERVABILITY.md).
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/dbr simulate 2 8 --messages 5000 --metrics \
    --trace "$smoke_dir/run.jsonl" > "$smoke_dir/live.txt"
./target/release/dbr trace summary "$smoke_dir/run.jsonl" > "$smoke_dir/offline.txt"
for key in "delivered:" "mean hops:" "mean latency:" "max latency:" "messages:"; do
    live_line=$(grep -F "$key" "$smoke_dir/live.txt" | head -n 1)
    offline_line=$(grep -F "$key" "$smoke_dir/offline.txt" | head -n 1)
    if [ -z "$live_line" ] || [ "$live_line" != "$offline_line" ]; then
        echo "trace smoke mismatch for '$key':"
        echo "  live:    $live_line"
        echo "  offline: $offline_line"
        exit 1
    fi
done
echo "live report and offline reconstruction agree"

echo "== bench regression smoke =="
# Reruns the distance-engine bench and fails if any series regressed
# more than 30% against the checked-in BENCH_results.json.
sh bench.sh --check

echo "CI OK"
