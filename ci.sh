#!/bin/sh
# Offline CI gate: formatting, lints, docs, build, full test suite,
# and an end-to-end trace round-trip smoke.
# Run from the repository root; no network access required.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (no deps, warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test --workspace --release -q

echo "== trace round-trip smoke =="
# A live run's report and its offline reconstruction from the JSONL
# trace must agree line for line on the headline metrics and the
# counter block (see docs/OBSERVABILITY.md).
smoke_dir=$(mktemp -d)
listen_pid=""
trap 'if [ -n "${listen_pid:-}" ]; then kill "$listen_pid" 2>/dev/null || true; fi; rm -rf "$smoke_dir"' EXIT
./target/release/dbr simulate 2 8 --messages 5000 --metrics \
    --trace "$smoke_dir/run.jsonl" > "$smoke_dir/live.txt"
./target/release/dbr trace summary "$smoke_dir/run.jsonl" > "$smoke_dir/offline.txt"
for key in "delivered:" "dropped:" "mean hops:" "mean latency:" "max latency:" "messages:"; do
    live_line=$(grep -F "$key" "$smoke_dir/live.txt" | head -n 1)
    offline_line=$(grep -F "$key" "$smoke_dir/offline.txt" | head -n 1)
    if [ -z "$live_line" ] || [ "$live_line" != "$offline_line" ]; then
        echo "trace smoke mismatch for '$key':"
        echo "  live:    $live_line"
        echo "  offline: $offline_line"
        exit 1
    fi
done
echo "live report and offline reconstruction agree"

echo "== metrics scrape smoke =="
# A live run with --listen serves Prometheus text over loopback; the
# bound address (port 0: OS-assigned) is announced on stderr.
./target/release/dbr simulate 2 8 --messages 2000 --router alg2 \
    --listen 127.0.0.1:0 \
    > "$smoke_dir/listen.txt" 2> "$smoke_dir/listen.err" &
listen_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|^listening on http://\([^/]*\)/metrics$|\1|p' \
        "$smoke_dir/listen.err")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "scrape smoke: server never announced its address"
    cat "$smoke_dir/listen.err"
    exit 1
fi
# Poll until the run has finished (the endpoint serves during the run
# too, so early scrapes may see partial counts).
scrape_ok=""
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/metrics" > "$smoke_dir/scrape.txt" || true
    if grep -q '^dbr_sim_delivered_total 2000$' "$smoke_dir/scrape.txt"; then
        scrape_ok=1
        break
    fi
    sleep 0.1
done
if [ -z "$scrape_ok" ]; then
    echo "scrape smoke: dbr_sim_delivered_total never reached 2000"
    cat "$smoke_dir/scrape.txt"
    exit 1
fi
for family in "dbr_sim_injected_total 2000" "dbr_link_forward_total{" \
    "dbr_core_route_cache_total{" "dbr_core_engine_solves_total{"; do
    if ! grep -qF "$family" "$smoke_dir/scrape.txt"; then
        echo "scrape smoke: /metrics lacks '$family'"
        cat "$smoke_dir/scrape.txt"
        exit 1
    fi
done
curl -fsS "http://$addr/healthz" | grep -q ok
kill "$listen_pid" 2>/dev/null || true
wait "$listen_pid" 2>/dev/null || true
listen_pid=""
echo "loopback /metrics scrape serves the unified registry"

echo "== flight recorder round-trip smoke =="
# A faulty node provokes a drop burst; the dumped pre-anomaly window
# must parse through the offline trace toolkit with a per-reason drop
# breakdown.
./target/release/dbr simulate 2 6 --messages 400 --router alg2 \
    --faults 000000 --flight-recorder "$smoke_dir/flight.jsonl" \
    > "$smoke_dir/flight.txt"
grep -qF "flight recorder: " "$smoke_dir/flight.txt"
grep -qF "window dumped to" "$smoke_dir/flight.txt"
./target/release/dbr trace summary "$smoke_dir/flight.jsonl" \
    > "$smoke_dir/flight_summary.txt"
grep -qF "dropped (" "$smoke_dir/flight_summary.txt"
grep -qF "dropped:      " "$smoke_dir/flight_summary.txt"
echo "flight-recorder dump round-trips through dbr trace summary"

echo "== fault localization smoke =="
# One faulty node in a DG(2,8) zipf run; the identifying-code monitor
# placement must decode it exactly — live during the run and again
# offline from the recorded trace alone (see docs/OBSERVABILITY.md
# "Localizing faults").
./target/release/dbr simulate 2 8 --messages 4000 --workload zipf \
    --faults 00110101 --monitors identifying \
    --trace "$smoke_dir/localize.jsonl" > "$smoke_dir/localize_live.txt"
grep -qF "verdict:   exact — faulty node 00110101" "$smoke_dir/localize_live.txt"
./target/release/dbr localize 2 8 "$smoke_dir/localize.jsonl" \
    --monitors identifying > "$smoke_dir/localize.txt"
grep -qF "verdict:   exact — faulty node 00110101" "$smoke_dir/localize.txt"
echo "identifying-code monitors localize the injected fault exactly"

echo "== sharded determinism smoke =="
# The sharded simulator's contract: for the same seed, the CLI report,
# the JSONL trace, and the metrics block are byte-identical no matter
# how many shards and threads execute it (the in-crate tests cover the
# full grid; this drives it end to end through the CLI).
# Both runs write the same trace path so the printed reports (which
# name it) stay byte-comparable; the first trace is copied aside.
./target/release/dbr simulate 2 8 --messages 3000 --shards 1 --threads 1 \
    --metrics --trace "$smoke_dir/shard.jsonl" > "$smoke_dir/shard11.txt"
cp "$smoke_dir/shard.jsonl" "$smoke_dir/shard11.jsonl"
./target/release/dbr simulate 2 8 --messages 3000 --shards 4 --threads 4 \
    --metrics --trace "$smoke_dir/shard.jsonl" > "$smoke_dir/shard44.txt"
cmp "$smoke_dir/shard11.txt" "$smoke_dir/shard44.txt"
cmp "$smoke_dir/shard11.jsonl" "$smoke_dir/shard.jsonl"
echo "1 shard / 1 thread and 4 shards / 4 threads agree byte for byte"

echo "== next-hop tier smoke =="
# The compressed shift-prediction tier must reproduce the dense
# table's run byte for byte, across shard/thread counts, on a skewed
# workload (see docs/SCALING.md and ADR 0006).
./target/release/dbr simulate 2 8 --messages 3000 --workload zipf \
    --shards 1 --threads 1 --next-hop dense --metrics \
    > "$smoke_dir/tier_dense.txt"
./target/release/dbr simulate 2 8 --messages 3000 --workload zipf \
    --shards 4 --threads 4 --next-hop compressed --metrics \
    > "$smoke_dir/tier_compressed.txt"
cmp "$smoke_dir/tier_dense.txt" "$smoke_dir/tier_compressed.txt"
echo "dense 1x1 and compressed 4x4 agree byte for byte"

echo "== engine profiler smoke =="
# `dbr profile` must observe without perturbing: its headline report
# is byte-identical to an unprofiled `dbr simulate` of the same
# configuration, and the JSON export carries the documented schema
# (see docs/OBSERVABILITY.md "Profiling the engine").
./target/release/dbr simulate 2 6 --messages 2000 --shards 4 --threads 2 \
    --seed 7 > "$smoke_dir/plain.txt"
./target/release/dbr profile 2 6 --messages 2000 --shards 4 --threads 2 \
    --seed 7 --profile-out "$smoke_dir/profile.json" > "$smoke_dir/profiled.txt"
head -n 7 "$smoke_dir/plain.txt" > "$smoke_dir/plain_head.txt"
head -n 7 "$smoke_dir/profiled.txt" > "$smoke_dir/profiled_head.txt"
cmp "$smoke_dir/plain_head.txt" "$smoke_dir/profiled_head.txt"
grep -qF "== engine profile ==" "$smoke_dir/profiled.txt"
for key in '"schema": "dbr-engine-profile/v1"' '"phases": [' \
    '"critical_paths": [' '"imbalance": {' '"sampler": {'; do
    if ! grep -qF "$key" "$smoke_dir/profile.json"; then
        echo "profiler smoke: profile JSON lacks '$key'"
        cat "$smoke_dir/profile.json"
        exit 1
    fi
done
echo "profiled report matches the unprofiled run; profile JSON schema present"

echo "== query service smoke =="
# The thread-per-core query service end to end over loopback:
# concurrent keep-alive clients get correct answers, malformed queries
# get typed 400s, unknown endpoints 404, the scrape carries the
# dbr_service_* families, and /quitquitquit shuts down cleanly with an
# end-of-run metrics dump on stdout (see docs/OBSERVABILITY.md
# "Serving traffic").
./target/release/dbr serve 2 --listen 127.0.0.1:0 --threads 2 \
    > "$smoke_dir/serve.txt" 2> "$smoke_dir/serve.err" &
listen_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|^listening on http://\([^/]*\)/metrics$|\1|p' \
        "$smoke_dir/serve.err")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve smoke: server never announced its address"
    cat "$smoke_dir/serve.err"
    exit 1
fi
# Concurrent clients: every answer must be the engine's.
client_pids=""
for _ in 1 2 3 4; do
    {
        for _ in 1 2 3 4 5 6 7 8; do
            curl -fsS "http://$addr/distance?x=00000000&y=11111111"
            curl -fsS "http://$addr/route?x=00000000&y=11111111"
        done
    } > /dev/null &
    client_pids="$client_pids $!"
done
for pid in $client_pids; do
    wait "$pid" || { echo "serve smoke: a client batch failed"; exit 1; }
done
dist=$(curl -fsS "http://$addr/distance?x=00000000&y=11111111")
if [ "$dist" != "8" ]; then
    echo "serve smoke: distance(00000000,11111111) = '$dist', want 8"
    exit 1
fi
# Typed errors: bad digit -> 400 with a JSON kind, unknown path -> 404.
code=$(curl -s -o "$smoke_dir/serve_400.txt" -w '%{http_code}' \
    "http://$addr/distance?x=012&y=000")
[ "$code" = "400" ] || { echo "serve smoke: bad digit gave $code, want 400"; exit 1; }
grep -qF '"error":"bad-address"' "$smoke_dir/serve_400.txt"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/frobnicate")
[ "$code" = "404" ] || { echo "serve smoke: unknown path gave $code, want 404"; exit 1; }
# The scrape carries the service families with real counts.
curl -fsS "http://$addr/metrics" > "$smoke_dir/serve_scrape.txt"
for family in "dbr_service_requests_total{" "dbr_service_errors_total{" \
    "dbr_service_cache_total{" "dbr_service_latency_ns_count{"; do
    if ! grep -qF "$family" "$smoke_dir/serve_scrape.txt"; then
        echo "serve smoke: /metrics lacks '$family'"
        cat "$smoke_dir/serve_scrape.txt"
        exit 1
    fi
done
if ! grep -E '^dbr_service_requests_total\{[^}]*\} [1-9]' \
    "$smoke_dir/serve_scrape.txt" > /dev/null; then
    echo "serve smoke: dbr_service_requests_total never counted a request"
    exit 1
fi
curl -fsS "http://$addr/quitquitquit" | grep -q "shutting down"
wait "$listen_pid" || { echo "serve smoke: serve exited non-zero"; exit 1; }
listen_pid=""
# The end-of-run dump on stdout repeats the registry, cache stats
# included.
grep -qF "dbr_service_cache_total{" "$smoke_dir/serve.txt"
echo "query service answers, sheds typed errors, scrapes, and drains cleanly"

echo "== batched query kernel smoke =="
# Batch mode routes `route`/`distance` through the destination-major
# kernel (see docs/PERFORMANCE.md "Amortized destination-major
# evaluation"). On a mixed-destination file — hot sinks repeated across
# many sources plus singleton tails — its output must match one dbr
# invocation per pair, and must be byte-identical across --threads
# values (the chunk geometry, not the worker count, fixes the output).
batch_file="$smoke_dir/batch_pairs.txt"
: > "$batch_file"
for x in 00000000 01100110 10101010 11110000 00001111 11011011; do
    for y in 10110001 10110001 01001110 11111111; do
        printf '%s %s\n' "$x" "$y" >> "$batch_file"
    done
done
./target/release/dbr distance 2 --batch "$batch_file" > "$smoke_dir/batch_dist.txt"
: > "$smoke_dir/scalar_dist.txt"
while read -r x y; do
    ./target/release/dbr distance 2 "$x" "$y" >> "$smoke_dir/scalar_dist.txt"
done < "$batch_file"
cmp "$smoke_dir/batch_dist.txt" "$smoke_dir/scalar_dist.txt"
./target/release/dbr route 2 --batch "$batch_file" > "$smoke_dir/batch_route.txt"
: > "$smoke_dir/scalar_route.txt"
while read -r x y; do
    one=$(./target/release/dbr route 2 "$x" "$y")
    d=$(printf '%s\n' "$one" | sed -n 's/^distance: //p')
    r=$(printf '%s\n' "$one" | sed -n 's/^route:    //p')
    printf '%s %s\n' "$d" "$r" >> "$smoke_dir/scalar_route.txt"
done < "$batch_file"
cmp "$smoke_dir/batch_route.txt" "$smoke_dir/scalar_route.txt"
./target/release/dbr distance 2 --batch "$batch_file" --directed \
    > "$smoke_dir/batch_dist_dir.txt"
: > "$smoke_dir/scalar_dist_dir.txt"
while read -r x y; do
    ./target/release/dbr distance 2 "$x" "$y" --directed \
        >> "$smoke_dir/scalar_dist_dir.txt"
done < "$batch_file"
cmp "$smoke_dir/batch_dist_dir.txt" "$smoke_dir/scalar_dist_dir.txt"
for dir_flag in "" "--directed"; do
    # shellcheck disable=SC2086
    ./target/release/dbr distance 2 --batch "$batch_file" --threads 1 $dir_flag \
        > "$smoke_dir/batch_t1.txt"
    # shellcheck disable=SC2086
    ./target/release/dbr distance 2 --batch "$batch_file" --threads 4 $dir_flag \
        > "$smoke_dir/batch_t4.txt"
    cmp "$smoke_dir/batch_t1.txt" "$smoke_dir/batch_t4.txt"
done
echo "batched and per-pair answers agree; output is thread-count invariant"

echo "== bench regression smoke =="
# Reruns the distance-engine bench and fails if any series regressed
# more than 30% against the checked-in BENCH_results.json.
sh bench.sh --check

echo "CI OK"
