#!/bin/sh
# Offline CI gate: formatting, lints, build, full test suite.
# Run from the repository root; no network access required.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test --workspace --release -q

echo "CI OK"
