//! Cross-crate integration: routes computed by `core`, executed by `net`,
//! cross-checked against `graph` BFS.

use debruijn_suite::core::{distance, routing, DeBruijn, Word};
use debruijn_suite::graph::{bfs, DebruijnGraph};
use debruijn_suite::net::{
    workload, FaultHandling, RouterKind, SimConfig, Simulation, WildcardPolicy,
};

#[test]
fn simulated_hop_counts_equal_bfs_distances() {
    let space = DeBruijn::new(2, 5).unwrap();
    let graph = DebruijnGraph::undirected(space).unwrap();
    let sim = Simulation::new(
        space,
        SimConfig {
            router: RouterKind::Algorithm4,
            ..SimConfig::default()
        },
    )
    .unwrap();

    // One message per ordered pair; the per-pair hop histogram must match
    // the BFS distance distribution exactly.
    let traffic = workload::all_pairs(space);
    let report = sim.run(&traffic);
    assert_eq!(report.delivered, traffic.len());

    let mut bfs_hist = std::collections::BTreeMap::new();
    for src in graph.nodes() {
        for (dst, d) in bfs::distances(&graph, src).into_iter().enumerate() {
            if src as usize != dst {
                *bfs_hist.entry(d as usize).or_insert(0usize) += 1;
            }
        }
    }
    assert_eq!(report.hop_histogram, bfs_hist);
}

#[test]
fn directed_simulation_matches_directed_bfs() {
    let space = DeBruijn::new(3, 3).unwrap();
    let graph = DebruijnGraph::directed(space).unwrap();
    let sim = Simulation::new(
        space,
        SimConfig {
            router: RouterKind::Algorithm1,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let traffic = workload::all_pairs(space);
    let report = sim.run(&traffic);
    let mut total = 0u64;
    for src in graph.nodes() {
        for d in bfs::distances(&graph, src) {
            total += u64::from(d);
        }
    }
    assert_eq!(report.total_hops, total);
}

#[test]
fn rerouted_messages_use_real_detours() {
    // Knock out nodes, reroute at the source, and verify the delivered
    // hop counts against BFS on the surviving graph.
    let space = DeBruijn::new(2, 5).unwrap();
    let graph = DebruijnGraph::undirected(space).unwrap();
    let faults: Vec<Word> = [3u128, 17, 29]
        .iter()
        .map(|&r| space.word_from_rank(r).unwrap())
        .collect();
    let fault_ids: Vec<u32> = faults.iter().map(|f| graph.rank_of(f)).collect();

    let sim = Simulation::new(
        space,
        SimConfig {
            fault_handling: FaultHandling::SourceReroute,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .with_faults(faults.clone())
    .unwrap();

    let traffic = workload::all_pairs(space);
    let report = sim.run(&traffic);

    let mut expect_total = 0u64;
    let mut expect_delivered = 0usize;
    for x in space.vertices() {
        for y in space.vertices() {
            if x == y || faults.contains(&x) || faults.contains(&y) {
                continue;
            }
            let p = bfs::shortest_path_avoiding(
                &graph,
                graph.rank_of(&x),
                graph.rank_of(&y),
                &fault_ids,
            )
            .expect("2 < d? no: d=2, but these 3 faults keep this graph connected");
            expect_total += (p.len() - 1) as u64;
            expect_delivered += 1;
        }
    }
    assert_eq!(report.delivered, expect_delivered);
    assert_eq!(report.total_hops, expect_total);
}

#[test]
fn wildcard_policies_preserve_hop_counts() {
    let space = DeBruijn::new(2, 6).unwrap();
    let traffic = workload::uniform_random(space, 1_000, 21);
    let mut histograms = Vec::new();
    for policy in WildcardPolicy::all() {
        let sim = Simulation::new(
            space,
            SimConfig {
                policy,
                router: RouterKind::Algorithm2,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let report = sim.run(&traffic);
        assert_eq!(report.delivered, traffic.len(), "{}", policy.name());
        histograms.push(report.hop_histogram);
    }
    // The resolution policy must never change route lengths.
    for h in &histograms[1..] {
        assert_eq!(h, &histograms[0]);
    }
}

#[test]
fn every_router_defeats_or_ties_the_trivial_baseline_per_message() {
    let space = DeBruijn::new(2, 6).unwrap();
    for x in space.vertices().take(8) {
        for y in space.vertices().take(32) {
            let trivial = RouterKind::Trivial.route(&x, &y).len();
            let alg1 = RouterKind::Algorithm1.route(&x, &y).len();
            let alg2 = RouterKind::Algorithm2.route(&x, &y).len();
            assert!(alg1 <= trivial);
            assert!(alg2 <= alg1);
            let _ = distance::directed::distance(&x, &y);
        }
    }
}

#[test]
fn route_wire_format_survives_network_transit() {
    // Encode a route, decode it (as a receiving node would), and verify
    // the decoded route still drives the message home.
    let x = Word::parse(2, "011010").unwrap();
    let y = Word::parse(2, "110001").unwrap();
    let route = routing::algorithm4(&x, &y);
    let wire = route.encode(2);
    let decoded = debruijn_suite::core::RoutePath::decode(2, &wire).unwrap();
    assert!(decoded.leads_to(&x, &y));
}
