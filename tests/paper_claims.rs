//! The paper's headline claims, verified end-to-end.
//!
//! One test per claim, following the numbering of DESIGN.md's experiment
//! table (E1–E9 have full benches; these are the fast CI-sized versions).

use debruijn_suite::analysis::{average, distribution};
use debruijn_suite::core::{directed_average_distance, distance, routing, DeBruijn};
use debruijn_suite::embed::{binary_tree, ring, shuffle_exchange};
use debruijn_suite::graph::{census, connectivity, diameter, disjoint, DebruijnGraph};

#[test]
fn e1_eq5_is_an_upper_approximation_of_the_directed_average() {
    for (d, k) in [(2u8, 4usize), (3, 3), (4, 3), (5, 2)] {
        let space = DeBruijn::new(d, k).unwrap();
        let exact = average::exact_directed(space);
        let formula = directed_average_distance(d, k);
        assert!(formula >= exact - 1e-12, "d={d} k={k}");
        // The gap is the overlap-correlation term; it decays with d.
        let gap = formula - exact;
        let bound = 2.0 / (f64::from(d) * f64::from(d) - 1.0) + 0.05;
        assert!(gap <= bound, "d={d} k={k}: gap {gap} > {bound}");
    }
}

#[test]
fn e2_figure2_shape_average_undirected_distance() {
    // Regenerate the Figure 2 series in miniature and check its shape:
    // increasing in k with slope < 1... and always below the directed
    // average and the diameter.
    for d in [2u8, 3] {
        let mut prev = 0.0f64;
        for k in 1..=6usize {
            let space = DeBruijn::new(d, k).unwrap();
            let und = average::exact_undirected(space);
            let dir = average::exact_directed(space);
            assert!(und <= dir + 1e-12, "d={d} k={k}");
            assert!(und < k as f64, "below diameter");
            assert!(und > prev, "monotone in k (d={d} k={k})");
            let slope = und - prev;
            if k >= 3 {
                assert!(slope > 0.5 && slope < 1.2, "d={d} k={k}: slope {slope}");
            }
            prev = und;
        }
    }
}

#[test]
fn e3_distance_functions_equal_bfs_everywhere() {
    for (d, k) in [(2u8, 5usize), (3, 3), (4, 2), (5, 2)] {
        let space = DeBruijn::new(d, k).unwrap();
        let by_formula = average::exact_undirected(space);
        let by_bfs = average::exact_undirected_bfs(space);
        assert!((by_formula - by_bfs).abs() < 1e-12, "d={d} k={k}");
    }
}

#[test]
fn e4_structure_census_matches_section_1() {
    for (d, k) in [(2u8, 4usize), (3, 3), (4, 3)] {
        let space = DeBruijn::new(d, k).unwrap();
        let dg = DebruijnGraph::directed(space).unwrap();
        let ug = DebruijnGraph::undirected(space).unwrap();
        assert!(census::census(&dg).matches_directed_claim(d), "d={d} k={k}");
        assert!(
            census::census(&ug).matches_undirected_claim(d),
            "d={d} k={k}"
        );
        assert_eq!(diameter::diameter(&dg), k);
        assert_eq!(diameter::diameter(&ug), k);
        assert!(connectivity::is_strongly_connected(&dg));
    }
}

#[test]
fn e5_complexity_smoke_route_generation_scales_mildly() {
    use std::time::Instant;
    // Not a benchmark — just a sanity check that k = 4096 routes are
    // computed instantly by the linear algorithm (an O(k³) or worse
    // implementation would be visible even here).
    let d = 2u8;
    let k = 4096usize;
    let mut digits_x = vec![0u8; k];
    let mut digits_y = vec![0u8; k];
    let mut state = 12345u64;
    for i in 0..k {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        digits_x[i] = ((state >> 33) & 1) as u8;
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        digits_y[i] = ((state >> 33) & 1) as u8;
    }
    let x = debruijn_suite::core::Word::new(d, digits_x).unwrap();
    let y = debruijn_suite::core::Word::new(d, digits_y).unwrap();
    let t0 = Instant::now();
    let route = routing::algorithm4(&x, &y);
    let elapsed = t0.elapsed();
    assert!(route.leads_to(&x, &y));
    assert_eq!(route.len(), distance::undirected::distance(&x, &y));
    assert!(
        elapsed.as_millis() < 2_000,
        "Algorithm 4 took {elapsed:?} at k={k}"
    );
}

#[test]
fn e6_distance_distributions_have_the_papers_shape() {
    let space = DeBruijn::new(2, 6).unwrap();

    // Directed: the overlap is short with high probability, so most pairs
    // sit within 2 hops of the diameter (measured: 78% for DG(2,6)).
    let dir = distribution::distance_histogram(space, distribution::Orientation::Directed);
    let total: u64 = dir.values().sum();
    let near: u64 = dir
        .iter()
        .filter(|&(&d, _)| d + 2 >= 6)
        .map(|(_, &c)| c)
        .sum();
    assert!(
        near * 4 >= total * 3,
        "directed: ≥75% of pairs within 2 of k"
    );

    // Undirected: bidirectionality spreads the mass toward the middle —
    // the mean drops well below the diameter (the Figure 2 effect), and
    // almost no pair still needs the full k hops.
    let und = distribution::distance_histogram(space, distribution::Orientation::Undirected);
    let mean = distribution::histogram_mean(&und);
    let dir_mean = distribution::histogram_mean(&dir);
    assert!(mean < dir_mean, "undirected mean below directed mean");
    assert!(mean < 4.0 && mean > 3.0, "DG(2,6): measured mean {mean}");
    let at_diameter = und.get(&6).copied().unwrap_or(0);
    assert!(
        at_diameter * 50 < total,
        "under 2% of pairs at the full diameter"
    );
}

#[test]
fn e8_up_to_d_minus_1_faults_leave_the_network_connected() {
    // d = 4, k = 2: every 3-subset of faults keeps the graph connected,
    // witnessed through disjoint paths as well.
    let space = DeBruijn::new(4, 2).unwrap();
    let g = DebruijnGraph::undirected(space).unwrap();
    let n = g.node_count() as u32;
    // Random-ish but deterministic fault triples.
    let triples = [(1u32, 5, 9), (2, 7, 13), (0, 8, 15), (3, 6, 12)];
    for &(a, b, c) in &triples {
        assert_eq!(connectivity::components_after_faults(&g, &[a, b, c]), 1);
    }
    // Menger witness: at least d−1 = 3 disjoint paths between sample pairs.
    for (s, t) in [(0u32, n - 1), (1, 10), (4, 11)] {
        let count = disjoint::disjoint_path_count(&g, s, t, 4);
        assert!(count >= 3, "{s}->{t}: {count}");
    }
}

#[test]
fn e9_embedding_quality_table() {
    let k = 5usize;
    let space = DeBruijn::new(2, k).unwrap();
    let r = ring::ring(space);
    assert_eq!((r.dilation(), r.expansion()), (1, 1.0));
    let t = binary_tree::complete_binary_tree(k);
    assert_eq!(t.dilation(), 1);
    assert!(t.expansion() > 1.0 && t.expansion() < 1.1);
    let se = shuffle_exchange::shuffle_exchange(k);
    assert_eq!(se.dilation(), 2);
}
