//! Differential test of the destination-major batched kernel against the
//! scalar engines across the (d,k) grid.
//!
//! Sweeps every `d ∈ {2,3,4}`, `k ≤ 7`, both graph orientations, and
//! every engine selector, on shuffled batches with duplicated pairs,
//! skewed destinations, and singletons. `distance_batch_into` must
//! return the scalar distance and `route_batch_into` the byte-identical
//! scalar route (same `Display` rendering, same tie-breaks) at every
//! position — regardless of how the batch was ordered or how the kernel
//! tiered the work (shared context, BFS column, or scalar fall-through).
//! A final case drives the service's cached batch path and checks both
//! bodies and cache counters against per-query evaluation.

use debruijn_core::distance::undirected::{distance_with, Engine};
use debruijn_core::rng::SplitMix64;
use debruijn_core::routing::{
    algorithm1, route_with_engine, RouteCache, RoutePath, RoutingScratch,
};
use debruijn_core::{
    distance, distance_batch_into, route_batch_into, BatchScratch, DeBruijn, Word,
};
use debruijn_net::service::{
    answer_batch_cached, answer_query_cached, BatchAnswerState, Query, QueryKind,
};

const ENGINES: [Engine; 5] = [
    Engine::Auto,
    Engine::Naive,
    Engine::MorrisPratt,
    Engine::SuffixTree,
    Engine::BitParallel,
];

/// A batch exercising every grouping shape: a destination-skewed block
/// (many sources aimed at few sinks), duplicated pairs, and uniform
/// singleton tails — shuffled so groups are scattered across the input.
fn mixed_batch(space: DeBruijn, seed: u64) -> Vec<(Word, Word)> {
    let words: Vec<Word> = space.vertices().collect();
    let mut rng = SplitMix64::new(seed);
    let mut pairs = Vec::new();
    // Skewed block: 3 hot destinations.
    for _ in 0..60 {
        let x = words[rng.below_usize(words.len())].clone();
        let y = words[rng.below_usize(3.min(words.len()))].clone();
        pairs.push((x, y));
    }
    // Duplicated pairs (identical (x, y) twice).
    for _ in 0..10 {
        let x = words[rng.below_usize(words.len())].clone();
        let y = words[rng.below_usize(words.len())].clone();
        pairs.push((x.clone(), y.clone()));
        pairs.push((x, y));
    }
    // Uniform tail: mostly singleton groups.
    for _ in 0..40 {
        let x = words[rng.below_usize(words.len())].clone();
        let y = words[rng.below_usize(words.len())].clone();
        pairs.push((x, y));
    }
    rng.shuffle(&mut pairs);
    pairs
}

#[test]
fn batched_distances_match_scalar_engines_across_the_grid() {
    let mut scratch = BatchScratch::new();
    let mut dists = Vec::new();
    for d in [2u8, 3, 4] {
        for k in 1..=7usize {
            let space = DeBruijn::new(d, k).unwrap();
            let pairs = mixed_batch(space, 0xD157 ^ (u64::from(d) << 8) ^ k as u64);
            for directed in [true, false] {
                for engine in ENGINES {
                    distance_batch_into(&pairs, directed, engine, &mut scratch, &mut dists);
                    assert_eq!(dists.len(), pairs.len());
                    for (i, (x, y)) in pairs.iter().enumerate() {
                        let want = if directed {
                            distance::directed::distance(x, y)
                        } else {
                            distance_with(engine, x, y)
                        };
                        assert_eq!(
                            dists[i], want,
                            "d={d} k={k} {x} {y} directed={directed} {engine:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batched_routes_are_byte_identical_to_scalar_routes() {
    let mut scratch = BatchScratch::new();
    let mut routes = Vec::new();
    for d in [2u8, 3, 4] {
        for k in 1..=7usize {
            let space = DeBruijn::new(d, k).unwrap();
            let pairs = mixed_batch(space, 0x2007 ^ (u64::from(d) << 8) ^ k as u64);
            for directed in [true, false] {
                for engine in ENGINES {
                    route_batch_into(&pairs, directed, engine, &mut scratch, &mut routes);
                    assert_eq!(routes.len(), pairs.len());
                    for (i, (x, y)) in pairs.iter().enumerate() {
                        let want = if directed {
                            algorithm1(x, y)
                        } else {
                            route_with_engine(x, y, engine)
                        };
                        assert_eq!(
                            routes[i], want,
                            "d={d} k={k} {x} {y} directed={directed} {engine:?}"
                        );
                        // Same steps is not enough: the printed report
                        // (the CLI's batch output) must match too.
                        assert_eq!(routes[i].to_string(), want.to_string());
                        assert!(routes[i].leads_to(x, y) || x == y);
                    }
                }
            }
        }
    }
}

#[test]
fn service_batch_path_matches_per_query_evaluation_with_cache() {
    for (d, k) in [(2u8, 5usize), (3, 3)] {
        let space = DeBruijn::new(d, k).unwrap();
        let pairs = mixed_batch(space, 0x5E4C ^ u64::from(d));
        let mut rng = SplitMix64::new(0xCA11);
        let queries: Vec<Query> = pairs
            .into_iter()
            .map(|(x, y)| Query {
                kind: if rng.below_usize(2) == 0 {
                    QueryKind::Distance
                } else {
                    QueryKind::Route
                },
                x,
                y,
                directed: rng.below_usize(5) == 0,
            })
            .collect();

        // Small capacity so clock eviction runs inside the sweep.
        let mut batch_cache = RouteCache::new(16);
        let mut scalar_cache = RouteCache::new(16);
        let mut st = BatchAnswerState::new();
        let mut bodies = Vec::new();
        let mut scratch = RoutingScratch::new();
        let mut path_buf = RoutePath::empty();
        for drain in queries.chunks(24) {
            let refs: Vec<&Query> = drain.iter().collect();
            answer_batch_cached(&refs, &mut batch_cache, &mut st, &mut bodies);
            for (q, body) in drain.iter().zip(&bodies) {
                let want = answer_query_cached(q, &mut scalar_cache, &mut scratch, &mut path_buf);
                assert_eq!(*body, want, "d={d} k={k} {}->{} {:?}", q.x, q.y, q.kind);
            }
            assert_eq!(
                batch_cache.stats(),
                scalar_cache.stats(),
                "cache counters must evolve identically (d={d} k={k})"
            );
        }
        assert!(batch_cache.stats().evictions > 0, "capacity 16 must churn");
    }
}
