//! Extreme-scale behaviour: the label algorithms at sizes where nothing
//! else survives.
//!
//! The point of the paper is that routing cost depends on the diameter
//! `k`, not on the `d^k` network size. These tests run the algorithms at
//! `k` in the tens of thousands (networks with more nodes than atoms in
//! the universe) and check exactness against each other.

use debruijn_suite::core::distance::undirected::{distance_with, Engine};
use debruijn_suite::core::{distance, routing, Word};
use debruijn_suite::graph::generalized::Gdb;

fn pseudo_random_word(d: u8, k: usize, mut seed: u64) -> Word {
    let digits: Vec<u8> = (0..k)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % u64::from(d)) as u8
        })
        .collect();
    Word::new(d, digits).expect("digits below d")
}

#[test]
fn routing_at_k_20000_stays_fast_and_exact() {
    let k = 20_000usize;
    let x = pseudo_random_word(2, k, 1);
    let y = pseudo_random_word(2, k, 2);

    let start = std::time::Instant::now();
    let dir_route = routing::algorithm1(&x, &y);
    let und_route = routing::algorithm4(&x, &y);
    let elapsed = start.elapsed();

    assert_eq!(dir_route.len(), distance::directed::distance(&x, &y));
    assert!(dir_route.leads_to(&x, &y));
    assert_eq!(und_route.len(), distance_with(Engine::SuffixTree, &x, &y));
    assert!(und_route.leads_to(&x, &y));
    // Generous bound: both linear algorithms together in well under 10 s
    // even on slow CI (measured: tens of milliseconds).
    assert!(elapsed.as_secs() < 10, "took {elapsed:?}");
}

#[test]
fn engines_agree_at_k_1200_across_radices() {
    for d in [2u8, 3, 7, 16] {
        let k = 1_200usize;
        let x = pseudo_random_word(d, k, u64::from(d));
        let y = pseudo_random_word(d, k, u64::from(d) + 100);
        let mp = distance_with(Engine::MorrisPratt, &x, &y);
        let st = distance_with(Engine::SuffixTree, &x, &y);
        assert_eq!(mp, st, "d={d}");
        // Random long words almost surely need nearly k hops; sanity-bound.
        assert!(mp > k / 2 && mp <= k, "d={d}: {mp}");
    }
}

#[test]
fn nearly_identical_giant_words_route_in_few_hops() {
    // Distance is determined by structure, not size: two words differing
    // only in their last digits are a couple of hops apart.
    let k = 50_000usize;
    let x = pseudo_random_word(2, k, 9);
    let mut digits = x.digits().to_vec();
    let last = digits[k - 1];
    digits.remove(0);
    digits.push(1 - last);
    let y = Word::new(2, digits).expect("binary digits");
    // y = x shifted left once with a fresh digit: distance 1.
    assert_eq!(distance::directed::distance(&x, &y), 1);
    assert_eq!(distance_with(Engine::SuffixTree, &x, &y), 1);
    let route = routing::algorithm4(&x, &y);
    assert_eq!(route.len(), 1);
    assert!(route.leads_to(&x, &y));
}

#[test]
fn generalized_debruijn_routes_at_astronomic_n() {
    // N near u64::MAX: only label arithmetic works at this size.
    let n = u64::MAX - 58;
    let g = Gdb::new(2, n).expect("valid parameters");
    assert_eq!(g.diameter_bound(), 64);
    let pairs = [
        (0u64, n - 1),
        (123_456_789_012_345, 987_654_321_098_765),
        (n / 2, n / 2 + 1),
        (42, 42),
    ];
    for (i, j) in pairs {
        let route = g.route(i, j);
        assert!(route.len() <= 64, "{i}->{j}: {}", route.len());
        assert_eq!(g.walk(i, &route), j, "{i}->{j}");
        assert_eq!(route.len(), g.distance(i, j));
    }
    assert_eq!(g.distance(42, 42), 0);
}

#[test]
fn wire_format_round_trips_at_scale() {
    let k = 10_000usize;
    let x = pseudo_random_word(3, k, 5);
    let y = pseudo_random_word(3, k, 6);
    let route = routing::algorithm4(&x, &y);
    let wire = route.encode(3);
    assert_eq!(wire.len(), 2 * route.len());
    let back = debruijn_suite::core::RoutePath::decode(3, &wire).expect("valid wire");
    assert_eq!(back, route);
    assert!(back.leads_to(&x, &y));
}
