//! Differential test of the four Theorem-2 engines across the (d,k) grid.
//!
//! Sweeps every `d ∈ {2,3,4}`, `k ≤ 7`: small spaces exhaustively (all
//! ordered pairs), larger ones with a seeded sample. The bit-parallel,
//! Morris–Pratt, suffix-tree, and naive engines must return the same
//! distance on every pair — any packing, shift, or tie-breaking bug in
//! one engine shows up as a disagreement with the other three.

use debruijn_core::distance::undirected::{distance_with, Engine};
use debruijn_core::rng::SplitMix64;
use debruijn_core::{DeBruijn, Word};

const ENGINES: [Engine; 4] = [
    Engine::Naive,
    Engine::MorrisPratt,
    Engine::SuffixTree,
    Engine::BitParallel,
];

fn assert_engines_agree(d: u8, k: usize, x: &Word, y: &Word) {
    let want = distance_with(Engine::Naive, x, y);
    for engine in ENGINES {
        assert_eq!(
            distance_with(engine, x, y),
            want,
            "d={d} k={k} {x} {y} {engine:?}"
        );
    }
}

#[test]
fn all_engines_agree_on_every_small_space_and_sampled_large_ones() {
    // Beyond this many vertices, all-pairs is too slow for a tier-1 test;
    // fall back to a seeded uniform sample of ordered pairs.
    const EXHAUSTIVE_LIMIT: usize = 64;
    const SAMPLES: usize = 400;
    let mut rng = SplitMix64::new(0xD1FF);
    for d in [2u8, 3, 4] {
        for k in 1..=7usize {
            let space = DeBruijn::new(d, k).unwrap();
            let n = space.order_usize().unwrap();
            if n <= EXHAUSTIVE_LIMIT {
                for x in space.vertices() {
                    for y in space.vertices() {
                        assert_engines_agree(d, k, &x, &y);
                    }
                }
            } else {
                for _ in 0..SAMPLES {
                    let x = space.word_from_rank(rng.below_u128(n as u128)).unwrap();
                    let y = space.word_from_rank(rng.below_u128(n as u128)).unwrap();
                    assert_engines_agree(d, k, &x, &y);
                }
            }
        }
    }
}

#[test]
fn auto_engine_matches_explicit_engines_on_seeded_pairs() {
    let mut rng = SplitMix64::new(0xA070);
    for d in [2u8, 3, 4] {
        for k in [5usize, 6, 7] {
            let space = DeBruijn::new(d, k).unwrap();
            let n = space.order_usize().unwrap() as u128;
            for _ in 0..100 {
                let x = space.word_from_rank(rng.below_u128(n)).unwrap();
                let y = space.word_from_rank(rng.below_u128(n)).unwrap();
                assert_eq!(
                    debruijn_core::distance::undirected::distance(&x, &y),
                    distance_with(Engine::SuffixTree, &x, &y),
                    "d={d} k={k} {x} {y}"
                );
            }
        }
    }
}
