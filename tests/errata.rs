//! The paper's errata, demonstrated as executable tests.
//!
//! Three defects in the printed paper were found during this
//! reproduction (see DESIGN.md for the full discussion). Each test below
//! *demonstrates* the defect and verifies our correction.

use debruijn_suite::analysis::average;
use debruijn_suite::core::{directed_average_distance, distance, DeBruijn, Word};
use debruijn_suite::strings::{algorithm3_row, MpMatcher};

/// Erratum 1 — Eq. (5) is an approximation, not an identity.
///
/// The paper derives `δ(d,k) = Σ i·α^{k−i}·ᾱ` by treating the
/// suffix/prefix overlap as geometrically distributed. The smallest
/// counterexample is `DG(2,2)`: the word pair `(01, 01)` overlaps at
/// length 2 but not at length 1, which the geometric model cannot
/// express. Exact enumeration gives 9/8; the formula gives 10/8.
#[test]
fn erratum_eq5_is_only_an_upper_approximation() {
    // The defect, at its smallest size:
    let x = Word::parse(2, "01").unwrap();
    assert_eq!(distance::directed::distance(&x, &x), 0, "overlap 2 exists");
    // …but the length-1 overlap does NOT: suffix "1" != prefix "0".
    assert_ne!(x.digits()[1], x.digits()[0]);

    // Consequence: formula > exact, with equality nowhere above k = 1.
    let space = DeBruijn::new(2, 2).unwrap();
    let exact = average::exact_directed(space);
    assert!((exact - 1.125).abs() < 1e-12, "exact is 9/8");
    let formula = directed_average_distance(2, 2);
    assert!((formula - 1.25).abs() < 1e-12, "Eq.(5) prints 10/8");
    for k in 2..=8usize {
        let space = DeBruijn::new(2, k).unwrap();
        assert!(
            directed_average_distance(2, k) > average::exact_directed(space) + 1e-9,
            "k={k}"
        );
    }
}

/// Erratum 2 — Algorithm 3 line 11 must fall back through `c`, not `l`.
///
/// The printed pseudocode reads `h = l_{i,i+h−1}`, indexing the
/// matching-function row (text positions) by a pattern offset. On the
/// input below the printed rule cycles forever; the corrected rule
/// (`h = c_{i,i+h−1}`) terminates and matches an independent
/// Morris–Pratt implementation.
#[test]
fn erratum_algorithm3_line11_uses_failure_not_matching_function() {
    let pattern = b"aab";
    let text = b"aaab";
    let (c, l) = algorithm3_row(pattern, text);
    // Corrected output agrees with the independent matcher.
    let mp = MpMatcher::new(pattern.to_vec());
    assert_eq!(l, mp.prefix_match_lengths(text));

    // The printed rule diverges: simulate it with bounded fuel.
    let mut lbad = vec![0usize; text.len()];
    lbad[0] = usize::from(pattern[0] == text[0]);
    let mut diverged = false;
    'outer: for j in 1..text.len() {
        let mut h = if lbad[j - 1] == pattern.len() {
            c[pattern.len() - 1]
        } else {
            lbad[j - 1]
        };
        let mut fuel = 16;
        while h > 0 && pattern[h] != text[j] {
            h = lbad[h - 1]; // the printed (wrong) fallback
            fuel -= 1;
            if fuel == 0 {
                diverged = true;
                break 'outer;
            }
        }
        lbad[j] = if h == 0 && pattern[h] != text[j] {
            0
        } else {
            h + 1
        };
    }
    assert!(
        diverged || l != lbad,
        "the printed rule must misbehave here"
    );
}

/// Erratum 3 — the printed prefix-tree string `S = X⊥Ȳ⊤` matches `X`
/// forwards against `Y` *backwards*, which is not `l_{i,j}` of Eq. (8).
///
/// Demonstration: for `X = 011`, `Y = 110`, the forward/forward common
/// substring "11" (length 2, giving `l_{2,2} = 2`) exists, but in the
/// printed construction the `X`-suffix `11…` would be matched against
/// `Ȳ = 011` read from the `y_j` end — and the minimum extracted from
/// that tree disagrees with the Theorem 2 distance on such pairs. Our
/// implementation builds the forward/forward generalized suffix tree; the
/// test confirms its minimum reproduces BFS distances (already verified
/// exhaustively elsewhere; here the witness pair).
#[test]
fn erratum_prefix_tree_orientation() {
    use debruijn_suite::core::distance::undirected::{distance_with, Engine};
    let x = Word::parse(2, "011").unwrap();
    let y = Word::parse(2, "110").unwrap();
    // Ground truth by naive Theorem 2 and by the suffix-tree engine:
    let naive = distance_with(Engine::Naive, &x, &y);
    let via_tree = distance_with(Engine::SuffixTree, &x, &y);
    assert_eq!(naive, via_tree);
    assert_eq!(naive, 1, "011 → 110 is one left shift");

    // The forward/backward quantity the printed string computes for this
    // pair is different from l_{2,2}: X forward "11" vs Y backward from
    // j=2 gives "11" as well here, but for the asymmetric pair below the
    // two notions separate:
    let x2 = Word::parse(2, "0010").unwrap();
    let y2 = Word::parse(2, "0100").unwrap();
    // l_{1,3}(X,Y): X substring starting at 1 = "0010…", Y substring
    // ending at 3 = "…010": the forward/forward match "001"↔"…" has
    // length 3 (x_1x_2x_3 = 001 = y_1y_2y_3? y ending at j=3 is 010).
    // Forward/forward l_{1,4} = max s with x[0..s] == y[4-s..4]:
    let table = debruijn_suite::strings::l_table(x2.digits(), y2.digits());
    // Forward/backward instead compares x[0..s] with reverse(y)[..s]:
    let yrev: Vec<u8> = y2.digits().iter().rev().copied().collect();
    let mut fb = 0;
    for s in 1..=4usize {
        if x2.digits()[..s] == yrev[..s] {
            fb = s;
        }
    }
    assert_ne!(
        table[0][3], fb,
        "forward/forward and forward/backward matching differ on this pair"
    );
}
