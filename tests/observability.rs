//! End-to-end checks on the observability layer: recorded metrics
//! against the analytic quantities from `crates/analysis`, and the
//! JSONL stream against the aggregate report.

use debruijn_suite::analysis::average;
use debruijn_suite::core::DeBruijn;
use debruijn_suite::net::record::{parse_event, FanoutRecorder, JsonlRecorder};
use debruijn_suite::net::{
    workload, InMemoryRecorder, NetEvent, RouterKind, SimConfig, Simulation, WildcardPolicy,
};

#[test]
fn recorded_mean_hops_matches_analytic_average_on_dg_2_8() {
    // Uniform traffic on DG(2,8) with an optimal router: the sample
    // mean of the hop histogram estimates the exact average undirected
    // distance over distinct ordered pairs (the workload never sends a
    // node to itself, so the N self-pairs at distance 0 are excluded
    // from the expectation).
    let space = DeBruijn::new(2, 8).unwrap();
    let config = SimConfig {
        router: RouterKind::Algorithm4,
        policy: WildcardPolicy::LeastLoaded,
        ..SimConfig::default()
    };
    let sim = Simulation::new(space, config).unwrap();
    let messages = 5_000;
    let traffic = workload::uniform_random(space, messages, 0xE2E);

    let mut metrics = InMemoryRecorder::new();
    let report = sim.run_recorded(&traffic, &mut metrics);
    assert_eq!(report.delivered, messages);
    assert_eq!(metrics.delivered, messages as u64);

    let n = space.order_usize().unwrap() as f64;
    let analytic = average::exact_undirected(space) * n / (n - 1.0);
    let sample_mean = metrics.hops.mean();

    // Sampling error: the per-pair distance has std-dev < 1.5 hops on
    // DG(2,8), so the mean of 5000 draws sits within ~3·1.5/√5000 ≈
    // 0.064 of the expectation. 0.1 gives slack without admitting an
    // off-by-one in the distance function (which would shift the mean
    // by ≥ 0.5).
    assert!(
        (sample_mean - analytic).abs() < 0.1,
        "sample mean {sample_mean:.4} vs analytic {analytic:.4}"
    );

    // Optimal router: every delivery took exactly D(X,Y) hops.
    assert_eq!(metrics.stretch.max(), Some(0));
}

#[test]
fn jsonl_stream_is_consistent_with_the_aggregate_report() {
    let space = DeBruijn::new(3, 4).unwrap();
    let config = SimConfig {
        router: RouterKind::Algorithm2,
        ..SimConfig::default()
    };
    let sim = Simulation::new(space, config).unwrap();
    let traffic = workload::uniform_random(space, 400, 9);

    let mut metrics = InMemoryRecorder::new();
    let mut jsonl = JsonlRecorder::new(Vec::new());
    let report = {
        let mut fan = FanoutRecorder::new();
        fan.push(&mut metrics);
        fan.push(&mut jsonl);
        sim.run_recorded(&traffic, &mut fan)
    };

    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    let (mut injects, mut forwards, mut delivers) = (0usize, 0u64, 0usize);
    for line in text.lines() {
        match parse_event(space.d(), line).expect("every line parses") {
            NetEvent::Inject {
                route_len,
                shortest,
                ..
            } => {
                injects += 1;
                assert_eq!(route_len, shortest, "Algorithm 2 routes are optimal");
            }
            NetEvent::Forward { .. } => forwards += 1,
            NetEvent::Deliver { hops, shortest, .. } => {
                delivers += 1;
                assert_eq!(hops, shortest);
            }
            _ => {}
        }
    }
    assert_eq!(injects, report.injected);
    assert_eq!(delivers, report.delivered);
    assert_eq!(forwards, report.total_hops);
}
