//! End-to-end checks on the observability layer: recorded metrics
//! against the analytic quantities from `crates/analysis`, the JSONL
//! stream against the aggregate report, and the metrics registry /
//! scrape endpoint / flight recorder pipeline against a live run (the
//! `examples/live_metrics.rs` scenario, locked down).

use std::sync::Arc;

use debruijn_suite::analysis::average;
use debruijn_suite::core::{DeBruijn, Word};
use debruijn_suite::net::metrics::{
    register_core_profile, replay_sharded, AnomalyTriggers, FlightRecorder, MetricsRegistry,
    RegistryRecorder, ScrapeServer,
};
use debruijn_suite::net::record::{parse_event, FanoutRecorder, JsonlRecorder};
use debruijn_suite::net::{
    workload, InMemoryRecorder, NetEvent, RouterKind, SimConfig, Simulation, WildcardPolicy,
};

#[test]
fn recorded_mean_hops_matches_analytic_average_on_dg_2_8() {
    // Uniform traffic on DG(2,8) with an optimal router: the sample
    // mean of the hop histogram estimates the exact average undirected
    // distance over distinct ordered pairs (the workload never sends a
    // node to itself, so the N self-pairs at distance 0 are excluded
    // from the expectation).
    let space = DeBruijn::new(2, 8).unwrap();
    let config = SimConfig {
        router: RouterKind::Algorithm4,
        policy: WildcardPolicy::LeastLoaded,
        ..SimConfig::default()
    };
    let sim = Simulation::new(space, config).unwrap();
    let messages = 5_000;
    let traffic = workload::uniform_random(space, messages, 0xE2E);

    let mut metrics = InMemoryRecorder::new();
    let report = sim.run_recorded(&traffic, &mut metrics);
    assert_eq!(report.delivered, messages);
    assert_eq!(metrics.delivered, messages as u64);

    let n = space.order_usize().unwrap() as f64;
    let analytic = average::exact_undirected(space) * n / (n - 1.0);
    let sample_mean = metrics.hops.mean();

    // Sampling error: the per-pair distance has std-dev < 1.5 hops on
    // DG(2,8), so the mean of 5000 draws sits within ~3·1.5/√5000 ≈
    // 0.064 of the expectation. 0.1 gives slack without admitting an
    // off-by-one in the distance function (which would shift the mean
    // by ≥ 0.5).
    assert!(
        (sample_mean - analytic).abs() < 0.1,
        "sample mean {sample_mean:.4} vs analytic {analytic:.4}"
    );

    // Optimal router: every delivery took exactly D(X,Y) hops.
    assert_eq!(metrics.stretch.max(), Some(0));
}

#[test]
fn jsonl_stream_is_consistent_with_the_aggregate_report() {
    let space = DeBruijn::new(3, 4).unwrap();
    let config = SimConfig {
        router: RouterKind::Algorithm2,
        ..SimConfig::default()
    };
    let sim = Simulation::new(space, config).unwrap();
    let traffic = workload::uniform_random(space, 400, 9);

    let mut metrics = InMemoryRecorder::new();
    let mut jsonl = JsonlRecorder::new(Vec::new());
    let report = {
        let mut fan = FanoutRecorder::new();
        fan.push(&mut metrics);
        fan.push(&mut jsonl);
        sim.run_recorded(&traffic, &mut fan)
    };

    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    let (mut injects, mut forwards, mut delivers) = (0usize, 0u64, 0usize);
    for line in text.lines() {
        match parse_event(space.d(), line).expect("every line parses") {
            NetEvent::Inject {
                route_len,
                shortest,
                ..
            } => {
                injects += 1;
                assert_eq!(route_len, shortest, "Algorithm 2 routes are optimal");
            }
            NetEvent::Forward { .. } => forwards += 1,
            NetEvent::Deliver { hops, shortest, .. } => {
                delivers += 1;
                assert_eq!(hops, shortest);
            }
            _ => {}
        }
    }
    assert_eq!(injects, report.injected);
    assert_eq!(delivers, report.delivered);
    assert_eq!(forwards, report.total_hops);
}

/// The `examples/live_metrics.rs` scenario end to end: one registry
/// fed by a live run, scraped over real HTTP while a flight recorder
/// captures the anomaly a faulty node provokes.
#[test]
fn live_scrape_and_flight_recorder_capture_a_faulty_run() {
    let space = DeBruijn::new(2, 6).unwrap();
    let config = SimConfig {
        router: RouterKind::Algorithm2,
        ..SimConfig::default()
    };
    let faulty = Word::parse(2, "000000").unwrap();
    let sim = Simulation::new(space, config)
        .unwrap()
        .with_faults(vec![faulty])
        .unwrap();
    let traffic = workload::uniform_random(space, 3_000, 7);

    let registry = Arc::new(MetricsRegistry::new());
    register_core_profile(&registry);
    let mut recorder = RegistryRecorder::new(&registry);
    let server = ScrapeServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();

    let dump = std::env::temp_dir().join(format!("dbr-e2e-flight-{}.jsonl", std::process::id()));
    let mut flight = FlightRecorder::new(4096, AnomalyTriggers::default()).with_dump_path(&dump);
    let mut memory = InMemoryRecorder::new();
    let mut jsonl = JsonlRecorder::new(Vec::new());
    let report = {
        let mut fan = FanoutRecorder::new();
        fan.push(&mut recorder);
        fan.push(&mut memory);
        fan.push(&mut jsonl);
        fan.push(&mut flight);
        sim.run_recorded(&traffic, &mut fan)
    };
    assert!(report.dropped > 0, "the faulty node must shed traffic");

    // --- Scrape over real HTTP: one registry serves the simulator's
    // counters and the core profile collectors in a single exposition.
    let text = ScrapeServer::get(server.local_addr(), "/metrics").unwrap();
    let line_value = |needle: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| panic!("scrape lacks {needle}:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    // Injection counters are event-derived: messages whose *source* is
    // faulty are dropped before any Inject event exists, so the scrape
    // agrees with the in-memory event aggregation, not with
    // `report.injected` (which counts every demand).
    assert_eq!(line_value("dbr_sim_injected_total"), memory.injected);
    assert!(memory.injected < report.injected as u64);
    assert_eq!(
        line_value("dbr_sim_delivered_total"),
        report.delivered as u64
    );
    // Per-link forward counters sum to the number of Forward events
    // (every forward records one per-hop latency observation; this
    // exceeds `report.total_hops`, which only counts delivered
    // messages' hops, because hops into the faulty node are lost).
    let forwards: u64 = text
        .lines()
        .filter(|l| l.starts_with("dbr_link_forward_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(forwards, memory.per_hop_latency.count());
    assert!(forwards > report.total_hops);
    // Per-reason drop counters match the report's breakdown.
    for (reason, n) in &report.dropped_by_reason {
        assert_eq!(
            line_value(&format!("dbr_sim_dropped_total{{reason=\"{reason}\"}}")),
            *n
        );
    }
    // Engine-dispatch and route-cache counters from the collector are
    // present in the same scrape (process-wide, so only `>=` holds).
    assert!(text.contains("# TYPE dbr_core_engine_solves_total counter"));
    assert!(text.contains("# TYPE dbr_core_route_cache_total counter"));
    let solves: u64 = text
        .lines()
        .filter(|l| l.starts_with("dbr_core_engine_solves_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(solves > 0, "routing must have dispatched engines:\n{text}");
    assert!(
        text.contains("dbr_core_route_cache_total{outcome=\"hit\"}"),
        "{text}"
    );
    assert!(ScrapeServer::get(server.local_addr(), "/healthz")
        .unwrap()
        .contains("ok"));
    server.shutdown();

    // --- The flight recorder fired on the drop burst and dumped a
    // window that the trace tooling parses like any run trace.
    let anomaly = flight.finish().unwrap().expect("drop burst must fire");
    let rendered = anomaly.to_string();
    assert!(rendered.contains("burst"), "{rendered}");
    let dumped = std::fs::read_to_string(&dump).unwrap();
    std::fs::remove_file(&dump).ok();
    let mut drops = 0;
    for line in dumped.lines() {
        if let NetEvent::Drop { .. } = parse_event(2, line).expect("dump lines parse") {
            drops += 1;
        }
    }
    assert!(drops >= 8, "the window holds the triggering burst: {drops}");

    // --- Offline sharded replay of the full JSONL stream agrees with
    // the live registry on every simulator family, for any thread
    // count.
    let text_stream = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    let events: Vec<NetEvent> = text_stream
        .lines()
        .map(|l| parse_event(2, l).unwrap())
        .collect();
    let offline = replay_sharded(4, &events).render();
    assert_eq!(offline, replay_sharded(1, &events).render());
    let live = registry.snapshot().render();
    for line in live
        .lines()
        .filter(|l| l.starts_with("dbr_sim_") || l.starts_with("dbr_link_"))
    {
        assert!(offline.contains(line), "offline replay lacks: {line}");
    }
}
