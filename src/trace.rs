//! Offline analysis of JSONL simulation traces.
//!
//! `dbr simulate --trace FILE` streams every [`NetEvent`] as one JSON
//! line; this module turns such files back into reports without
//! re-running the simulation — the `dbr trace` subcommand family:
//!
//! * [`summary`] reconstructs the full `--metrics` report (histograms
//!   and counters) from a trace, reproducing the live numbers exactly;
//! * [`links`] ranks the hottest links with utilization, queue wait and
//!   depth high-water marks;
//! * [`hist`] renders one chosen metric as an ASCII histogram;
//! * [`diff`] compares two runs metric by metric;
//! * [`export`] converts a trace to the Chrome trace-event format for
//!   <https://ui.perfetto.dev>.
//!
//! Traces do not record the digit radix, so [`load`] infers it from
//! the addresses in the file (the smallest radix that can express
//! every digit seen); pass `--radix` to override when a run never
//! exercised its highest digits.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

use debruijn_analysis::Table;
use debruijn_net::record::parse_event;
use debruijn_net::telemetry::ChromeTraceRecorder;
use debruijn_net::{InMemoryRecorder, LogHistogram, NetEvent, Recorder, Telemetry};

/// A parsed trace file: the radix used to decode addresses plus the
/// event stream in file order.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Digit radix the addresses were decoded with.
    pub d: u8,
    /// Events in file order (injections first, then time-ordered
    /// processing, as the simulator wrote them).
    pub events: Vec<NetEvent>,
}

/// Reads and parses a JSONL trace file.
///
/// With `radix: None` the radix is inferred via [`infer_radix`].
///
/// # Errors
///
/// Returns a message naming the file and line on I/O or parse errors.
pub fn load(path: &str, radix: Option<u8>) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    let d = match radix {
        Some(d) => d,
        None => infer_radix(&text),
    };
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_event(d, line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(Trace { d, events })
}

/// Smallest radix that can express every address digit in the trace.
///
/// Addresses are the only quoted JSON strings made of digits
/// (dot-separated digit values for radices above 10); field names and
/// enum names (`"forward"`, `"least-loaded"`, …) always contain
/// letters. Scanning those tokens and taking `max digit + 1` (clamped
/// to at least 2) recovers a radix every word in the file parses
/// under. It may undershoot the radix the run was configured with if
/// no address used the highest digits — harmless for analysis, which
/// never enumerates the space — and `--radix` overrides it.
pub fn infer_radix(text: &str) -> u8 {
    let mut max_digit = 1u8;
    for line in text.lines() {
        // Quoted tokens are the odd-indexed pieces between '"' splits;
        // addresses never contain escapes.
        for (i, token) in line.split('"').enumerate() {
            if i % 2 == 0 || token.is_empty() {
                continue;
            }
            if token.bytes().all(|b| b.is_ascii_digit()) {
                let top = token.bytes().map(|b| b - b'0').max().unwrap_or(0);
                max_digit = max_digit.max(top);
            } else if token.contains('.')
                && token
                    .split('.')
                    .all(|part| !part.is_empty() && part.bytes().all(|b| b.is_ascii_digit()))
            {
                for part in token.split('.') {
                    if let Ok(v) = part.parse::<u8>() {
                        max_digit = max_digit.max(v);
                    }
                }
            }
        }
    }
    max_digit.saturating_add(1).max(2)
}

/// Formats a per-reason loss total for the `dropped:` headline line:
/// `"0"` for a clean run, `"5 (dead-link 3, ttl 2)"` otherwise.
///
/// Shared by the live `dbr simulate` report (fed from
/// [`SimReport::dropped_by_reason`](debruijn_net::SimReport)) and the
/// offline [`summary`] (fed from the replayed
/// [`InMemoryRecorder::drops_by_reason`]), so the two renderings stay
/// byte-identical and CI can diff them.
pub fn drop_breakdown(by_reason: &BTreeMap<&'static str, u64>) -> String {
    let total: u64 = by_reason.values().sum();
    if total == 0 {
        return "0".to_string();
    }
    let parts: Vec<String> = by_reason.iter().map(|(r, n)| format!("{r} {n}")).collect();
    format!("{total} ({})", parts.join(", "))
}

/// Replays a trace through both aggregators.
fn aggregate(trace: &Trace) -> (InMemoryRecorder, Telemetry) {
    let mut memory = InMemoryRecorder::new();
    let mut telemetry = Telemetry::new();
    for event in &trace.events {
        memory.record(event);
        telemetry.record(event);
    }
    (memory, telemetry)
}

/// Reconstructs the live report from a trace: the same headline lines
/// `dbr simulate` prints (delivered, mean hops/latency, makespan)
/// followed by the full `--metrics` block, byte-identical to the live
/// run the trace came from.
pub fn summary(trace: &Trace) -> String {
    let (memory, telemetry) = aggregate(trace);
    let mut out = String::new();
    writeln!(
        out,
        "events:       {} (radix {})",
        trace.events.len(),
        trace.d
    )
    .expect("write to string");
    writeln!(
        out,
        "delivered:    {}/{}",
        memory.delivered, memory.injected
    )
    .expect("write to string");
    writeln!(
        out,
        "dropped:      {}",
        drop_breakdown(&memory.drops_by_reason)
    )
    .expect("write to string");
    // Per-hop delivery latency (arrival tick − send tick of each
    // forward), folded through the O(1)-memory log histogram so the
    // line stays cheap on arbitrarily long traces.
    let mut per_hop = LogHistogram::new();
    for event in &trace.events {
        if let NetEvent::Forward {
            departs, arrives, ..
        } = event
        {
            per_hop.record(arrives.saturating_sub(*departs));
        }
    }
    writeln!(out, "per-hop:      {}", per_hop.summary()).expect("write to string");
    writeln!(out, "mean hops:    {:.4}", memory.hops.mean()).expect("write to string");
    writeln!(out, "mean latency: {:.4}", memory.latency.mean()).expect("write to string");
    writeln!(out, "max latency:  {}", memory.latency.max().unwrap_or(0)).expect("write to string");
    writeln!(out, "makespan:     {}", telemetry.last_time).expect("write to string");
    writeln!(out, "\n== metrics ==").expect("write to string");
    write!(out, "{memory}").expect("write to string");
    out
}

/// Ranks the `top` hottest links (by forwards) with utilization over
/// the run's makespan, mean queue wait and queue-depth high-water.
pub fn links(trace: &Trace, top: usize) -> String {
    let (_, telemetry) = aggregate(trace);
    let horizon = telemetry.last_time;
    let ranked = telemetry.hottest_links();
    let mut out = String::new();
    writeln!(
        out,
        "{} link(s) used over {} ticks{}",
        ranked.len(),
        horizon,
        match telemetry.link_imbalance() {
            Some(r) => format!(" (max/mean load imbalance {r:.2})"),
            None => String::new(),
        }
    )
    .expect("write to string");
    let mut table = Table::new(vec![
        "link".into(),
        "forwarded".into(),
        "utilization".into(),
        "mean wait".into(),
        "depth hwm".into(),
    ]);
    for ((from, to), stat) in ranked.into_iter().take(top) {
        table.row(vec![
            format!("{} -> {}", telemetry.name_of(from), telemetry.name_of(to)),
            stat.forwarded.to_string(),
            format!("{:.1}%", stat.utilization(horizon) * 100.0),
            format!("{:.3}", stat.mean_queue_wait()),
            stat.queue_depth_high_water.to_string(),
        ]);
    }
    write!(out, "{table}").expect("write to string");
    out
}

/// A per-message or per-hop metric that `dbr trace hist` can render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMetric {
    /// Hops per delivered message.
    Hops,
    /// End-to-end latency per delivered message, in ticks.
    Latency,
    /// `hops − D(X,Y)` per delivered message.
    Stretch,
    /// Ticks spent waiting for a busy link, per forward.
    QueueWait,
    /// Messages already queued on the chosen link, per forward.
    QueueDepth,
    /// Handover-to-arrival ticks, per forward.
    PerHopLatency,
}

/// The metric names `dbr trace hist` accepts.
pub const METRIC_NAMES: &str = "hops|latency|stretch|queue-wait|queue-depth|per-hop-latency";

impl TraceMetric {
    /// Parses a CLI metric name.
    ///
    /// # Errors
    ///
    /// Lists the accepted names when `s` is not one of them.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "hops" => Self::Hops,
            "latency" => Self::Latency,
            "stretch" => Self::Stretch,
            "queue-wait" => Self::QueueWait,
            "queue-depth" => Self::QueueDepth,
            "per-hop-latency" => Self::PerHopLatency,
            other => {
                return Err(format!(
                    "unknown metric '{other}' (expected {METRIC_NAMES})"
                ))
            }
        })
    }

    /// The CLI name of the metric.
    pub fn name(self) -> &'static str {
        match self {
            Self::Hops => "hops",
            Self::Latency => "latency",
            Self::Stretch => "stretch",
            Self::QueueWait => "queue-wait",
            Self::QueueDepth => "queue-depth",
            Self::PerHopLatency => "per-hop-latency",
        }
    }

    fn select(self, memory: &InMemoryRecorder) -> &debruijn_net::Histogram {
        match self {
            Self::Hops => &memory.hops,
            Self::Latency => &memory.latency,
            Self::Stretch => &memory.stretch,
            Self::QueueWait => &memory.queue_wait,
            Self::QueueDepth => &memory.queue_depth,
            Self::PerHopLatency => &memory.per_hop_latency,
        }
    }
}

/// Renders one metric of a trace as an ASCII histogram with a
/// quantile headline.
pub fn hist(trace: &Trace, metric: TraceMetric) -> String {
    let (memory, _) = aggregate(trace);
    let h = metric.select(&memory);
    let mut out = String::new();
    writeln!(
        out,
        "{} over {} observation(s) (mean {:.4}, p50 {}, p90 {}, p99 {}, max {}):",
        metric.name(),
        h.count(),
        h.mean(),
        h.percentile(50.0).unwrap_or(0),
        h.percentile(90.0).unwrap_or(0),
        h.percentile(99.0).unwrap_or(0),
        h.max().unwrap_or(0)
    )
    .expect("write to string");
    write!(out, "{h}").expect("write to string");
    out
}

/// Formats a float cell for the diff table.
fn float_cell(v: f64) -> String {
    format!("{v:.4}")
}

/// Signed delta between two integer cells.
fn int_delta(a: u64, b: u64) -> String {
    if b >= a {
        format!("+{}", b - a)
    } else {
        format!("-{}", a - b)
    }
}

/// Compares two traces metric by metric (`A` is the baseline; deltas
/// are `B − A`).
pub fn diff(a: &Trace, b: &Trace) -> String {
    let (ma, ta) = aggregate(a);
    let (mb, tb) = aggregate(b);
    let mut table = Table::new(vec![
        "metric".into(),
        "A".into(),
        "B".into(),
        "delta".into(),
    ]);
    let mut int_row = |name: &str, va: u64, vb: u64| {
        table.row(vec![
            name.into(),
            va.to_string(),
            vb.to_string(),
            int_delta(va, vb),
        ]);
    };
    int_row("injected", ma.injected, mb.injected);
    int_row("delivered", ma.delivered, mb.delivered);
    int_row("dropped", ma.dropped(), mb.dropped());
    int_row("reroutes", ma.reroutes, mb.reroutes);
    int_row(
        "wildcards",
        ma.wildcards_resolved(),
        mb.wildcards_resolved(),
    );
    int_row("makespan", ta.last_time, tb.last_time);
    int_row("links used", ta.links.len() as u64, tb.links.len() as u64);
    int_row(
        "p99 latency",
        ma.latency.percentile(99.0).unwrap_or(0),
        mb.latency.percentile(99.0).unwrap_or(0),
    );
    int_row(
        "max latency",
        ma.latency.max().unwrap_or(0),
        mb.latency.max().unwrap_or(0),
    );
    int_row(
        "max queue depth",
        ma.queue_depth.max().unwrap_or(0),
        mb.queue_depth.max().unwrap_or(0),
    );
    let mut float_row = |name: &str, va: f64, vb: f64| {
        table.row(vec![
            name.into(),
            float_cell(va),
            float_cell(vb),
            format!("{:+.4}", vb - va),
        ]);
    };
    float_row("mean hops", ma.hops.mean(), mb.hops.mean());
    float_row("mean stretch", ma.stretch.mean(), mb.stretch.mean());
    float_row("mean latency", ma.latency.mean(), mb.latency.mean());
    float_row(
        "mean queue wait",
        ma.queue_wait.mean(),
        mb.queue_wait.mean(),
    );
    table.to_string()
}

/// Renders a trace as Prometheus exposition text — the same families
/// a live `dbr simulate --listen` scrape serves (minus the core
/// profile collectors, which are process-wide and not part of the
/// event stream).
///
/// The fold fans out over `threads` workers (1 = inline, 0 = all
/// cores) via [`debruijn_net::metrics::replay_sharded`]; the output is
/// byte-identical for every thread count.
pub fn prom(trace: &Trace, threads: usize) -> String {
    debruijn_net::metrics::replay_sharded(threads, &trace.events).render()
}

/// Converts a trace to a Chrome trace-event JSON array (the format
/// `chrome://tracing` and Perfetto read), returning the writer.
///
/// Produces the same file as running `dbr simulate --chrome-trace`
/// live, since both feed the identical event stream to
/// [`ChromeTraceRecorder`].
///
/// # Errors
///
/// Returns the first write error.
pub fn export<W: io::Write>(trace: &Trace, out: W) -> io::Result<W> {
    let mut chrome = ChromeTraceRecorder::new(out);
    for event in &trace.events {
        chrome.record(event);
    }
    chrome.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::Word;
    use debruijn_net::record::render_json;
    use debruijn_net::DropReason;

    fn w(d: u8, s: &str) -> Word {
        Word::parse(d, s).unwrap()
    }

    /// A tiny two-message stream: one delivered over one hop, one
    /// dropped.
    fn sample(d: u8, src: &str, dst: &str) -> Trace {
        let events = vec![
            NetEvent::Inject {
                time: 0,
                message: 0,
                source: w(d, src),
                destination: w(d, dst),
                route_len: 1,
                shortest: 1,
            },
            NetEvent::Inject {
                time: 0,
                message: 1,
                source: w(d, dst),
                destination: w(d, src),
                route_len: 1,
                shortest: 1,
            },
            NetEvent::Forward {
                time: 0,
                message: 0,
                hop: 0,
                from: w(d, src),
                to: w(d, dst),
                departs: 1,
                arrives: 3,
                queue_wait: 1,
                queue_depth: 0,
            },
            NetEvent::Deliver {
                time: 3,
                message: 0,
                hops: 1,
                latency: 3,
                shortest: 1,
            },
            NetEvent::Drop {
                time: 4,
                message: 1,
                reason: DropReason::NoRoute,
                at: w(d, dst),
                upstream: None,
            },
        ];
        Trace { d, events }
    }

    fn write_jsonl(trace: &Trace, name: &str) -> String {
        let path = std::env::temp_dir().join(format!("dbr-{name}-{}.jsonl", std::process::id()));
        let text: String = trace.events.iter().map(|e| render_json(e) + "\n").collect();
        std::fs::write(&path, text).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn radix_inference_reads_addresses_not_field_names() {
        let t = sample(2, "0110", "1011");
        let text: String = t.events.iter().map(|e| render_json(e) + "\n").collect();
        assert_eq!(infer_radix(&text), 2);
        let t = sample(10, "0919", "9090");
        let text: String = t.events.iter().map(|e| render_json(e) + "\n").collect();
        assert_eq!(infer_radix(&text), 10);
        let t = sample(12, "11.0.3", "3.11.0");
        let text: String = t.events.iter().map(|e| render_json(e) + "\n").collect();
        assert_eq!(infer_radix(&text), 12);
        // Empty traces default to binary.
        assert_eq!(infer_radix(""), 2);
    }

    #[test]
    fn load_round_trips_and_reports_bad_lines() {
        let t = sample(2, "0110", "1011");
        let path = write_jsonl(&t, "load");
        let loaded = load(&path, None).unwrap();
        assert_eq!(loaded.d, 2);
        assert_eq!(loaded.events, t.events);
        std::fs::write(&path, "{\"type\":\"nonsense\"}\n").unwrap();
        let err = load(&path, None).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        std::fs::remove_file(&path).ok();
        assert!(load("/no/such/file.jsonl", None).is_err());
    }

    #[test]
    fn drop_breakdown_formats_reasons_in_order() {
        assert_eq!(drop_breakdown(&BTreeMap::new()), "0");
        let mut by_reason = BTreeMap::new();
        by_reason.insert("ttl", 2u64);
        by_reason.insert("dead-link", 3u64);
        // BTreeMap ordering: alphabetical by reason name.
        assert_eq!(drop_breakdown(&by_reason), "5 (dead-link 3, ttl 2)");
    }

    #[test]
    fn prom_renders_trace_counters_thread_count_invariantly() {
        let t = sample(2, "0110", "1011");
        let text = prom(&t, 1);
        assert!(text.contains("dbr_sim_injected_total 2"), "{text}");
        assert!(text.contains("dbr_sim_delivered_total 1"), "{text}");
        assert!(
            text.contains("dbr_sim_dropped_total{reason=\"no-route\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dbr_link_forward_total{from=\"0110\",to=\"1011\"} 1"),
            "{text}"
        );
        for threads in [2, 4, 0] {
            assert_eq!(text, prom(&t, threads), "threads = {threads}");
        }
    }

    #[test]
    fn summary_reconstructs_counters_and_histograms() {
        let out = summary(&sample(2, "0110", "1011"));
        assert!(out.contains("events:       5 (radix 2)"), "{out}");
        assert!(out.contains("delivered:    1/2"), "{out}");
        assert!(out.contains("dropped:      1 (no-route 1)"), "{out}");
        // One forward departing at 1, arriving at 3: a 2-tick hop.
        assert!(
            out.contains("per-hop:      mean 2.0000, p50 2, p90 2, p99 2, max 2"),
            "{out}"
        );
        assert!(out.contains("mean hops:    1.0000"), "{out}");
        assert!(out.contains("max latency:  3"), "{out}");
        assert!(out.contains("makespan:     4"), "{out}");
        assert!(out.contains("dropped (no-route): 1"), "{out}");
        assert!(out.contains("hops per delivered message"), "{out}");
    }

    #[test]
    fn links_ranks_by_forwards() {
        let out = links(&sample(2, "0110", "1011"), 10);
        assert!(out.contains("1 link(s) used over 4 ticks"), "{out}");
        assert!(out.contains("0110 -> 1011"), "{out}");
        // 2 busy ticks ([1, 3)) over a 4-tick makespan.
        assert!(out.contains("50.0%"), "{out}");
        // top = 0 keeps the header but no rows.
        let none = links(&sample(2, "0110", "1011"), 0);
        assert!(!none.contains("0110 -> 1011"), "{none}");
    }

    #[test]
    fn hist_selects_each_metric() {
        let t = sample(2, "0110", "1011");
        for name in METRIC_NAMES.split('|') {
            let metric = TraceMetric::parse(name).unwrap();
            assert_eq!(metric.name(), name);
            let out = hist(&t, metric);
            assert!(out.contains(name), "{out}");
            assert!(out.contains("mean"), "{out}");
        }
        assert!(TraceMetric::parse("hopss").is_err());
    }

    #[test]
    fn diff_reports_deltas_in_both_directions() {
        let a = sample(2, "0110", "1011");
        let mut b = sample(2, "0110", "1011");
        // Drop the drop: run B delivers everything it forwards.
        b.events.pop();
        let out = diff(&a, &b);
        assert!(out.contains("dropped"), "{out}");
        assert!(out.contains("-1"), "{out}");
        let reverse = diff(&b, &a);
        assert!(reverse.contains("+1"), "{reverse}");
        assert!(out.contains("mean hops"), "{out}");
        assert!(out.contains("+0.0000"), "{out}");
    }

    #[test]
    fn export_writes_a_chrome_trace_array() {
        let t = sample(2, "0110", "1011");
        let bytes = export(&t, Vec::new()).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("[\n{"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"thread_name\""), "{text}");
        assert!(text.contains("\"ph\":\"b\""), "{text}");
    }
}
