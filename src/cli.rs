//! Implementation of the `dbr` command-line tool.
//!
//! Kept in the library (rather than the binary) so the argument parsing
//! and command logic are unit-testable. The binary `src/bin/dbr.rs` is a
//! thin wrapper. No external argument-parsing dependency: the grammar is
//! small and fixed.

use std::fmt::Write as _;
use std::sync::Arc;

use debruijn_analysis::{average, Table};
use debruijn_core::distance::undirected::Engine;
use debruijn_core::{directed_average_distance, distance, profile, routing, DeBruijn, Word};
use debruijn_graph::{census, diameter, euler, DebruijnGraph};
use debruijn_net::metrics::{
    register_core_profile, AnomalyTriggers, FlightRecorder, MetricsRegistry, RegistryRecorder,
    ScrapeServer,
};
use debruijn_net::record::{parse_event, FanoutRecorder, InMemoryRecorder, JsonlRecorder};
use debruijn_net::service::{QueryService, ServiceConfig};
use debruijn_net::telemetry::{ChromeTraceRecorder, SnapshotRecorder};
use debruijn_net::{
    workload, MonitorConfig, MonitorSet, NetEvent, NextHopMode, ProfileConfig, Recorder,
    RouterKind, ShardedSimulation, SimConfig, SimReport, Simulation, Verdict, WildcardPolicy,
};

use crate::trace::{self, TraceMetric};

/// A parsed `dbr` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `dbr route <d> <X> <Y> [--directed] [--engine E]` or
    /// `dbr route <d> --batch FILE [--threads N] …`
    Route {
        /// Digit radix.
        d: u8,
        /// The single source/destination pair (`None` in batch mode).
        pair: Option<(String, String)>,
        /// Uni-directional network (Algorithm 1) instead of Algorithm 2/4.
        directed: bool,
        /// Engine override for the bidirectional case.
        engine: Engine,
        /// Worker threads for batch mode (1 = inline, 0 = all cores).
        threads: usize,
        /// Read whitespace-separated "X Y" pairs from this file (`-` =
        /// stdin), one route per line.
        batch: Option<String>,
    },
    /// `dbr distance <d> <X> <Y> [--directed] [--engine E]` or
    /// `dbr distance <d> --batch FILE [--threads N] …`
    Distance {
        /// Digit radix.
        d: u8,
        /// The single source/destination pair (`None` in batch mode).
        pair: Option<(String, String)>,
        /// Uni-directional distance (Property 1) instead of Theorem 2.
        directed: bool,
        /// Engine for the undirected distance (default: auto crossover).
        engine: Engine,
        /// Worker threads for batch mode (1 = inline, 0 = all cores).
        threads: usize,
        /// Read whitespace-separated "X Y" pairs from this file (`-` =
        /// stdin), one distance per line.
        batch: Option<String>,
    },
    /// `dbr sequence <d> <n> [--prefer-largest]`
    Sequence {
        /// Digit radix.
        d: u8,
        /// Window length.
        n: usize,
        /// Use Martin's greedy generator instead of Hierholzer.
        prefer_largest: bool,
    },
    /// `dbr census <d> <k>`
    Census {
        /// Digit radix.
        d: u8,
        /// Word length.
        k: usize,
    },
    /// `dbr average <d> <k> [--directed] [--samples N]`
    Average {
        /// Digit radix.
        d: u8,
        /// Word length.
        k: usize,
        /// Directed instead of undirected average.
        directed: bool,
        /// Monte-Carlo sample count (0 = exact enumeration).
        samples: usize,
    },
    /// `dbr simulate <d> <k> [--messages N] [--router R] [--policy P] [--seed S]
    /// [--metrics] [--trace FILE] [--progress N] [--chrome-trace FILE]
    /// [--listen ADDR] [--metrics-out FILE] [--flight-recorder FILE]
    /// [--flight-capacity N] [--faults W1,W2] [--ttl N] [--next-hop T]
    /// [--workload W]`
    Simulate {
        /// Digit radix.
        d: u8,
        /// Word length.
        k: usize,
        /// Number of uniform random messages.
        messages: usize,
        /// Routing strategy.
        router: RouterKind,
        /// Wildcard policy.
        policy: WildcardPolicy,
        /// RNG seed.
        seed: u64,
        /// Worker threads for the route-precompute pass (classic
        /// engine) or the per-tick shard workers (sharded engine).
        threads: usize,
        /// Run the sharded deterministic engine with this many node
        /// partitions (`None` = classic event-driven engine).
        shards: Option<usize>,
        /// Route-cache capacity (0 disables).
        route_cache: usize,
        /// Print per-hop/queue histograms and wildcard/profile counters.
        metrics: bool,
        /// Write every simulation event to this file as JSON lines.
        trace: Option<String>,
        /// Print an in-flight snapshot to stderr every N simulated ticks.
        progress: Option<u64>,
        /// Write a Chrome trace-event (Perfetto) file of the run.
        chrome_trace: Option<String>,
        /// Serve `/metrics` and `/healthz` over HTTP at this address
        /// during the run and until killed.
        listen: Option<String>,
        /// Write Prometheus text snapshots to this file periodically and
        /// after the run.
        metrics_out: Option<String>,
        /// Arm a flight recorder that dumps the pre-anomaly event window
        /// to this JSONL file.
        flight_recorder: Option<String>,
        /// Flight-recorder ring capacity (events kept before an anomaly).
        flight_capacity: usize,
        /// Comma-separated faulty node addresses.
        faults: Option<String>,
        /// Per-message hop budget (0 disables; exceeding it drops with
        /// reason `ttl`).
        ttl: usize,
        /// Forwarding tier for the sharded engine (`--next-hop`).
        next_hop: NextHopMode,
        /// Traffic pattern (`--workload`).
        workload: WorkloadKind,
        /// Fault-localizing monitor placement (`--monitors`).
        monitors: MonitorChoice,
        /// Dump the monitors' anomaly-evidence window to this JSONL
        /// file after the decode.
        monitor_dump: Option<String>,
    },
    /// `dbr profile <d> <k> [--shards S] [--threads N] [--sample N]
    /// [--top K] [--profile-out FILE] [--chrome-out FILE] …` — run the
    /// sharded engine with the profiler armed and print the phase-time
    /// breakdown, per-shard imbalance, and top-k critical paths.
    Profile {
        /// Digit radix.
        d: u8,
        /// Word length.
        k: usize,
        /// Number of messages.
        messages: usize,
        /// Routing strategy (optimal routers only, as for `--shards`).
        router: RouterKind,
        /// Wildcard policy (fallback tier only).
        policy: WildcardPolicy,
        /// RNG seed (also feeds the span sampler).
        seed: u64,
        /// Shard worker threads.
        threads: usize,
        /// Node partitions (the profiled engine is always sharded).
        shards: usize,
        /// Forwarding tier.
        next_hop: NextHopMode,
        /// Traffic pattern.
        workload: WorkloadKind,
        /// Comma-separated faulty node addresses.
        faults: Option<String>,
        /// Per-message hop budget (0 disables).
        ttl: usize,
        /// Causal-tracing rate: tag ~1/N messages (0 disables spans).
        sample: u32,
        /// How many critical paths to print.
        top: usize,
        /// Write the profile as JSON to this file.
        profile_out: Option<String>,
        /// Write a Chrome trace of engine phase slices to this file.
        chrome_out: Option<String>,
        /// Write the simulation event trace (JSONL) to this file.
        trace: Option<String>,
        /// Print the simulation metrics block too.
        metrics: bool,
    },
    /// `dbr serve <d> [--listen ADDR] [--threads N] [--cache-capacity N]
    /// [--max-inflight N] [--batch B] [--flight-dump FILE]` — standing
    /// thread-per-core route/distance query service with `/metrics`.
    Serve {
        /// Digit radix served.
        d: u8,
        /// Bind address (`127.0.0.1:0` picks a free port).
        listen: String,
        /// Worker threads / cache shards (0 = one per core).
        threads: usize,
        /// Total route-cache capacity split across shards (0 disables).
        cache_capacity: usize,
        /// Per-worker queue bound; overflow is shed with 503.
        max_inflight: usize,
        /// Maximum queries a worker answers per wakeup.
        batch: usize,
        /// Arm the queue-depth flight recorder, dumping the
        /// pre-overload window to this JSONL file.
        flight_dump: Option<String>,
    },
    /// `dbr localize <d> <k> <trace.jsonl> [--directed] [--monitors
    /// identifying|all] [--threshold N]` — replay a trace through a
    /// monitor set and print the fault-localization verdict with the
    /// monitor evidence table.
    Localize {
        /// Digit radix.
        d: u8,
        /// Word length.
        k: usize,
        /// The JSONL trace to replay (from `--trace` or a flight dump).
        file: String,
        /// Decode against the directed graph's in-balls (traces from
        /// `--router alg1`/`trivial`) instead of the undirected ones.
        directed: bool,
        /// Monitor placement to decode with.
        monitors: MonitorChoice,
        /// Graded anomaly count a monitor needs before its bit is set.
        threshold: u64,
    },
    /// `dbr trace <summary|links|hist|diff|export> …` — offline
    /// analysis of `--trace` JSONL files.
    Trace {
        /// Which analysis to run.
        action: TraceAction,
    },
    /// `dbr multipath <d> <X> <Y>`
    Multipath {
        /// Digit radix.
        d: u8,
        /// Source address text.
        x: String,
        /// Destination address text.
        y: String,
    },
    /// `dbr gdb <d> <N> <i> <j>`
    Gdb {
        /// Out-degree.
        d: u64,
        /// Vertex count (any `N >= 2`).
        n: u64,
        /// Source vertex.
        i: u64,
        /// Destination vertex.
        j: u64,
    },
    /// `dbr disjoint <d> <X> <Y>`
    Disjoint {
        /// Digit radix.
        d: u8,
        /// Source address text.
        x: String,
        /// Destination address text.
        y: String,
    },
    /// `dbr help`
    Help,
}

/// Monitor placement selected by `dbr simulate --monitors` and
/// `dbr localize --monitors`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorChoice {
    /// No monitors (the `simulate` default — output stays untouched).
    #[default]
    None,
    /// Monitors on a verified 1-identifying code: the cheapest
    /// placement that still makes every single fault's signature
    /// unique.
    Identifying,
    /// Monitors on every vertex: the exhaustive baseline.
    All,
}

impl MonitorChoice {
    /// Parses a `--monitors` value: `identifying`, `all`, or `none`.
    fn parse(value: &str) -> Result<Self, String> {
        match value {
            "identifying" => Ok(MonitorChoice::Identifying),
            "all" => Ok(MonitorChoice::All),
            "none" => Ok(MonitorChoice::None),
            other => Err(format!(
                "unknown monitor placement '{other}' (expected identifying|all|none)"
            )),
        }
    }
}

/// Traffic pattern selected by `dbr simulate --workload`.
///
/// `uniform` injects one message per tick ([`workload::uniform_random`]),
/// `burst` injects them all at tick 0 ([`workload::uniform_burst`]), and
/// `zipf:EXP` is a tick-0 burst whose destinations follow a power law
/// with the given exponent ([`workload::zipf`]; `zipf` alone means
/// exponent 1.0). All are deterministic for a fixed `--seed`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WorkloadKind {
    /// One uniform random message per tick (the default).
    #[default]
    Uniform,
    /// All uniform random messages at tick 0.
    Burst,
    /// Zipf-skewed destinations, injected at tick 0.
    Zipf(f64),
}

impl WorkloadKind {
    /// Parses a `--workload` value: `uniform`, `burst`, `zipf`, or
    /// `zipf:EXP`.
    fn parse(value: &str) -> Result<Self, String> {
        match value {
            "uniform" => Ok(WorkloadKind::Uniform),
            "burst" => Ok(WorkloadKind::Burst),
            "zipf" => Ok(WorkloadKind::Zipf(1.0)),
            other => match other.strip_prefix("zipf:") {
                Some(exp) => match exp.parse::<f64>() {
                    Ok(e) if e.is_finite() && e >= 0.0 => Ok(WorkloadKind::Zipf(e)),
                    _ => Err(format!("bad zipf exponent '{exp}' (need finite >= 0)")),
                },
                None => Err(format!(
                    "unknown workload '{other}' (uniform|burst|zipf[:EXP])"
                )),
            },
        }
    }
}

/// One `dbr trace` analysis over JSONL trace files.
///
/// Every action takes `[--radix D]` to override the radix inferred
/// from the file's addresses (see [`trace::infer_radix`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceAction {
    /// `dbr trace summary <file>` — reconstruct the `--metrics` report.
    Summary {
        /// Trace file path.
        file: String,
        /// Radix override.
        radix: Option<u8>,
    },
    /// `dbr trace links <file> [--top N]` — hottest-links table.
    Links {
        /// Trace file path.
        file: String,
        /// Radix override.
        radix: Option<u8>,
        /// How many links to show.
        top: usize,
    },
    /// `dbr trace hist <metric> <file>` — ASCII histogram of one metric.
    Hist {
        /// Which metric to render.
        metric: TraceMetric,
        /// Trace file path.
        file: String,
        /// Radix override.
        radix: Option<u8>,
    },
    /// `dbr trace diff <A> <B>` — per-metric deltas between two runs.
    Diff {
        /// Baseline trace file.
        a: String,
        /// Comparison trace file.
        b: String,
        /// Radix override (applied to both files).
        radix: Option<u8>,
    },
    /// `dbr trace prom <file> [--threads N]` — render the trace as
    /// Prometheus exposition text (what a live scrape would have seen).
    Prom {
        /// Trace file path.
        file: String,
        /// Radix override.
        radix: Option<u8>,
        /// Worker threads for the sharded fold (1 = inline, 0 = all
        /// cores); output is identical for every value.
        threads: usize,
    },
    /// `dbr trace export <in> <out>` — convert to Chrome trace-event
    /// JSON.
    Export {
        /// Input JSONL trace.
        input: String,
        /// Output Chrome-trace path.
        output: String,
        /// Radix override.
        radix: Option<u8>,
    },
}

/// Usage text printed by `dbr help` and on parse errors.
pub const USAGE: &str = "\
dbr — de Bruijn network routing toolbox

USAGE:
  dbr route <d> <X> <Y> [--directed] [--engine E]
  dbr route <d> --batch FILE [--threads N] [--directed] [--engine E]
  dbr distance <d> <X> <Y> [--directed] [--engine E]
  dbr distance <d> --batch FILE [--threads N] [--directed] [--engine E]
  dbr sequence <d> <n> [--prefer-largest]
  dbr census <d> <k>
  dbr average <d> <k> [--directed] [--samples N]
  dbr simulate <d> <k> [--messages N] [--router trivial|alg1|alg2|alg4]
                       [--policy zero|random|round-robin|least-loaded] [--seed S]
                       [--threads N] [--shards S] [--route-cache N]
                       [--metrics] [--trace FILE] [--progress N]
                       [--chrome-trace FILE] [--listen ADDR]
                       [--metrics-out FILE] [--flight-recorder FILE]
                       [--flight-capacity N] [--faults W1,W2] [--ttl N]
                       [--next-hop auto|dense|compressed|fallback]
                       [--workload uniform|burst|zipf[:EXP]]
                       [--monitors identifying|all|none]
                       [--monitor-dump FILE]
  dbr profile <d> <k> [--shards S] [--threads N] [--sample N] [--top K]
                      [--profile-out FILE] [--chrome-out FILE]
                      [--messages N] [--router R] [--policy P] [--seed S]
                      [--next-hop T] [--workload W] [--faults W1,W2]
                      [--ttl N] [--trace FILE] [--metrics]
  dbr serve <d> [--listen ADDR] [--threads N] [--cache-capacity N]
                [--max-inflight N] [--batch B] [--flight-dump FILE]
                                    HTTP route/distance query service
  dbr localize <d> <k> <trace.jsonl> [--directed]
               [--monitors identifying|all] [--threshold N]
                                    decode a fault from a recorded trace
  dbr trace summary <file>          reconstruct the --metrics report
  dbr trace links <file> [--top N]  hottest links, utilization table
  dbr trace hist <metric> <file>    ASCII histogram (hops|latency|stretch|
                                    queue-wait|queue-depth|per-hop-latency)
  dbr trace diff <A> <B>            per-metric deltas between two runs
  dbr trace prom <file>             render as Prometheus exposition text
  dbr trace export <in> <out>       convert to Chrome trace-event JSON
  dbr multipath <d> <X> <Y>
  dbr gdb <d> <N> <i> <j>
  dbr disjoint <d> <X> <Y>
  dbr help

Addresses are digit strings (\"0110\") or dot-separated for d > 10
(\"11.3.0\"). Examples:
  dbr route 2 010011 110100
  dbr average 2 8 --directed
  dbr simulate 2 8 --messages 5000 --router alg4 --policy least-loaded --metrics
  dbr simulate 2 8 --messages 5000 --trace run.jsonl --progress 50
  dbr trace summary run.jsonl

Engines E for the bidirectional distance: auto (default) | bit-parallel |
suffix-tree | mp | naive. auto picks the word-parallel bit-parallel
engine up to k = 512 and the O(k) suffix tree beyond — the measured
crossover where tree construction overtakes the packed diagonal sweep
(see docs/PERFORMANCE.md). --batch FILE reads one \"X Y\" pair per line
(`-` = stdin, `#` comments ok) and prints one result per line;
--threads N fans the batch (or the simulator's route precomputation)
out over N workers (0 = all cores) with results merged in input order,
byte-identical to --threads 1. --route-cache N bounds the simulator's
(source, destination) route cache (clock eviction, 0 disables).
--shards S switches `simulate` to the sharded deterministic engine:
nodes are split into S partitions stepped in parallel (--threads) with
O(1) next-hop forwarding, and the report, trace, and metrics are
identical for every shards/threads combination (only the optimal
routers alg1/alg2/alg4 and drop-on-fault are supported; see
docs/SCALING.md). --next-hop picks the sharded engine's forwarding
tier: auto (default) uses the dense precomputed table when it fits the
memory cap and the O(1)-memory compressed shift-prediction cursor
beyond it (so DG(2,20)'s million nodes simulate without a table);
dense/compressed force a tier, fallback selects the word-level
routers. dense and compressed produce byte-identical reports.
--workload picks the traffic pattern: uniform (one message per tick,
default), burst (all at tick 0), or zipf[:EXP] (tick-0 burst with
power-law destination skew, default exponent 1.0).

`dbr profile` runs the sharded engine with the engine profiler armed:
it prints the same seven report lines as `simulate` (byte-identical —
the profiler observes without perturbing), then a phase-time breakdown
(compute, barrier wait, mailbox drain, batch merge, report), per-shard
imbalance, and the top K critical paths among the ~1/N messages a
deterministic seed-hashed sampler tags for causal span tracing
(--sample N, default 64, 0 = off; the sampled set is identical for
every --shards/--threads combination). --profile-out FILE writes the
profile as JSON; --chrome-out FILE writes engine phase slices as a
Chrome trace with one lane per shard (https://ui.perfetto.dev); see
docs/OBSERVABILITY.md \"Profiling the engine\".

--metrics prints exact histograms (hops, stretch over D(X,Y), per-hop
latency, queue wait/depth, end-to-end latency) and counters (wildcard
resolutions per policy and digit, drops by reason, distance-engine,
route-cache and convergecast profile); --trace FILE streams every event as JSON lines
that every `dbr trace` command can analyse offline (they infer the
radix from the file; pass --radix D to override); --progress N prints
an in-flight snapshot to stderr every N ticks; --chrome-trace FILE
writes a timeline for https://ui.perfetto.dev.

--listen ADDR serves Prometheus text at http://ADDR/metrics (plus
/healthz) while the run executes and until the process is killed; the
bound address is printed to stderr, so `--listen 127.0.0.1:0` works.
--metrics-out FILE writes the same text to a file periodically and at
exit. --flight-recorder FILE arms an anomaly-triggered ring buffer
(drop/no-route bursts, queue high-water, stalled links) that dumps the
pre-anomaly event window as JSONL readable by every `dbr trace`
command; it re-arms after each capture, numbering later dumps FILE.2,
FILE.3, … so firings never overwrite each other (16 max);
--flight-capacity N sizes the ring (default 4096). --faults
W1,W2 marks nodes faulty; --ttl N drops messages exceeding N hops
(reason `ttl`).

--monitors places fault-localizing monitors on the network (see
docs/OBSERVABILITY.md \"Localizing faults\"): `identifying` uses a
verified 1-identifying code of DG(d,k) — the cheapest placement whose
anomaly signatures stay unique per faulty node — and `all` monitors
every vertex. Each monitor folds the drops, routing failures and
queue breaches attributed to it into a signature bit; after the run
the signature decodes to a verdict (`exact — faulty node W`, `ranked`,
or `clean`) printed with the per-monitor evidence table, and the
dbr_monitor_* families join any --listen/--metrics-out registry.
--monitor-dump FILE writes the anomalous-event evidence window as
JSONL after the decode. `dbr localize <d> <k> <trace.jsonl>` replays a
recorded trace (from --trace or a flight dump) through the same
monitors offline and prints the same table and verdict; pass
--directed for traces routed with alg1/trivial, --threshold N to
require N graded anomalies per signature bit (default 1).

`dbr serve <d>` answers GET /distance?x=X&y=Y and
/route?x=X&y=Y (add &directed=1 for Algorithm 1) over keep-alive
HTTP/1.1 on a thread-per-core worker pool with sharded route caches:
--threads N sets the worker/shard count (0 = one per core),
--cache-capacity the total cached routes, --max-inflight the
per-worker queue bound (overflow is shed with 503 + Retry-After),
--batch the per-wakeup drain size, and --flight-dump FILE arms a
queue-depth flight recorder that dumps the pre-overload window.
Malformed queries get 400 with a JSON error body; unknown endpoints
404. dbr_service_* metrics are exported at /metrics and printed as an
end-of-run dump after GET /quitquitquit. See docs/OBSERVABILITY.md.
";

/// Usage text for the `dbr trace` family, shown on trace parse errors.
pub const TRACE_USAGE: &str = "\
USAGE:
  dbr trace summary <file> [--radix D]
  dbr trace links <file> [--top N] [--radix D]
  dbr trace hist <metric> <file> [--radix D]
      metrics: hops|latency|stretch|queue-wait|queue-depth|per-hop-latency
  dbr trace diff <A> <B> [--radix D]
  dbr trace prom <file> [--threads N] [--radix D]
  dbr trace export <in> <out> [--radix D]
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message describing the first problem.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(|| "missing subcommand".to_string())?;
    let rest: Vec<&str> = it.collect();
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "route" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&["--directed", "--engine", "--threads", "--batch"])?;
            let batch = flags.value("--batch")?.map(String::from);
            let (d, pair) = pair_or_batch(&pos, batch.is_some(), "route")?;
            Ok(Command::Route {
                d,
                pair,
                directed: flags.has("--directed")?,
                engine: parse_engine(flags.value("--engine")?)?,
                threads: parse_threads(&flags)?,
                batch,
            })
        }
        "distance" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&["--directed", "--engine", "--threads", "--batch"])?;
            let batch = flags.value("--batch")?.map(String::from);
            let (d, pair) = pair_or_batch(&pos, batch.is_some(), "distance")?;
            Ok(Command::Distance {
                d,
                pair,
                directed: flags.has("--directed")?,
                engine: parse_engine(flags.value("--engine")?)?,
                threads: parse_threads(&flags)?,
                batch,
            })
        }
        "sequence" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&["--prefer-largest"])?;
            let [d, n] = positional::<2>(&pos, "sequence <d> <n>")?;
            Ok(Command::Sequence {
                d: parse_radix(d)?,
                n: parse_num(n, "n")?,
                prefer_largest: flags.has("--prefer-largest")?,
            })
        }
        "census" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_empty()?;
            let [d, k] = positional::<2>(&pos, "census <d> <k>")?;
            Ok(Command::Census {
                d: parse_radix(d)?,
                k: parse_num(k, "k")?,
            })
        }
        "average" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&["--directed", "--samples"])?;
            let [d, k] = positional::<2>(&pos, "average <d> <k>")?;
            Ok(Command::Average {
                d: parse_radix(d)?,
                k: parse_num(k, "k")?,
                directed: flags.has("--directed")?,
                samples: flags
                    .value("--samples")?
                    .map(|v| parse_num(v, "samples"))
                    .transpose()?
                    .unwrap_or(0),
            })
        }
        "simulate" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&[
                "--messages",
                "--router",
                "--policy",
                "--seed",
                "--threads",
                "--shards",
                "--route-cache",
                "--metrics",
                "--trace",
                "--progress",
                "--chrome-trace",
                "--listen",
                "--metrics-out",
                "--flight-recorder",
                "--flight-capacity",
                "--faults",
                "--ttl",
                "--next-hop",
                "--workload",
                "--monitors",
                "--monitor-dump",
            ])?;
            let [d, k] = positional::<2>(&pos, "simulate <d> <k>")?;
            Ok(Command::Simulate {
                d: parse_radix(d)?,
                k: parse_num(k, "k")?,
                messages: flags
                    .value("--messages")?
                    .map(|v| parse_num(v, "messages"))
                    .transpose()?
                    .unwrap_or(1000),
                router: parse_router(flags.value("--router")?)?,
                policy: parse_policy(flags.value("--policy")?)?,
                seed: parse_seed(&flags)?,
                threads: parse_threads(&flags)?,
                shards: flags
                    .value("--shards")?
                    .map(|v| match parse_num(v, "shards") {
                        Ok(n) if n > 0 => Ok(n),
                        Ok(_) => Err("bad shards '0' (need >= 1)".to_string()),
                        Err(e) => Err(e),
                    })
                    .transpose()?,
                route_cache: flags
                    .value("--route-cache")?
                    .map(|v| parse_num(v, "route-cache"))
                    .transpose()?
                    .unwrap_or(SimConfig::default().route_cache),
                metrics: flags.has("--metrics")?,
                trace: flags.value("--trace")?.map(String::from),
                progress: flags
                    .value("--progress")?
                    .map(|v| match v.parse::<u64>() {
                        Ok(n) if n > 0 => Ok(n),
                        _ => Err(format!("bad progress interval '{v}' (need ticks >= 1)")),
                    })
                    .transpose()?,
                chrome_trace: flags.value("--chrome-trace")?.map(String::from),
                listen: flags.value("--listen")?.map(String::from),
                metrics_out: flags.value("--metrics-out")?.map(String::from),
                flight_recorder: flags.value("--flight-recorder")?.map(String::from),
                flight_capacity: flags
                    .value("--flight-capacity")?
                    .map(|v| match parse_num(v, "flight-capacity") {
                        Ok(n) if n > 0 => Ok(n),
                        Ok(_) => Err("bad flight-capacity '0' (need >= 1)".to_string()),
                        Err(e) => Err(e),
                    })
                    .transpose()?
                    .unwrap_or(4096),
                faults: flags.value("--faults")?.map(String::from),
                ttl: flags
                    .value("--ttl")?
                    .map(|v| parse_num(v, "ttl"))
                    .transpose()?
                    .unwrap_or(0),
                next_hop: parse_next_hop(flags.value("--next-hop")?)?,
                workload: flags
                    .value("--workload")?
                    .map(WorkloadKind::parse)
                    .transpose()?
                    .unwrap_or_default(),
                monitors: flags
                    .value("--monitors")?
                    .map(MonitorChoice::parse)
                    .transpose()?
                    .unwrap_or_default(),
                monitor_dump: flags.value("--monitor-dump")?.map(String::from),
            })
        }
        "profile" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&[
                "--messages",
                "--router",
                "--policy",
                "--seed",
                "--threads",
                "--shards",
                "--next-hop",
                "--workload",
                "--faults",
                "--ttl",
                "--sample",
                "--top",
                "--profile-out",
                "--chrome-out",
                "--trace",
                "--metrics",
            ])?;
            let [d, k] = positional::<2>(&pos, "profile <d> <k>")?;
            Ok(Command::Profile {
                d: parse_radix(d)?,
                k: parse_num(k, "k")?,
                messages: flags
                    .value("--messages")?
                    .map(|v| parse_num(v, "messages"))
                    .transpose()?
                    .unwrap_or(1000),
                router: parse_router(flags.value("--router")?)?,
                policy: parse_policy(flags.value("--policy")?)?,
                seed: parse_seed(&flags)?,
                threads: parse_threads(&flags)?,
                shards: flags
                    .value("--shards")?
                    .map(|v| match parse_num(v, "shards") {
                        Ok(n) if n > 0 => Ok(n),
                        Ok(_) => Err("bad shards '0' (need >= 1)".to_string()),
                        Err(e) => Err(e),
                    })
                    .transpose()?
                    .unwrap_or(4),
                next_hop: parse_next_hop(flags.value("--next-hop")?)?,
                workload: flags
                    .value("--workload")?
                    .map(WorkloadKind::parse)
                    .transpose()?
                    .unwrap_or_default(),
                faults: flags.value("--faults")?.map(String::from),
                ttl: flags
                    .value("--ttl")?
                    .map(|v| parse_num(v, "ttl"))
                    .transpose()?
                    .unwrap_or(0),
                sample: flags
                    .value("--sample")?
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| format!("bad sample rate '{v}'"))
                    })
                    .transpose()?
                    .unwrap_or(64),
                top: flags
                    .value("--top")?
                    .map(|v| parse_num(v, "top"))
                    .transpose()?
                    .unwrap_or(5),
                profile_out: flags.value("--profile-out")?.map(String::from),
                chrome_out: flags.value("--chrome-out")?.map(String::from),
                trace: flags.value("--trace")?.map(String::from),
                metrics: flags.has("--metrics")?,
            })
        }
        "serve" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&[
                "--listen",
                "--threads",
                "--cache-capacity",
                "--max-inflight",
                "--batch",
                "--flight-dump",
            ])?;
            let [d] = positional::<1>(&pos, "serve <d> [--listen ADDR] [--threads N]")?;
            let numeric = |flag: &str, name: &str, default: usize| {
                flags
                    .value(flag)?
                    .map(|v| parse_num(v, name))
                    .transpose()
                    .map(|v| v.unwrap_or(default))
            };
            let max_inflight = numeric("--max-inflight", "max-inflight", 256)?;
            if max_inflight == 0 {
                return Err("--max-inflight must be at least 1".into());
            }
            let batch = numeric("--batch", "batch", 32)?;
            if batch == 0 {
                return Err("--batch must be at least 1".into());
            }
            Ok(Command::Serve {
                d: parse_radix(d)?,
                listen: flags
                    .value("--listen")?
                    .unwrap_or("127.0.0.1:0")
                    .to_string(),
                threads: numeric("--threads", "threads", 0)?,
                cache_capacity: numeric("--cache-capacity", "cache-capacity", 4096)?,
                max_inflight,
                batch,
                flight_dump: flags.value("--flight-dump")?.map(String::from),
            })
        }
        "localize" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_only(&["--directed", "--monitors", "--threshold"])?;
            let [d, k, file] = positional::<3>(&pos, "localize <d> <k> <trace.jsonl>")?;
            let monitors = flags
                .value("--monitors")?
                .map(MonitorChoice::parse)
                .transpose()?
                .unwrap_or(MonitorChoice::Identifying);
            if monitors == MonitorChoice::None {
                return Err("localize needs monitors (identifying|all)".into());
            }
            Ok(Command::Localize {
                d: parse_radix(d)?,
                k: parse_num(k, "k")?,
                file: file.to_string(),
                directed: flags.has("--directed")?,
                monitors,
                threshold: flags
                    .value("--threshold")?
                    .map(|v| match v.parse::<u64>() {
                        Ok(n) if n > 0 => Ok(n),
                        _ => Err(format!("bad threshold '{v}' (need >= 1)")),
                    })
                    .transpose()?
                    .unwrap_or(1),
            })
        }
        "trace" => {
            let (pos, flags) = split_flags(&rest);
            let (&action, pos) = pos
                .split_first()
                .ok_or_else(|| format!("missing trace action\n\n{TRACE_USAGE}"))?;
            let radix = flags.value("--radix")?.map(parse_radix).transpose()?;
            let action = match action {
                "summary" => {
                    flags.expect_only(&["--radix"])?;
                    let [file] = positional::<1>(pos, "trace summary <file>")?;
                    TraceAction::Summary {
                        file: file.to_string(),
                        radix,
                    }
                }
                "links" => {
                    flags.expect_only(&["--radix", "--top"])?;
                    let [file] = positional::<1>(pos, "trace links <file>")?;
                    TraceAction::Links {
                        file: file.to_string(),
                        radix,
                        top: flags
                            .value("--top")?
                            .map(|v| parse_num(v, "top"))
                            .transpose()?
                            .unwrap_or(10),
                    }
                }
                "hist" => {
                    flags.expect_only(&["--radix"])?;
                    let [metric, file] = positional::<2>(pos, "trace hist <metric> <file>")?;
                    TraceAction::Hist {
                        metric: TraceMetric::parse(metric)?,
                        file: file.to_string(),
                        radix,
                    }
                }
                "diff" => {
                    flags.expect_only(&["--radix"])?;
                    let [a, b] = positional::<2>(pos, "trace diff <A> <B>")?;
                    TraceAction::Diff {
                        a: a.to_string(),
                        b: b.to_string(),
                        radix,
                    }
                }
                "prom" => {
                    flags.expect_only(&["--radix", "--threads"])?;
                    let [file] = positional::<1>(pos, "trace prom <file>")?;
                    TraceAction::Prom {
                        file: file.to_string(),
                        radix,
                        threads: parse_threads(&flags)?,
                    }
                }
                "export" => {
                    flags.expect_only(&["--radix"])?;
                    let [input, output] = positional::<2>(pos, "trace export <in> <out>")?;
                    TraceAction::Export {
                        input: input.to_string(),
                        output: output.to_string(),
                        radix,
                    }
                }
                other => {
                    return Err(format!("unknown trace action '{other}'\n\n{TRACE_USAGE}"));
                }
            };
            Ok(Command::Trace { action })
        }
        "multipath" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_empty()?;
            let [d, x, y] = positional::<3>(&pos, "multipath <d> <X> <Y>")?;
            Ok(Command::Multipath {
                d: parse_radix(d)?,
                x: x.to_string(),
                y: y.to_string(),
            })
        }
        "gdb" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_empty()?;
            let [d, n, i, j] = positional::<4>(&pos, "gdb <d> <N> <i> <j>")?;
            let num =
                |s: &str, what: &str| s.parse::<u64>().map_err(|_| format!("bad {what} '{s}'"));
            Ok(Command::Gdb {
                d: num(d, "d")?,
                n: num(n, "N")?,
                i: num(i, "i")?,
                j: num(j, "j")?,
            })
        }
        "disjoint" => {
            let (pos, flags) = split_flags(&rest);
            flags.expect_empty()?;
            let [d, x, y] = positional::<3>(&pos, "disjoint <d> <X> <Y>")?;
            Ok(Command::Disjoint {
                d: parse_radix(d)?,
                x: x.to_string(),
                y: y.to_string(),
            })
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

/// Lines per work unit in `route`/`distance` batch mode. The chunk
/// geometry — not the worker count — partitions the input, so the
/// output is byte-identical for every `--threads` value; within a chunk
/// the destination-major kernel amortizes per-destination work.
const BATCH_CHUNK: usize = 512;

/// Executes a command, returning its stdout text.
///
/// # Errors
///
/// Returns a human-readable message on invalid inputs (bad digits,
/// mismatched lengths, spaces too large to enumerate, …).
pub fn run(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Route {
            d,
            pair,
            directed,
            engine,
            threads,
            batch,
        } => {
            let route_one = |x: &Word, y: &Word| {
                if *directed {
                    routing::algorithm1(x, y)
                } else {
                    routing::route_with_engine(x, y, *engine)
                }
            };
            match (pair, batch) {
                (Some((x, y)), _) => {
                    let (x, y) = parse_pair(*d, x, y)?;
                    let route = route_one(&x, &y);
                    writeln!(out, "distance: {}", route.len()).expect("write to string");
                    writeln!(out, "route:    {route}").expect("write to string");
                }
                (None, Some(file)) => {
                    let pairs = read_batch_pairs(*d, file)?;
                    // Fixed-size chunks through the destination-major
                    // kernel: per-destination preprocessing amortizes
                    // within each chunk, one scratch + route buffer +
                    // output string per chunk instead of per line, and
                    // the chunk geometry (not the thread count) fixes
                    // the output, so `--threads` never changes a byte.
                    let chunks = debruijn_parallel::map_chunks(
                        *threads,
                        pairs.len(),
                        BATCH_CHUNK,
                        |range| {
                            let mut scratch = debruijn_core::BatchScratch::new();
                            let mut routes = Vec::new();
                            debruijn_core::route_batch_into(
                                &pairs[range],
                                *directed,
                                *engine,
                                &mut scratch,
                                &mut routes,
                            );
                            let mut text = String::new();
                            for r in &routes {
                                writeln!(text, "{} {r}", r.len()).expect("write to string");
                            }
                            text
                        },
                    );
                    for chunk in chunks {
                        out.push_str(&chunk);
                    }
                }
                (None, None) => unreachable!("parser guarantees pair or batch"),
            }
        }
        Command::Distance {
            d,
            pair,
            directed,
            engine,
            threads,
            batch,
        } => {
            let dist_one = |x: &Word, y: &Word| {
                if *directed {
                    distance::directed::distance(x, y)
                } else {
                    distance::undirected::distance_with(*engine, x, y)
                }
            };
            match (pair, batch) {
                (Some((x, y)), _) => {
                    let (x, y) = parse_pair(*d, x, y)?;
                    writeln!(out, "{}", dist_one(&x, &y)).expect("write to string");
                }
                (None, Some(file)) => {
                    let pairs = read_batch_pairs(*d, file)?;
                    let chunks = debruijn_parallel::map_chunks(
                        *threads,
                        pairs.len(),
                        BATCH_CHUNK,
                        |range| {
                            let mut scratch = debruijn_core::BatchScratch::new();
                            let mut dists = Vec::new();
                            debruijn_core::distance_batch_into(
                                &pairs[range],
                                *directed,
                                *engine,
                                &mut scratch,
                                &mut dists,
                            );
                            let mut text = String::new();
                            for dist in &dists {
                                writeln!(text, "{dist}").expect("write to string");
                            }
                            text
                        },
                    );
                    for chunk in chunks {
                        out.push_str(&chunk);
                    }
                }
                (None, None) => unreachable!("parser guarantees pair or batch"),
            }
        }
        Command::Sequence {
            d,
            n,
            prefer_largest,
        } => {
            if *d < 2 || *n < 1 {
                return Err("sequence requires d >= 2 and n >= 1".into());
            }
            if (*d as u128)
                .checked_pow(*n as u32)
                .is_none_or(|v| v > 1 << 24)
            {
                return Err("sequence too long to print (d^n > 2^24)".into());
            }
            let seq = if *prefer_largest {
                euler::de_bruijn_sequence_prefer_largest(*d, *n)
            } else {
                euler::de_bruijn_sequence(*d, *n)
            };
            let rendered: Vec<String> = seq.iter().map(u8::to_string).collect();
            let sep = if *d > 10 { "." } else { "" };
            writeln!(out, "{}", rendered.join(sep)).expect("write to string");
        }
        Command::Census { d, k } => {
            let space = space_of(*d, *k)?;
            let dg =
                DebruijnGraph::directed(space).map_err(|e| format!("cannot materialize: {e}"))?;
            let ug =
                DebruijnGraph::undirected(space).map_err(|e| format!("cannot materialize: {e}"))?;
            let dc = census::census(&dg);
            let uc = census::census(&ug);
            writeln!(out, "DG({d},{k}): {} vertices", dc.nodes).expect("write");
            writeln!(
                out,
                "directed:   {} arcs, diameter {}",
                dc.edges,
                diameter::diameter(&dg)
            )
            .expect("write");
            writeln!(
                out,
                "undirected: {} edges, diameter {}",
                uc.edges,
                diameter::diameter(&ug)
            )
            .expect("write");
            let mut t = Table::new(vec![
                "degree".into(),
                "directed".into(),
                "undirected".into(),
            ]);
            let degrees: std::collections::BTreeSet<usize> = dc
                .degree_histogram
                .keys()
                .chain(uc.degree_histogram.keys())
                .copied()
                .collect();
            for deg in degrees {
                t.row(vec![
                    deg.to_string(),
                    dc.degree_histogram
                        .get(&deg)
                        .copied()
                        .unwrap_or(0)
                        .to_string(),
                    uc.degree_histogram
                        .get(&deg)
                        .copied()
                        .unwrap_or(0)
                        .to_string(),
                ]);
            }
            write!(out, "{t}").expect("write to string");
        }
        Command::Average {
            d,
            k,
            directed,
            samples,
        } => {
            let space = space_of(*d, *k)?;
            let value = if *samples > 0 {
                average::sampled(space, *directed, *samples, 0xC11)
            } else if *directed {
                average::exact_directed(space)
            } else {
                average::exact_undirected(space)
            };
            writeln!(out, "{value:.6}").expect("write to string");
            if *directed {
                writeln!(
                    out,
                    "Eq.(5) approximation: {:.6}",
                    directed_average_distance(*d, *k)
                )
                .expect("write to string");
            }
        }
        Command::Simulate {
            d,
            k,
            messages,
            router,
            policy,
            seed,
            threads,
            shards,
            route_cache,
            metrics,
            trace,
            progress,
            chrome_trace,
            listen,
            metrics_out,
            flight_recorder,
            flight_capacity,
            faults,
            ttl,
            next_hop,
            workload: workload_kind,
            monitors,
            monitor_dump,
        } => {
            let space = space_of(*d, *k)?;
            let config = SimConfig {
                router: *router,
                policy: *policy,
                seed: *seed,
                threads: *threads,
                route_cache: *route_cache,
                ttl: *ttl,
                ..SimConfig::default()
            };
            let fault_words = parse_fault_words(*d, faults.as_deref())?;
            // --shards selects the time-stepped sharded engine (same
            // report for any shard/thread count); without it the
            // classic event-driven simulator runs.
            enum SimEngine {
                Classic(Simulation),
                Sharded(ShardedSimulation),
            }
            let engine = match shards {
                Some(s) => {
                    let mut sim = ShardedSimulation::new(space, config, *s)
                        .map_err(|e| e.to_string())?
                        .with_next_hop(*next_hop)
                        .map_err(|e| e.to_string())?;
                    if let Some(words) = fault_words {
                        sim = sim.with_faults(words).map_err(|e| e.to_string())?;
                    }
                    SimEngine::Sharded(sim)
                }
                None => {
                    if *next_hop != NextHopMode::Auto {
                        return Err("--next-hop requires the sharded engine (--shards)".into());
                    }
                    let mut sim = Simulation::new(space, config).map_err(|e| e.to_string())?;
                    if let Some(words) = fault_words {
                        sim = sim.with_faults(words).map_err(|e| e.to_string())?;
                    }
                    SimEngine::Classic(sim)
                }
            };
            let traffic = match workload_kind {
                WorkloadKind::Uniform => workload::uniform_random(space, *messages, *seed),
                WorkloadKind::Burst => workload::uniform_burst(space, *messages, *seed),
                WorkloadKind::Zipf(exp) => workload::zipf(space, *messages, *exp, *seed),
            };

            // One registry backs both exposure paths: the HTTP scrape
            // server (--listen) and the periodic file snapshot
            // (--metrics-out). The core profile counters join it as a
            // collector, so scrapes see engine/cache activity too.
            let registry = (listen.is_some() || metrics_out.is_some()).then(|| {
                let registry = Arc::new(MetricsRegistry::new());
                register_core_profile(&registry);
                registry
            });
            let mut registry_recorder = registry.as_ref().map(RegistryRecorder::new);
            let server = listen
                .as_ref()
                .map(|addr| {
                    let registry = registry.as_ref().expect("listen implies registry");
                    ScrapeServer::bind(addr.as_str(), Arc::clone(registry))
                        .map_err(|e| format!("cannot listen on '{addr}': {e}"))
                })
                .transpose()?;
            if let Some(server) = &server {
                // Announced on stderr (stdout carries the report), so
                // scripts binding port 0 can discover the address.
                eprintln!("listening on http://{}/metrics", server.local_addr());
            }
            let mut metrics_file = metrics_out
                .as_ref()
                .map(|path| MetricsFileWriter::new(registry.as_ref().cloned().unwrap(), path));
            let mut flight = flight_recorder.as_ref().map(|path| {
                FlightRecorder::new(*flight_capacity, AnomalyTriggers::default())
                    .with_dump_path(path)
            });
            let mut monitor_set = build_monitors(
                space,
                matches!(router, RouterKind::Algorithm1 | RouterKind::Trivial),
                *monitors,
            )?;

            let profile_before = profile::snapshot();
            let mut memory = InMemoryRecorder::new();
            let mut jsonl = trace
                .as_ref()
                .map(|path| {
                    std::fs::File::create(path)
                        .map(|f| JsonlRecorder::new(std::io::BufWriter::new(f)))
                        .map_err(|e| format!("cannot create trace file '{path}': {e}"))
                })
                .transpose()?;
            let mut chrome = chrome_trace
                .as_ref()
                .map(|path| {
                    std::fs::File::create(path)
                        .map(|f| ChromeTraceRecorder::new(std::io::BufWriter::new(f)))
                        .map_err(|e| format!("cannot create chrome trace '{path}': {e}"))
                })
                .transpose()?;
            let mut snapshots =
                progress.map(|every| SnapshotRecorder::new(every, std::io::stderr()));
            let report = {
                let mut fan = FanoutRecorder::new();
                if let Some(r) = registry_recorder.as_mut() {
                    fan.push(r);
                }
                if *metrics {
                    fan.push(&mut memory);
                }
                if let Some(j) = jsonl.as_mut() {
                    fan.push(j);
                }
                if let Some(c) = chrome.as_mut() {
                    fan.push(c);
                }
                if let Some(s) = snapshots.as_mut() {
                    fan.push(s);
                }
                // After the registry recorder, so snapshots include the
                // tick that triggered them.
                if let Some(w) = metrics_file.as_mut() {
                    fan.push(w);
                }
                if let Some(f) = flight.as_mut() {
                    fan.push(f);
                }
                if let Some(m) = monitor_set.as_mut() {
                    fan.push(m);
                }
                match &engine {
                    SimEngine::Classic(sim) => sim.run_recorded(&traffic, &mut fan),
                    SimEngine::Sharded(sim) => sim.run_recorded(&traffic, &mut fan),
                }
            };
            if let Some(s) = snapshots {
                s.finish().map_err(|e| format!("writing snapshots: {e}"))?;
            }
            let profile_used = profile::snapshot().since(&profile_before);

            write_report(&mut out, &report);
            if *metrics {
                writeln!(out, "\n== metrics ==").expect("write");
                write!(out, "{memory}").expect("write");
                writeln!(out, "\n== core profile (this run) ==").expect("write");
                writeln!(
                    out,
                    "distance engine solves: {} naive, {} morris-pratt, {} suffix-tree, {} bit-parallel",
                    profile_used.engine_naive,
                    profile_used.engine_morris_pratt,
                    profile_used.engine_suffix_tree,
                    profile_used.engine_bit_parallel
                )
                .expect("write");
                writeln!(
                    out,
                    "auto engine selection:  {} -> suffix-tree, {} -> bit-parallel",
                    profile_used.auto_to_suffix_tree, profile_used.auto_to_bit_parallel
                )
                .expect("write");
                match profile_used.route_cache_hit_rate() {
                    Some(rate) => writeln!(
                        out,
                        "route cache:            {} hits, {} misses, {} evictions ({:.1}% hit rate)",
                        profile_used.route_cache_hits,
                        profile_used.route_cache_misses,
                        profile_used.route_cache_evictions,
                        rate * 100.0
                    )
                    .expect("write"),
                    None => writeln!(out, "route cache:            unused").expect("write"),
                }
                match profile_used.convergecast_hit_rate() {
                    Some(rate) => writeln!(
                        out,
                        "convergecast cache:     {} builds, {} routes ({:.1}% hit rate)",
                        profile_used.convergecast_builds,
                        profile_used.convergecast_routes,
                        rate * 100.0
                    )
                    .expect("write"),
                    None => writeln!(out, "convergecast cache:     unused").expect("write"),
                }
            }
            if let Some(j) = jsonl {
                j.finish()
                    .and_then(|mut w| std::io::Write::flush(&mut w))
                    .map_err(|e| format!("writing trace: {e}"))?;
                writeln!(
                    out,
                    "trace written to {}",
                    trace.as_deref().unwrap_or_default()
                )
                .expect("write");
            }
            if let Some(c) = chrome {
                c.finish()
                    .and_then(|mut w| std::io::Write::flush(&mut w))
                    .map_err(|e| format!("writing chrome trace: {e}"))?;
                writeln!(
                    out,
                    "chrome trace written to {}",
                    chrome_trace.as_deref().unwrap_or_default()
                )
                .expect("write");
            }
            if let Some(f) = flight {
                let captures = f.capture_count();
                let path = flight_recorder.as_deref().unwrap_or_default();
                match f
                    .finish()
                    .map_err(|e| format!("writing flight-recorder dump: {e}"))?
                {
                    Some(anomaly) => {
                        writeln!(out, "flight recorder: {anomaly}; window dumped to {path}")
                            .expect("write");
                        if captures > 1 {
                            writeln!(
                                out,
                                "flight recorder: {} more capture(s) after re-arming; \
                                 windows numbered {path}.2 onward",
                                captures - 1
                            )
                            .expect("write");
                        }
                    }
                    None => writeln!(out, "flight recorder: no anomaly detected").expect("write"),
                }
            }
            if let Some(m) = monitor_set.as_ref() {
                writeln!(out, "\n== monitors ==").expect("write");
                // Exporting into the registry also performs the decode,
                // so the verdict counter and the printed verdict agree.
                let verdict = match registry.as_ref() {
                    Some(registry) => m.export(registry),
                    None => m.localize(),
                };
                write_monitor_report(&mut out, m, &verdict);
                if let Some(path) = monitor_dump {
                    m.dump_evidence(std::path::Path::new(path))
                        .map_err(|e| format!("writing monitor dump '{path}': {e}"))?;
                    writeln!(
                        out,
                        "monitor evidence ({} event(s)) dumped to {path}",
                        m.evidence_len()
                    )
                    .expect("write");
                }
            }
            if let Some(w) = metrics_file.take() {
                w.finish()?;
                writeln!(
                    out,
                    "metrics snapshot written to {}",
                    metrics_out.as_deref().unwrap_or_default()
                )
                .expect("write");
            }
            if let Some(server) = server {
                // Flush the report now: the scrape server keeps the
                // process alive until killed, and consumers should not
                // have to wait for the results.
                print!("{out}");
                out.clear();
                std::io::Write::flush(&mut std::io::stdout()).map_err(|e| e.to_string())?;
                server.block();
            }
        }
        Command::Profile {
            d,
            k,
            messages,
            router,
            policy,
            seed,
            threads,
            shards,
            next_hop,
            workload: workload_kind,
            faults,
            ttl,
            sample,
            top,
            profile_out,
            chrome_out,
            trace,
            metrics,
        } => {
            let space = space_of(*d, *k)?;
            let config = SimConfig {
                router: *router,
                policy: *policy,
                seed: *seed,
                threads: *threads,
                ttl: *ttl,
                ..SimConfig::default()
            };
            let mut sim = ShardedSimulation::new(space, config, *shards)
                .map_err(|e| e.to_string())?
                .with_next_hop(*next_hop)
                .map_err(|e| e.to_string())?;
            if let Some(words) = parse_fault_words(*d, faults.as_deref())? {
                sim = sim.with_faults(words).map_err(|e| e.to_string())?;
            }
            let traffic = match workload_kind {
                WorkloadKind::Uniform => workload::uniform_random(space, *messages, *seed),
                WorkloadKind::Burst => workload::uniform_burst(space, *messages, *seed),
                WorkloadKind::Zipf(exp) => workload::zipf(space, *messages, *exp, *seed),
            };
            let profile_cfg = ProfileConfig {
                sample_every: *sample,
                // Lap slices are only recorded when someone will render
                // them — they cost memory per window.
                slices: chrome_out.is_some(),
            };
            let mut memory = InMemoryRecorder::new();
            let mut jsonl = trace
                .as_ref()
                .map(|path| {
                    std::fs::File::create(path)
                        .map(|f| JsonlRecorder::new(std::io::BufWriter::new(f)))
                        .map_err(|e| format!("cannot create trace file '{path}': {e}"))
                })
                .transpose()?;
            let (report, profile) = {
                let mut fan = FanoutRecorder::new();
                if *metrics {
                    fan.push(&mut memory);
                }
                if let Some(j) = jsonl.as_mut() {
                    fan.push(j);
                }
                sim.run_profiled(&traffic, &mut fan, &profile_cfg)
            };
            // The same seven headline lines `dbr simulate` prints, so a
            // profiled run's report can be cmp'd against an unprofiled
            // one byte for byte.
            write_report(&mut out, &report);
            if *metrics {
                writeln!(out, "\n== metrics ==").expect("write");
                write!(out, "{memory}").expect("write");
                // The same phase data as dbr_engine_* registry
                // families, scrape-format, for machine consumption.
                let registry = MetricsRegistry::new();
                profile.export_to(&registry);
                writeln!(out, "\n== engine metrics ==").expect("write");
                out.push_str(&registry.snapshot().render());
            }
            writeln!(out).expect("write");
            out.push_str(&profile.render(*top));
            if let Some(path) = profile_out {
                std::fs::write(path, profile.to_json(*top))
                    .map_err(|e| format!("cannot write profile '{path}': {e}"))?;
                writeln!(out, "profile written to {path}").expect("write");
            }
            if let Some(path) = chrome_out {
                std::fs::write(path, profile.chrome_trace())
                    .map_err(|e| format!("cannot write engine chrome trace '{path}': {e}"))?;
                writeln!(out, "engine chrome trace written to {path}").expect("write");
            }
            if let Some(j) = jsonl {
                j.finish()
                    .and_then(|mut w| std::io::Write::flush(&mut w))
                    .map_err(|e| format!("writing trace: {e}"))?;
                writeln!(
                    out,
                    "trace written to {}",
                    trace.as_deref().unwrap_or_default()
                )
                .expect("write");
            }
        }
        Command::Serve {
            d,
            listen,
            threads,
            cache_capacity,
            max_inflight,
            batch,
            flight_dump,
        } => {
            let registry = Arc::new(MetricsRegistry::new());
            register_core_profile(&registry);
            let config = ServiceConfig {
                workers: *threads,
                cache_capacity: *cache_capacity,
                max_inflight: *max_inflight,
                batch: *batch,
                ..ServiceConfig::new(*d)
            };
            let mut dispatcher =
                debruijn_net::service::Dispatcher::new(config, Arc::clone(&registry));
            if let Some(path) = flight_dump {
                // Trip exactly when a worker queue first fills (the
                // moment shedding starts) and freeze the pre-overload
                // admission window as `dbr trace`-readable JSONL.
                let triggers = AnomalyTriggers {
                    drop_burst: None,
                    no_route_burst: None,
                    queue_depth_limit: Some(*max_inflight),
                    queue_wait_limit: None,
                };
                dispatcher = dispatcher
                    .with_flight_recorder(FlightRecorder::new(4096, triggers).with_dump_path(path));
            }
            let service =
                QueryService::bind_dispatcher(listen.as_str(), dispatcher, Arc::clone(&registry))
                    .map_err(|e| format!("cannot listen on '{listen}': {e}"))?;
            eprintln!("listening on http://{}/metrics", service.local_addr());
            println!(
                "serving radix-{d} route/distance queries on http://{} ({} workers, \
                 cache {cache_capacity}, max-inflight {max_inflight}, batch {batch})",
                service.local_addr(),
                service.dispatcher().workers(),
            );
            std::io::Write::flush(&mut std::io::stdout()).map_err(|e| e.to_string())?;
            let anomaly = service
                .block()
                .map_err(|e| format!("writing flight dump: {e}"))?;
            if let Some(anomaly) = anomaly {
                eprintln!("flight recorder: {anomaly}");
            }
            // End-of-run metrics dump: the final state of every
            // dbr_service_* family, scrape-identical text.
            out.push_str(&registry.snapshot().render());
        }
        Command::Localize {
            d,
            k,
            file,
            directed,
            monitors,
            threshold,
        } => {
            let space = space_of(*d, *k)?;
            let mut monitor_set = build_monitors(space, *directed, *monitors)?
                .expect("parser rejects --monitors none")
                .with_config(MonitorConfig {
                    threshold: *threshold,
                    ..MonitorConfig::default()
                });
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read trace '{file}': {e}"))?;
            let mut events = 0usize;
            for (number, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let event =
                    parse_event(*d, line).map_err(|e| format!("{file}:{}: {e}", number + 1))?;
                monitor_set.record(&event);
                events += 1;
            }
            writeln!(out, "replayed:  {events} event(s) from {file}").expect("write");
            let verdict = monitor_set.localize();
            write_monitor_report(&mut out, &monitor_set, &verdict);
        }
        Command::Trace { action } => match action {
            TraceAction::Summary { file, radix } => {
                let t = trace::load(file, *radix)?;
                out.push_str(&trace::summary(&t));
            }
            TraceAction::Links { file, radix, top } => {
                let t = trace::load(file, *radix)?;
                out.push_str(&trace::links(&t, *top));
            }
            TraceAction::Hist {
                metric,
                file,
                radix,
            } => {
                let t = trace::load(file, *radix)?;
                out.push_str(&trace::hist(&t, *metric));
            }
            TraceAction::Diff { a, b, radix } => {
                let ta = trace::load(a, *radix)?;
                let tb = trace::load(b, *radix)?;
                out.push_str(&trace::diff(&ta, &tb));
            }
            TraceAction::Prom {
                file,
                radix,
                threads,
            } => {
                let t = trace::load(file, *radix)?;
                out.push_str(&trace::prom(&t, *threads));
            }
            TraceAction::Export {
                input,
                output,
                radix,
            } => {
                let t = trace::load(input, *radix)?;
                let file = std::fs::File::create(output)
                    .map_err(|e| format!("cannot create '{output}': {e}"))?;
                let events = t.events.len();
                trace::export(&t, std::io::BufWriter::new(file))
                    .and_then(|mut w| std::io::Write::flush(&mut w))
                    .map_err(|e| format!("writing '{output}': {e}"))?;
                writeln!(out, "exported {events} event(s) to {output}").expect("write");
            }
        },
        Command::Multipath { d, x, y } => {
            let (x, y) = parse_pair(*d, x, y)?;
            let routes = routing::all_shortest_routes(&x, &y);
            writeln!(
                out,
                "{} shortest route(s) of length {}:",
                routes.len(),
                routes[0].len()
            )
            .expect("write");
            for r in &routes {
                writeln!(out, "  {r}").expect("write");
            }
        }
        Command::Gdb { d, n, i, j } => {
            let g = debruijn_graph::generalized::Gdb::new(*d, *n)?;
            if *i >= *n || *j >= *n {
                return Err(format!("vertices must be below N = {n}"));
            }
            let route = g.route(*i, *j);
            writeln!(out, "GDB({d},{n}): diameter bound {}", g.diameter_bound()).expect("write");
            writeln!(out, "distance {i} -> {j}: {}", route.len()).expect("write");
            let rendered: Vec<String> = route.iter().map(u64::to_string).collect();
            writeln!(out, "digits: [{}]", rendered.join(", ")).expect("write");
        }
        Command::Disjoint { d, x, y } => {
            let (x, y) = parse_pair(*d, x, y)?;
            if x == y {
                return Err("endpoints must differ".into());
            }
            let space = space_of(*d, x.len())?;
            let graph =
                DebruijnGraph::undirected(space).map_err(|e| format!("cannot materialize: {e}"))?;
            let paths = debruijn_graph::disjoint::vertex_disjoint_paths(
                &graph,
                graph.rank_of(&x),
                graph.rank_of(&y),
                *d as usize + 1,
            );
            writeln!(out, "{} internally vertex-disjoint path(s):", paths.len()).expect("write");
            for p in &paths {
                let words: Vec<String> = p.iter().map(|&v| graph.word_of(v).to_string()).collect();
                writeln!(out, "  {}", words.join(" -> ")).expect("write");
            }
        }
    }
    Ok(out)
}

/// How often `--metrics-out` rewrites its snapshot file, in simulated
/// ticks.
const METRICS_OUT_EVERY: u64 = 1000;

/// A [`Recorder`] that periodically renders the registry to a file, so
/// external collectors can tail a run without the HTTP listener. The
/// final state is written by [`MetricsFileWriter::finish`].
struct MetricsFileWriter {
    registry: Arc<MetricsRegistry>,
    path: String,
    next: u64,
    error: Option<String>,
}

impl MetricsFileWriter {
    fn new(registry: Arc<MetricsRegistry>, path: &str) -> Self {
        Self {
            registry,
            path: path.to_string(),
            next: 0,
            error: None,
        }
    }

    fn write_snapshot(&mut self) {
        if let Err(e) = std::fs::write(&self.path, self.registry.snapshot().render()) {
            self.error = Some(format!("writing metrics snapshot '{}': {e}", self.path));
        }
    }

    /// Writes the end-of-run snapshot, surfacing the first error.
    fn finish(mut self) -> Result<(), String> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.write_snapshot();
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Recorder for MetricsFileWriter {
    fn enabled(&self) -> bool {
        self.error.is_none()
    }

    fn record(&mut self, event: &NetEvent) {
        if self.error.is_some() {
            return;
        }
        let now = event.time();
        if now >= self.next {
            self.next = now + METRICS_OUT_EVERY;
            self.write_snapshot();
        }
    }
}

/// The seven-line headline block shared by `dbr simulate` and
/// `dbr profile` — kept in one place so a profiled run's report can be
/// `cmp`'d byte for byte against an unprofiled one.
fn write_report(out: &mut String, report: &SimReport) {
    let loads = report.link_load_summary();
    writeln!(
        out,
        "delivered:    {}/{}",
        report.delivered, report.injected
    )
    .expect("write");
    writeln!(
        out,
        "dropped:      {}",
        trace::drop_breakdown(&report.dropped_by_reason)
    )
    .expect("write");
    writeln!(out, "mean hops:    {:.4}", report.mean_hops()).expect("write");
    writeln!(out, "mean latency: {:.4}", report.mean_latency()).expect("write");
    writeln!(out, "max latency:  {}", report.latency_max).expect("write");
    writeln!(out, "makespan:     {}", report.makespan).expect("write");
    writeln!(
        out,
        "max link load: {} (std {:.3})",
        loads.max, loads.std_dev
    )
    .expect("write");
}

/// Parses a `--faults W1,W2` list into words of radix `d`.
fn parse_fault_words(d: u8, faults: Option<&str>) -> Result<Option<Vec<Word>>, String> {
    faults
        .map(|list| {
            list.split(',')
                .map(|w| Word::parse(d, w.trim()).map_err(|e| format!("bad fault '{w}': {e}")))
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()
}

/// Builds the `--monitors` placement on the graph matching the route
/// direction: Algorithm 1 and the trivial router only shift left, so a
/// fault is witnessed by its *directed* in-ball; Algorithms 2/4 route
/// on the bidirectional network, so the undirected ball applies.
fn build_monitors(
    space: DeBruijn,
    directed: bool,
    choice: MonitorChoice,
) -> Result<Option<MonitorSet>, String> {
    if choice == MonitorChoice::None {
        return Ok(None);
    }
    let graph = if directed {
        DebruijnGraph::directed(space)
    } else {
        DebruijnGraph::undirected(space)
    }
    .map_err(|e| e.to_string())?;
    match choice {
        MonitorChoice::None => unreachable!("handled above"),
        MonitorChoice::Identifying => MonitorSet::identifying(graph)
            .map(Some)
            .map_err(|e| format!("cannot place identifying monitors: {e}")),
        MonitorChoice::All => Ok(Some(MonitorSet::all(graph))),
    }
}

/// The monitor placement line, evidence table and verdict shared by
/// `dbr simulate --monitors` and `dbr localize`.
fn write_monitor_report(out: &mut String, monitors: &MonitorSet, verdict: &Verdict) {
    writeln!(
        out,
        "placement: {} — {} of {} nodes",
        monitors.placement().name(),
        monitors.monitors().len(),
        monitors.graph().node_count()
    )
    .expect("write");
    let readings = monitors.readings();
    if readings.is_empty() {
        writeln!(out, "flagged:   none").expect("write");
    } else {
        writeln!(out, "flagged:   {} monitor(s)", readings.len()).expect("write");
        for reading in &readings {
            let kinds: Vec<String> = reading
                .by_kind
                .iter()
                .map(|(kind, n)| format!("{kind} {n}"))
                .collect();
            writeln!(
                out,
                "  {}  total {}  ({})",
                reading.node,
                reading.total,
                kinds.join(", ")
            )
            .expect("write");
        }
    }
    writeln!(out, "verdict:   {verdict}").expect("write");
}

fn space_of(d: u8, k: usize) -> Result<DeBruijn, String> {
    let space = DeBruijn::new(d, k).map_err(|e| e.to_string())?;
    if space.order_usize().is_none() {
        return Err(format!("DG({d},{k}) is too large to enumerate"));
    }
    Ok(space)
}

fn parse_pair(d: u8, x: &str, y: &str) -> Result<(Word, Word), String> {
    let x = Word::parse(d, x).map_err(|e| format!("bad X: {e}"))?;
    let y = Word::parse(d, y).map_err(|e| format!("bad Y: {e}"))?;
    if !x.same_space(&y) {
        return Err("X and Y must have the same length".into());
    }
    Ok((x, y))
}

fn parse_radix(s: &str) -> Result<u8, String> {
    s.parse::<u8>().map_err(|_| format!("bad radix '{s}'"))
}

fn parse_engine(value: Option<&str>) -> Result<Engine, String> {
    match value {
        None | Some("auto") => Ok(Engine::Auto),
        Some("naive") => Ok(Engine::Naive),
        Some("mp") => Ok(Engine::MorrisPratt),
        Some("suffix-tree") => Ok(Engine::SuffixTree),
        Some("bit-parallel") => Ok(Engine::BitParallel),
        Some(other) => Err(format!("unknown engine '{other}'")),
    }
}

fn parse_router(value: Option<&str>) -> Result<RouterKind, String> {
    match value {
        None | Some("alg2") => Ok(RouterKind::Algorithm2),
        Some("trivial") => Ok(RouterKind::Trivial),
        Some("alg1") => Ok(RouterKind::Algorithm1),
        Some("alg4") => Ok(RouterKind::Algorithm4),
        Some(other) => Err(format!("unknown router '{other}'")),
    }
}

fn parse_policy(value: Option<&str>) -> Result<WildcardPolicy, String> {
    match value {
        None | Some("zero") => Ok(WildcardPolicy::Zero),
        Some("random") => Ok(WildcardPolicy::Random),
        Some("round-robin") => Ok(WildcardPolicy::RoundRobin),
        Some("least-loaded") => Ok(WildcardPolicy::LeastLoaded),
        Some(other) => Err(format!("unknown policy '{other}'")),
    }
}

fn parse_next_hop(value: Option<&str>) -> Result<NextHopMode, String> {
    match value {
        None | Some("auto") => Ok(NextHopMode::Auto),
        Some("dense") => Ok(NextHopMode::Dense),
        Some("compressed") => Ok(NextHopMode::Compressed),
        Some("fallback") => Ok(NextHopMode::Fallback),
        Some(other) => Err(format!(
            "unknown next-hop tier '{other}' (auto|dense|compressed|fallback)"
        )),
    }
}

fn parse_seed(flags: &Flags<'_>) -> Result<u64, String> {
    flags
        .value("--seed")?
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad seed '{v}'")))
        .transpose()
        .map(|s| s.unwrap_or(0xDB))
}

fn parse_threads(flags: &Flags<'_>) -> Result<usize, String> {
    flags
        .value("--threads")?
        .map(|v| parse_num(v, "threads"))
        .transpose()
        .map(|t| t.unwrap_or(1))
}

/// Positional grammar shared by `route`/`distance`: `<d> <X> <Y>` for a
/// single pair, just `<d>` when `--batch` supplies the pairs.
fn pair_or_batch(
    pos: &[&str],
    batch: bool,
    cmd: &str,
) -> Result<(u8, Option<(String, String)>), String> {
    if batch {
        let [d] = positional::<1>(pos, &format!("{cmd} <d> --batch FILE"))?;
        Ok((parse_radix(d)?, None))
    } else {
        let [d, x, y] = positional::<3>(pos, &format!("{cmd} <d> <X> <Y>"))?;
        Ok((parse_radix(d)?, Some((x.to_string(), y.to_string()))))
    }
}

/// Reads "X Y" pairs (whitespace-separated, one per line; blank lines and
/// `#` comments skipped) from a batch file, or stdin for `-`.
fn read_batch_pairs(d: u8, path: &str) -> Result<Vec<(Word, Word)>, String> {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read batch '{path}': {e}"))?
    };
    // One up-front reservation instead of doubling mid-parse: batch
    // files are one pair per line, so the line count bounds the result.
    let mut pairs = Vec::with_capacity(text.lines().count());
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(x), Some(y), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!("batch line {}: expected 'X Y'", lineno + 1));
        };
        pairs.push(parse_pair(d, x, y).map_err(|e| format!("batch line {}: {e}", lineno + 1))?);
    }
    Ok(pairs)
}

fn parse_num(s: &str, what: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|_| format!("bad {what} '{s}'"))
}

fn positional<'a, const N: usize>(pos: &[&'a str], usage: &str) -> Result<[&'a str; N], String> {
    if pos.len() != N {
        return Err(format!(
            "expected {usage}, got {} positional arguments",
            pos.len()
        ));
    }
    let mut out = [""; N];
    out.copy_from_slice(pos);
    Ok(out)
}

/// Flags split out of an argument list: `--name value` and bare `--name`.
struct Flags<'a> {
    items: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn has(&self, name: &str) -> Result<bool, String> {
        for (n, v) in &self.items {
            if *n == name {
                if v.is_some() {
                    return Err(format!("flag {name} takes no value"));
                }
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn value(&self, name: &str) -> Result<Option<&'a str>, String> {
        for (n, v) in &self.items {
            if *n == name {
                return v
                    .map(Some)
                    .ok_or_else(|| format!("flag {name} needs a value"));
            }
        }
        Ok(None)
    }

    fn expect_empty(&self) -> Result<(), String> {
        self.expect_only(&[])
    }

    /// Rejects any flag the command's grammar does not declare, so a
    /// typo like `--metricss` fails loudly instead of being ignored.
    fn expect_only(&self, allowed: &[&str]) -> Result<(), String> {
        match self.items.iter().find(|(n, _)| !allowed.contains(n)) {
            Some((n, _)) => Err(format!("unexpected flag {n}")),
            None => Ok(()),
        }
    }
}

fn split_flags<'a>(args: &[&'a str]) -> (Vec<&'a str>, Flags<'a>) {
    let mut pos = Vec::new();
    let mut items = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i];
        if let Some(stripped) = a.strip_prefix("--") {
            // Bare boolean flags are the ones our grammar declares;
            // everything else consumes the following token as its value.
            let bare = matches!(stripped, "directed" | "prefer-largest" | "metrics");
            if bare {
                items.push((a, None));
            } else if i + 1 < args.len() {
                items.push((a, Some(args[i + 1])));
                i += 1;
            } else {
                items.push((a, None));
            }
        } else {
            pos.push(a);
        }
        i += 1;
    }
    (pos, Flags { items })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_line(line: &str) -> Result<Command, String> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args)
    }

    #[test]
    fn parses_route_with_flags() {
        let cmd = parse_line("route 2 0110 1011 --engine suffix-tree").unwrap();
        assert_eq!(
            cmd,
            Command::Route {
                d: 2,
                pair: Some(("0110".into(), "1011".into())),
                directed: false,
                engine: Engine::SuffixTree,
                threads: 1,
                batch: None,
            }
        );
    }

    #[test]
    fn parses_directed_distance() {
        let cmd = parse_line("distance 3 012 210 --directed").unwrap();
        assert!(matches!(cmd, Command::Distance { directed: true, .. }));
    }

    #[test]
    fn parses_engine_threads_and_batch_flags() {
        let cmd = parse_line("distance 2 --batch pairs.txt --threads 8 --engine bit-parallel");
        assert_eq!(
            cmd.unwrap(),
            Command::Distance {
                d: 2,
                pair: None,
                directed: false,
                engine: Engine::BitParallel,
                threads: 8,
                batch: Some("pairs.txt".into()),
            }
        );
        // A pair and --batch together is an arity error, as is neither.
        assert!(parse_line("distance 2 01 10 --batch pairs.txt").is_err());
        assert!(parse_line("distance 2").is_err());
        assert!(parse_line("distance 2 01 10 --engine quantum").is_err());
        let cmd = parse_line("simulate 2 6 --threads 4 --route-cache 0").unwrap();
        assert!(matches!(
            cmd,
            Command::Simulate {
                threads: 4,
                route_cache: 0,
                ..
            }
        ));
    }

    #[test]
    fn batch_distance_is_identical_for_any_thread_count() {
        // All ordered pairs of DG(2,4) through the batch driver: the
        // fan-out must be invisible in the output, and every engine must
        // agree with the default.
        let sp = DeBruijn::new(2, 4).unwrap();
        let mut lines = String::new();
        for x in sp.vertices() {
            for y in sp.vertices() {
                lines.push_str(&format!("{x} {y}\n"));
            }
        }
        let path = std::env::temp_dir().join(format!("dbr-batch-{}.txt", std::process::id()));
        std::fs::write(&path, &lines).unwrap();
        let path_str = path.to_str().unwrap();
        let run_with = |extra: &str| {
            run(&parse_line(&format!("distance 2 --batch {path_str} {extra}")).unwrap()).unwrap()
        };
        let serial = run_with("--threads 1");
        assert_eq!(serial, run_with("--threads 8"), "threaded batch differs");
        for engine in ["naive", "mp", "suffix-tree", "bit-parallel", "auto"] {
            assert_eq!(serial, run_with(&format!("--engine {engine}")), "{engine}");
        }
        let route_serial =
            run(&parse_line(&format!("route 2 --batch {path_str} --threads 1")).unwrap()).unwrap();
        let route_par =
            run(&parse_line(&format!("route 2 --batch {path_str} --threads 8")).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(route_serial, route_par);
        // Each batch route line is "<len> <route>", one per pair.
        assert_eq!(route_serial.lines().count(), 16 * 16);
    }

    #[test]
    fn parses_monitor_flags_and_localize() {
        let cmd = parse_line("simulate 2 6 --monitors identifying --monitor-dump ev.jsonl");
        assert!(matches!(
            cmd.unwrap(),
            Command::Simulate {
                monitors: MonitorChoice::Identifying,
                ..
            }
        ));
        let cmd = parse_line("localize 2 6 t.jsonl --directed --threshold 3").unwrap();
        assert_eq!(
            cmd,
            Command::Localize {
                d: 2,
                k: 6,
                file: "t.jsonl".into(),
                directed: true,
                monitors: MonitorChoice::Identifying,
                threshold: 3,
            }
        );
        assert!(parse_line("simulate 2 6 --monitors sometimes").is_err());
        assert!(parse_line("localize 2 6 t.jsonl --monitors none").is_err());
        assert!(parse_line("localize 2 6 t.jsonl --threshold 0").is_err());
    }

    #[test]
    fn simulate_monitors_localize_the_injected_fault_and_replay_agrees() {
        let dir = std::env::temp_dir().join("dbr-cli-localize");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join(format!("t-{}.jsonl", std::process::id()));
        let trace_str = trace.to_str().unwrap();
        let sim = run(&parse_line(&format!(
            "simulate 2 6 --messages 300 --shards 2 --seed 7 --faults 010101 \
             --monitors identifying --trace {trace_str}"
        ))
        .unwrap())
        .unwrap();
        assert!(
            sim.contains("verdict:   exact — faulty node 010101"),
            "{sim}"
        );
        // Replaying the same trace offline reaches the same verdict.
        let loc = run(&parse_line(&format!("localize 2 6 {trace_str}")).unwrap()).unwrap();
        assert!(
            loc.contains("verdict:   exact — faulty node 010101"),
            "{loc}"
        );
        std::fs::remove_file(&trace).ok();
        // `--monitors none` leaves the output byte-identical.
        let base = "simulate 2 6 --messages 300 --shards 2 --seed 7 --faults 010101";
        let bare = run(&parse_line(base).unwrap()).unwrap();
        let none = run(&parse_line(&format!("{base} --monitors none")).unwrap()).unwrap();
        assert_eq!(bare, none);
    }

    #[test]
    fn simulate_reports_match_for_any_thread_count_and_cache_size() {
        let base = "simulate 2 6 --messages 400 --router alg2 --seed 3";
        let want = run(&parse_line(base).unwrap()).unwrap();
        for extra in [
            "--threads 8",
            "--route-cache 0",
            "--threads 8 --route-cache 0",
        ] {
            let got = run(&parse_line(&format!("{base} {extra}")).unwrap()).unwrap();
            assert_eq!(want, got, "{extra}");
        }
    }

    #[test]
    fn parses_profile_flags_with_defaults() {
        let cmd = parse_line("profile 2 6").unwrap();
        assert!(
            matches!(
                cmd,
                Command::Profile {
                    d: 2,
                    k: 6,
                    messages: 1000,
                    shards: 4,
                    sample: 64,
                    top: 5,
                    metrics: false,
                    ..
                }
            ),
            "{cmd:?}"
        );
        let cmd = parse_line(
            "profile 2 8 --messages 500 --shards 8 --threads 2 --sample 16 --top 3 \
             --profile-out p.json --chrome-out c.json --next-hop compressed --workload zipf:1.2",
        )
        .unwrap();
        match cmd {
            Command::Profile {
                messages,
                shards,
                threads,
                sample,
                top,
                profile_out,
                chrome_out,
                next_hop,
                workload,
                ..
            } => {
                assert_eq!(messages, 500);
                assert_eq!(shards, 8);
                assert_eq!(threads, 2);
                assert_eq!(sample, 16);
                assert_eq!(top, 3);
                assert_eq!(profile_out.as_deref(), Some("p.json"));
                assert_eq!(chrome_out.as_deref(), Some("c.json"));
                assert_eq!(next_hop, NextHopMode::Compressed);
                assert_eq!(workload, WorkloadKind::Zipf(1.2));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_line("profile 2").is_err(), "missing k");
        assert!(parse_line("profile 2 6 --shards 0").is_err());
        assert!(parse_line("profile 2 6 --samples 8").is_err(), "typo flag");
    }

    #[test]
    fn profile_report_matches_simulate_and_emits_engine_sections() {
        let params = "2 6 --messages 300 --shards 4 --threads 2 --seed 9";
        let sim = run(&parse_line(&format!("simulate {params}")).unwrap()).unwrap();
        let tmp = std::env::temp_dir();
        let json_path = tmp.join(format!("dbr-prof-{}.json", std::process::id()));
        let chrome_path = tmp.join(format!("dbr-prof-{}.chrome.json", std::process::id()));
        let prof = run(&parse_line(&format!(
            "profile {params} --sample 8 --metrics --profile-out {} --chrome-out {}",
            json_path.display(),
            chrome_path.display()
        ))
        .unwrap())
        .unwrap();
        // The seven headline lines are byte-identical: the profiler
        // observes without perturbing the report.
        let head = |s: &str| s.lines().take(7).collect::<Vec<_>>().join("\n");
        assert_eq!(head(&sim), head(&prof));
        for needle in [
            "== engine profile ==",
            "phase",
            "barrier",
            "imbalance:",
            "sampler:      1/8",
            "critical paths",
            "profile written to",
            "engine chrome trace written to",
            "== engine metrics ==",
            "dbr_engine_phase_nanos_total{phase=\"compute\"}",
            "dbr_engine_sampled_messages_total",
        ] {
            assert!(prof.contains(needle), "missing {needle:?} in:\n{prof}");
        }
        let json = std::fs::read_to_string(&json_path).unwrap();
        std::fs::remove_file(&json_path).ok();
        for key in [
            "\"schema\": \"dbr-engine-profile/v1\"",
            "\"phases\": [",
            "\"critical_paths\": [",
            "\"imbalance\": {",
        ] {
            assert!(json.contains(key), "missing {key:?} in:\n{json}");
        }
        let chrome = std::fs::read_to_string(&chrome_path).unwrap();
        std::fs::remove_file(&chrome_path).ok();
        assert!(chrome.starts_with("[\n{"), "{chrome}");
        assert!(chrome.ends_with("\n]\n"), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "phase slices present");
    }

    #[test]
    fn simulate_next_hop_and_workload_flags_work_end_to_end() {
        // Parsing: tiers and workloads round-trip, junk is rejected.
        assert!(matches!(
            parse_line("simulate 2 6 --shards 2 --next-hop compressed --workload zipf:1.5")
                .unwrap(),
            Command::Simulate {
                next_hop: NextHopMode::Compressed,
                workload: WorkloadKind::Zipf(exp),
                ..
            } if exp == 1.5
        ));
        assert!(matches!(
            parse_line("simulate 2 6 --workload zipf").unwrap(),
            Command::Simulate {
                next_hop: NextHopMode::Auto,
                workload: WorkloadKind::Zipf(exp),
                ..
            } if exp == 1.0
        ));
        assert!(matches!(
            parse_line("simulate 2 6 --workload burst").unwrap(),
            Command::Simulate {
                workload: WorkloadKind::Burst,
                ..
            }
        ));
        assert!(parse_line("simulate 2 6 --next-hop turbo").is_err());
        assert!(parse_line("simulate 2 6 --workload zipf:-1").is_err());
        assert!(parse_line("simulate 2 6 --workload poisson").is_err());
        // --next-hop is a sharded-engine switch.
        let err = run(&parse_line("simulate 2 5 --next-hop dense").unwrap()).unwrap_err();
        assert!(err.contains("--shards"), "{err}");

        // Execution: the compressed tier on a 4x4 grid reproduces the
        // single-threaded dense run byte for byte, on a skewed workload.
        let base = "simulate 2 6 --messages 300 --router alg2 --seed 5 --workload zipf:1.2";
        let dense =
            run(&parse_line(&format!("{base} --shards 1 --next-hop dense")).unwrap()).unwrap();
        let compressed = run(&parse_line(&format!(
            "{base} --shards 4 --threads 4 --next-hop compressed"
        ))
        .unwrap())
        .unwrap();
        assert_eq!(dense, compressed);
        assert!(dense.contains("delivered:    300/300"), "{dense}");
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse_line(
            "simulate 2 6 --listen 127.0.0.1:0 --metrics-out m.prom \
             --flight-recorder f.jsonl --flight-capacity 128 --faults 000000,111111 --ttl 9",
        )
        .unwrap();
        match cmd {
            Command::Simulate {
                listen,
                metrics_out,
                flight_recorder,
                flight_capacity,
                faults,
                ttl,
                ..
            } => {
                assert_eq!(listen.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(metrics_out.as_deref(), Some("m.prom"));
                assert_eq!(flight_recorder.as_deref(), Some("f.jsonl"));
                assert_eq!(flight_capacity, 128);
                assert_eq!(faults.as_deref(), Some("000000,111111"));
                assert_eq!(ttl, 9);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: no listeners, 4096-event ring, no hop budget.
        assert!(matches!(
            parse_line("simulate 2 6").unwrap(),
            Command::Simulate {
                listen: None,
                metrics_out: None,
                flight_recorder: None,
                flight_capacity: 4096,
                faults: None,
                ttl: 0,
                ..
            }
        ));
        assert!(parse_line("simulate 2 6 --flight-capacity 0").is_err());
        assert!(parse_line("simulate 2 6 --ttl x").is_err());
        assert_eq!(
            parse_line("serve 2").unwrap(),
            Command::Serve {
                d: 2,
                listen: "127.0.0.1:0".into(),
                threads: 0,
                cache_capacity: 4096,
                max_inflight: 256,
                batch: 32,
                flight_dump: None,
            }
        );
        assert_eq!(
            parse_line(
                "serve 3 --listen 0.0.0.0:9100 --threads 4 --cache-capacity 128 \
                 --max-inflight 64 --batch 8 --flight-dump overload.jsonl"
            )
            .unwrap(),
            Command::Serve {
                d: 3,
                listen: "0.0.0.0:9100".into(),
                threads: 4,
                cache_capacity: 128,
                max_inflight: 64,
                batch: 8,
                flight_dump: Some("overload.jsonl".into()),
            }
        );
        assert!(parse_line("serve").is_err());
        assert!(parse_line("serve 2 --max-inflight 0").is_err());
        assert!(parse_line("serve 2 --batch 0").is_err());
        assert_eq!(
            parse_line("trace prom run.jsonl --threads 4").unwrap(),
            Command::Trace {
                action: TraceAction::Prom {
                    file: "run.jsonl".into(),
                    radix: None,
                    threads: 4,
                }
            }
        );
    }

    #[test]
    fn simulate_ttl_and_faults_break_out_the_dropped_line() {
        // Clean run: an explicit zero.
        let out = run(&parse_line("simulate 2 5 --messages 100 --seed 4").unwrap()).unwrap();
        assert!(out.contains("dropped:      0\n"), "{out}");
        // Trivial routing always takes k = 5 hops; a 3-hop budget kills
        // every message that is not already at its destination.
        let out = run(
            &parse_line("simulate 2 5 --messages 100 --router trivial --ttl 3 --seed 4").unwrap(),
        )
        .unwrap();
        assert!(out.contains("(ttl "), "{out}");
        // A faulty node attributes losses to the fault reasons.
        let out = run(&parse_line("simulate 2 5 --messages 200 --faults 00000 --seed 4").unwrap())
            .unwrap();
        assert!(out.contains("faulty-"), "{out}");
        assert!(!out.contains("dropped:      0\n"), "{out}");
        let err = run(&parse_line("simulate 2 5 --faults 00000,0x1").unwrap()).unwrap_err();
        assert!(err.contains("bad fault"), "{err}");
    }

    #[test]
    fn simulate_metrics_out_writes_prometheus_text() {
        let path = std::env::temp_dir().join(format!("dbr-mout-{}.prom", std::process::id()));
        let path_str = path.to_str().unwrap();
        let line = format!("simulate 2 5 --messages 120 --seed 2 --metrics-out {path_str}");
        let out = run(&parse_line(&line).unwrap()).unwrap();
        assert!(out.contains("metrics snapshot written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("dbr_sim_injected_total 120"), "{text}");
        assert!(text.contains("dbr_sim_delivered_total 120"), "{text}");
        assert!(text.contains("dbr_link_forward_total{"), "{text}");
        // The core profile collector is registered alongside the
        // simulator's own counters.
        assert!(text.contains("dbr_core_engine_solves_total{"), "{text}");
        assert!(text.contains("dbr_core_route_cache_total{"), "{text}");
    }

    #[test]
    fn simulate_flight_recorder_dump_round_trips_through_trace_summary() {
        let dir = std::env::temp_dir();
        let dump = dir.join(format!("dbr-flight-cli-{}.jsonl", std::process::id()));
        let dump_str = dump.to_str().unwrap();
        // A faulty node sheds enough messages at injection time to trip
        // the default drop-burst trigger (8 drops in 128 ticks).
        let line = format!(
            "simulate 2 5 --messages 400 --faults 00000 --seed 4 --flight-recorder {dump_str}"
        );
        let out = run(&parse_line(&line).unwrap()).unwrap();
        assert!(out.contains("flight recorder: "), "{out}");
        assert!(out.contains("window dumped to"), "{out}");
        // The dump is a regular trace: `dbr trace summary` parses it and
        // shows the per-reason drop breakdown.
        let summary = run(&parse_line(&format!("trace summary {dump_str}")).unwrap()).unwrap();
        std::fs::remove_file(&dump).ok();
        assert!(summary.contains("dropped ("), "{summary}");
        assert!(summary.contains("dropped:      "), "{summary}");
        // A clean run arms but never fires.
        let line = format!("simulate 2 5 --messages 50 --flight-recorder {dump_str}");
        let out = run(&parse_line(&line).unwrap()).unwrap();
        assert!(
            out.contains("flight recorder: no anomaly detected"),
            "{out}"
        );
        assert!(!dump.exists(), "no dump without an anomaly");
    }

    #[test]
    fn zipf_skew_trips_the_queue_depth_trigger_through_the_cli() {
        let dir = std::env::temp_dir();
        let dump = dir.join(format!("dbr-flight-zipf-cli-{}.jsonl", std::process::id()));
        let dump_str = dump.to_str().unwrap();
        // A heavy zipf burst funnels most of the traffic into rank 0,
        // whose in-links back up past the default 1024 high-water mark.
        let line = format!(
            "simulate 2 6 --messages 12000 --workload zipf:2.5 --flight-recorder {dump_str}"
        );
        let out = run(&parse_line(&line).unwrap()).unwrap();
        assert!(out.contains("queue high-water breach"), "{out}");
        let summary = run(&parse_line(&format!("trace summary {dump_str}")).unwrap()).unwrap();
        std::fs::remove_file(&dump).ok();
        assert!(summary.contains("events:"), "{summary}");
        assert!(summary.contains("makespan:"), "{summary}");
    }

    #[test]
    fn serve_service_answers_queries_with_typed_errors() {
        use debruijn_net::metrics::ScrapeServer;
        let registry = Arc::new(MetricsRegistry::new());
        let service = QueryService::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::new(2)
            },
            Arc::clone(&registry),
        )
        .unwrap();
        let addr = service.local_addr();
        assert_eq!(
            ScrapeServer::get(addr, "/distance?x=0110&y=1011").unwrap(),
            "1\n"
        );
        assert_eq!(
            ScrapeServer::get(addr, "/distance?x=0110&y=1011&directed=1").unwrap(),
            "2\n"
        );
        let route = ScrapeServer::get(addr, "/route?x=010011&y=110100").unwrap();
        assert!(route.contains("distance: 2"), "{route}");
        assert!(route.contains("route:"), "{route}");
        // Malformed queries are 400 with a JSON error body; unknown
        // endpoints are 404 — ScrapeServer::get surfaces both as Err.
        assert!(ScrapeServer::get(addr, "/distance?x=0110").is_err());
        assert!(ScrapeServer::get(addr, "/distance?x=01&y=0110").is_err());
        assert!(ScrapeServer::get(addr, "/frobnicate").is_err());
        service.shutdown().unwrap();
        // Every query was counted by endpoint and status, and every
        // rejection by kind.
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(
                "dbr_service_requests_total",
                &[("endpoint", "distance"), ("status", "200")]
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter_value(
                "dbr_service_requests_total",
                &[("endpoint", "distance"), ("status", "400")]
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter_value(
                "dbr_service_requests_total",
                &[("endpoint", "route"), ("status", "200")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("dbr_service_errors_total", &[("kind", "missing-param")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("dbr_service_errors_total", &[("kind", "length-mismatch")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("dbr_service_errors_total", &[("kind", "unknown-endpoint")]),
            Some(1)
        );
    }

    #[test]
    fn trace_prom_command_matches_live_metrics_out() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let jsonl = dir.join(format!("dbr-prom-{pid}.jsonl"));
        let live = dir.join(format!("dbr-prom-live-{pid}.prom"));
        let (jsonl_s, live_s) = (jsonl.to_str().unwrap(), live.to_str().unwrap());
        let line =
            format!("simulate 2 4 --messages 60 --seed 8 --trace {jsonl_s} --metrics-out {live_s}");
        run(&parse_line(&line).unwrap()).unwrap();
        let offline =
            run(&parse_line(&format!("trace prom {jsonl_s} --threads 4")).unwrap()).unwrap();
        let live_text = std::fs::read_to_string(&live).unwrap();
        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&live).ok();
        // The offline fold reproduces every simulator family the live
        // file has (the live file additionally carries the process-wide
        // core-profile collector families).
        for line in live_text.lines().filter(|l| l.starts_with("dbr_sim_")) {
            assert!(offline.contains(line), "missing live line: {line}");
        }
        assert!(offline.contains("dbr_sim_injected_total 60"), "{offline}");
        assert!(!offline.contains("dbr_core_"), "{offline}");
    }

    #[test]
    fn rejects_unknown_subcommand_and_engine() {
        assert!(parse_line("frobnicate 1 2").is_err());
        assert!(parse_line("route 2 01 10 --engine quantum").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_line("route 2 0110").is_err());
        assert!(parse_line("census 2").is_err());
    }

    #[test]
    fn rejects_undeclared_flags() {
        let err = parse_line("simulate 2 6 --metricss").unwrap_err();
        assert!(err.contains("unexpected flag --metricss"), "{err}");
        assert!(parse_line("route 2 01 10 --directd").is_err());
        assert!(parse_line("average 2 6 --sample 10").is_err());
        // Declared flags still pass.
        assert!(parse_line("simulate 2 6 --metrics --trace t.jsonl").is_ok());
    }

    #[test]
    fn route_command_emits_optimal_route() {
        let cmd = parse_line("route 2 010011 110100").unwrap();
        let out = run(&cmd).unwrap();
        // Two right shifts: 010011 -> 101001 -> 110100.
        assert!(out.contains("distance: 2"), "{out}");
        assert!(out.contains("route:"), "{out}");
        let directed = run(&parse_line("route 2 010011 110100 --directed").unwrap()).unwrap();
        assert!(directed.contains("distance: 4"), "{directed}");
    }

    #[test]
    fn distance_commands_agree_with_library() {
        let out = run(&parse_line("distance 2 0110 1011").unwrap()).unwrap();
        assert_eq!(out.trim(), "1");
        let out = run(&parse_line("distance 2 0110 1011 --directed").unwrap()).unwrap();
        assert_eq!(out.trim(), "2");
    }

    #[test]
    fn sequence_command_prints_valid_sequence() {
        let out = run(&parse_line("sequence 2 3").unwrap()).unwrap();
        let digits: Vec<u8> = out.trim().bytes().map(|b| b - b'0').collect();
        assert!(euler::is_de_bruijn_sequence(2, 3, &digits), "{out}");
        let out2 = run(&parse_line("sequence 2 3 --prefer-largest").unwrap()).unwrap();
        assert_eq!(out2.trim(), "00011101");
    }

    #[test]
    fn census_command_reports_structure() {
        let out = run(&parse_line("census 2 3").unwrap()).unwrap();
        assert!(out.contains("8 vertices"), "{out}");
        assert!(out.contains("diameter 3"), "{out}");
    }

    #[test]
    fn average_command_exact_matches_analysis() {
        let out = run(&parse_line("average 2 2 --directed").unwrap()).unwrap();
        assert!(out.starts_with("1.125000"), "{out}");
        assert!(out.contains("1.250000"), "Eq.5 line: {out}");
    }

    #[test]
    fn simulate_command_delivers_everything() {
        let out = run(&parse_line("simulate 2 5 --messages 200 --router alg4 --seed 9").unwrap())
            .unwrap();
        assert!(out.contains("delivered:    200/200"), "{out}");
        // Without --metrics, no observability sections appear.
        assert!(!out.contains("== metrics =="), "{out}");
    }

    #[test]
    fn simulate_metrics_flag_prints_histograms_and_counters() {
        let cmd =
            parse_line("simulate 2 5 --messages 300 --router alg4 --policy least-loaded --metrics")
                .unwrap();
        assert!(matches!(
            cmd,
            Command::Simulate {
                metrics: true,
                trace: None,
                ..
            }
        ));
        let out = run(&cmd).unwrap();
        assert!(out.contains("== metrics =="), "{out}");
        assert!(out.contains("hops per delivered message"), "{out}");
        assert!(out.contains("queue depth"), "{out}");
        assert!(out.contains("wildcard resolutions:"), "{out}");
        assert!(out.contains("by policy least-loaded:"), "{out}");
        assert!(out.contains("== core profile (this run) =="), "{out}");
        assert!(out.contains("distance engine solves:"), "{out}");
        // Optimal routing on a fault-free network: zero stretch.
        assert!(
            out.contains("stretch over shortest D(X,Y) (mean 0.0000)"),
            "{out}"
        );
    }

    #[test]
    fn simulate_trace_flag_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!("dbr-trace-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap();
        let line = format!("simulate 2 4 --messages 50 --router alg4 --trace {path_str}");
        let out = run(&parse_line(&line).unwrap()).unwrap();
        assert!(out.contains("trace written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut injects = 0;
        let mut delivers = 0;
        for l in text.lines() {
            match debruijn_net::record::parse_event(2, l).unwrap() {
                debruijn_net::NetEvent::Inject { .. } => injects += 1,
                debruijn_net::NetEvent::Deliver { .. } => delivers += 1,
                _ => {}
            }
        }
        assert_eq!(injects, 50, "{text}");
        assert_eq!(delivers, 50);
    }

    #[test]
    fn parses_trace_subcommands() {
        assert_eq!(
            parse_line("trace summary run.jsonl").unwrap(),
            Command::Trace {
                action: TraceAction::Summary {
                    file: "run.jsonl".into(),
                    radix: None,
                }
            }
        );
        assert_eq!(
            parse_line("trace links run.jsonl --top 3 --radix 12").unwrap(),
            Command::Trace {
                action: TraceAction::Links {
                    file: "run.jsonl".into(),
                    radix: Some(12),
                    top: 3,
                }
            }
        );
        assert!(matches!(
            parse_line("trace hist latency run.jsonl").unwrap(),
            Command::Trace {
                action: TraceAction::Hist {
                    metric: TraceMetric::Latency,
                    ..
                }
            }
        ));
        assert!(matches!(
            parse_line("trace diff a.jsonl b.jsonl").unwrap(),
            Command::Trace {
                action: TraceAction::Diff { .. }
            }
        ));
        assert!(matches!(
            parse_line("trace export run.jsonl run.json").unwrap(),
            Command::Trace {
                action: TraceAction::Export { .. }
            }
        ));
    }

    #[test]
    fn trace_errors_fail_loudly_with_usage() {
        let err = parse_line("trace frobnicate run.jsonl").unwrap_err();
        assert!(err.contains("unknown trace action 'frobnicate'"), "{err}");
        assert!(err.contains("dbr trace summary"), "{err}");
        let err = parse_line("trace").unwrap_err();
        assert!(err.contains("missing trace action"), "{err}");
        // Misspelled and misplaced flags are rejected, not ignored.
        let err = parse_line("trace links run.jsonl --topp 3").unwrap_err();
        assert!(err.contains("unexpected flag --topp"), "{err}");
        assert!(parse_line("trace summary run.jsonl --top 3").is_err());
        let err = parse_line("trace hist hopss run.jsonl").unwrap_err();
        assert!(err.contains("unknown metric 'hopss'"), "{err}");
        // Wrong arity names the expected grammar.
        let err = parse_line("trace diff only-one.jsonl").unwrap_err();
        assert!(err.contains("trace diff <A> <B>"), "{err}");
        assert!(parse_line("trace summary run.jsonl --radix x").is_err());
    }

    #[test]
    fn simulate_parses_progress_and_chrome_trace() {
        let cmd = parse_line("simulate 2 6 --progress 25 --chrome-trace t.json").unwrap();
        assert!(matches!(
            cmd,
            Command::Simulate {
                progress: Some(25),
                ..
            }
        ));
        assert!(parse_line("simulate 2 6 --progress 0").is_err());
        assert!(parse_line("simulate 2 6 --progress x").is_err());
        assert!(parse_line("simulate 2 6 --chrome-tracee t.json").is_err());
    }

    #[test]
    fn help_documents_trace_family() {
        let out = run(&Command::Help).unwrap();
        for needle in [
            "dbr trace summary",
            "dbr trace diff",
            "--chrome-trace",
            "--progress",
        ] {
            assert!(out.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn trace_summary_reproduces_live_metrics() {
        // End-to-end: simulate with --trace + --metrics, then check the
        // offline reconstruction repeats the live histogram block.
        let path = std::env::temp_dir().join(format!("dbr-cli-trace-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let line =
            format!("simulate 2 5 --messages 150 --router alg4 --metrics --trace {path_str}");
        let live = run(&parse_line(&line).unwrap()).unwrap();
        let offline = run(&parse_line(&format!("trace summary {path_str}")).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        // The whole metrics block matches byte for byte.
        let live_metrics = live.split("== metrics ==").nth(1).unwrap();
        let offline_metrics = offline.split("== metrics ==").nth(1).unwrap();
        let live_block = live_metrics.split("== core profile").next().unwrap();
        assert_eq!(live_block.trim_end(), offline_metrics.trim_end());
        // And so do the headline report lines.
        for needle in [
            "delivered:    150/150",
            "dropped:      0",
            "mean hops:",
            "mean latency:",
        ] {
            let line = live.lines().find(|l| l.starts_with(needle)).unwrap();
            assert!(offline.contains(line), "{offline}\nmissing {line}");
        }
    }

    #[test]
    fn chrome_trace_flag_writes_perfetto_json() {
        let dir = std::env::temp_dir();
        let chrome = dir.join(format!("dbr-cli-chrome-{}.json", std::process::id()));
        let chrome_str = chrome.to_str().unwrap().to_string();
        let line = format!("simulate 2 4 --messages 40 --chrome-trace {chrome_str}");
        let out = run(&parse_line(&line).unwrap()).unwrap();
        assert!(out.contains("chrome trace written to"), "{out}");
        let text = std::fs::read_to_string(&chrome).unwrap();
        std::fs::remove_file(&chrome).ok();
        assert!(text.starts_with("[\n{"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"thread_name\""), "{text}");
        assert!(text.contains("\"cat\":\"message\""), "{text}");
    }

    #[test]
    fn trace_export_matches_live_chrome_trace() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let jsonl = dir.join(format!("dbr-cli-exp-{pid}.jsonl"));
        let live = dir.join(format!("dbr-cli-exp-live-{pid}.json"));
        let offline = dir.join(format!("dbr-cli-exp-off-{pid}.json"));
        let (jsonl_s, live_s, offline_s) = (
            jsonl.to_str().unwrap(),
            live.to_str().unwrap(),
            offline.to_str().unwrap(),
        );
        let line = format!(
            "simulate 2 4 --messages 30 --seed 5 --trace {jsonl_s} --chrome-trace {live_s}"
        );
        run(&parse_line(&line).unwrap()).unwrap();
        let out =
            run(&parse_line(&format!("trace export {jsonl_s} {offline_s}")).unwrap()).unwrap();
        assert!(out.contains("exported"), "{out}");
        let live_text = std::fs::read_to_string(&live).unwrap();
        let offline_text = std::fs::read_to_string(&offline).unwrap();
        for p in [&jsonl, &live, &offline] {
            std::fs::remove_file(p).ok();
        }
        // Live and offline exports of the same run are identical.
        assert_eq!(live_text, offline_text);
    }

    #[test]
    fn run_reports_bad_words() {
        let err = run(&parse_line("distance 2 01 0110").unwrap()).unwrap_err();
        assert!(err.contains("same length"), "{err}");
        let err = run(&parse_line("distance 2 0120 0000").unwrap()).unwrap_err();
        assert!(err.contains("bad X"), "{err}");
    }

    #[test]
    fn help_contains_usage() {
        let out = run(&Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn multipath_command_lists_distinct_shortest_routes() {
        let out = run(&parse_line("multipath 2 0000 1111").unwrap()).unwrap();
        assert!(out.contains("shortest route(s) of length 4"), "{out}");
        // Trivial route plus at least one right-shift variant.
        assert!(out.lines().count() >= 3, "{out}");
    }

    #[test]
    fn gdb_command_routes_in_non_power_graphs() {
        let out = run(&parse_line("gdb 2 12 3 7").unwrap()).unwrap();
        assert!(out.contains("GDB(2,12)"), "{out}");
        assert!(out.contains("distance 3 -> 7"), "{out}");
        let err = run(&parse_line("gdb 2 12 12 0").unwrap()).unwrap_err();
        assert!(err.contains("below N"), "{err}");
    }

    #[test]
    fn disjoint_command_reports_menger_witnesses() {
        let out = run(&parse_line("disjoint 2 000 111").unwrap()).unwrap();
        assert!(out.contains("vertex-disjoint"), "{out}");
        assert!(out.contains("000 -> "), "{out}");
        let err = run(&parse_line("disjoint 2 000 000").unwrap()).unwrap_err();
        assert!(err.contains("differ"), "{err}");
    }
}
