//! `dbr` — de Bruijn network routing toolbox.
//!
//! See `dbr help` for usage; the command logic lives in
//! [`debruijn_suite::cli`] so it can be unit-tested.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match debruijn_suite::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", debruijn_suite::cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match debruijn_suite::cli::run(&cmd) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
