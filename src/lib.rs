//! Umbrella crate for the de Bruijn optimal-routing reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests read naturally. See the individual crates for the
//! real API documentation:
//!
//! * `debruijn_core` — words, distance functions, Algorithms
//!   1/2/4 (the paper's contribution);
//! * `debruijn_strings` — failure functions and suffix trees
//!   (the pattern-matching substrate);
//! * `debruijn_graph` — explicit graphs, BFS baselines,
//!   censuses, Euler/Hamilton tours, fault-avoiding routing;
//! * `debruijn_net` — the discrete-event network simulator;
//! * `debruijn_embed` — ring/tree/shuffle-exchange embeddings;
//! * `debruijn_analysis` — experiment computations and table
//!   rendering.
//!
//! # Quickstart
//!
//! ```
//! use debruijn_suite::core::{routing, Word};
//!
//! let x = Word::parse(2, "010011")?;
//! let y = Word::parse(2, "110100")?;
//! let route = routing::algorithm4(&x, &y);
//! assert!(route.leads_to(&x, &y));
//! # Ok::<(), debruijn_suite::core::Error>(())
//! ```

pub mod cli;
pub mod trace;

pub use debruijn_analysis as analysis;
pub use debruijn_core as core;
pub use debruijn_embed as embed;
pub use debruijn_graph as graph;
pub use debruijn_net as net;
pub use debruijn_strings as strings;

/// Compiles the README's code blocks as doctests, so the front-page
/// library snippet can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// The sharded-simulator scaling guide (`docs/SCALING.md`), rendered
/// into the crate docs so `cargo doc -D warnings` parses and
/// link-checks it alongside the API it describes.
#[doc = include_str!("../docs/SCALING.md")]
pub mod scaling {}
