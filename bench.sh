#!/bin/sh
# Regenerates BENCH_results.json from the micro-benchmark binaries'
# --json mode (median ns/call per engine and algorithm). Run from the
# repository root; no network access required. The file is checked in
# so reviewers can compare machines and spot regressions.
#
# `bench.sh --check` reruns the distance-engine and simulator benches
# and compares them against the checked-in BENCH_results.json with the
# bench_check binary, failing if any series regressed more than 30%.
# The simulator bench additionally self-gates: serving /metrics
# scrapes at 4 Hz must not steal more than 2% of the simulator's CPU
# (--max-scrape-overhead-pct, see docs/OBSERVABILITY.md), and the
# sharded-simulator scaling bench requires >= 1.8x throughput at 4
# threads over 1 (--min-speedup-4t; self-skipped on hosts with fewer
# than 4 cores, where that floor is physically unreachable — the skip
# and its reason land in the emitted JSON as a "skipped" field) and
# caps the engine profiler's cost at default sampling to 2% over an
# unprofiled run while asserting profiling perturbs no output
# (--max-profile-overhead-pct, see docs/OBSERVABILITY.md "Profiling
# the engine"). The query-service bench likewise self-gates: the
# sharded+batched service must beat the shared-cache unbatched
# baseline on QPS (--min-qps-ratio; self-skipped on single-core hosts
# where the worker pool cannot express parallelism). Speedup and QPS
# are higher-is-better series, so those benches are compared ns-only
# (--ns-only) under bench_check's lower-is-better rule. The monitor
# bench self-gates identifying-code fault monitors to at most 2%
# ns/msg over a monitors-off run (--max-monitor-overhead-pct, see
# docs/OBSERVABILITY.md "Localizing faults"). The batched-query bench
# self-gates the destination-major kernel to >= 3x the scalar loop on
# undirected destination-skewed batches (--min-batch-speedup, see
# docs/PERFORMANCE.md "Amortized destination-major evaluation").
# ci.sh runs this as its performance smoke.
set -eu

out=BENCH_results.json

if [ "${1:-}" = "--check" ]; then
    cargo build --release -q -p debruijn-bench \
        --bench distance_engines --bench simulation_throughput \
        --bench simulation_scaling --bench service_throughput \
        --bench monitor_overhead --bench batched_query --bin bench_check
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    dist_line=$(cargo bench -q -p debruijn-bench --bench distance_engines -- --json)
    batch_line=$(cargo bench -q -p debruijn-bench --bench batched_query -- \
        --json --min-batch-speedup 3)
    sim_line=$(cargo bench -q -p debruijn-bench --bench simulation_throughput -- \
        --json --max-scrape-overhead-pct 2)
    scale_line=$(cargo bench -q -p debruijn-bench --bench simulation_scaling -- \
        --json --ns-only --min-speedup-4t 1.8 --max-profile-overhead-pct 2)
    service_line=$(cargo bench -q -p debruijn-bench --bench service_throughput -- \
        --json --ns-only --min-qps-ratio 1.0)
    monitor_line=$(cargo bench -q -p debruijn-bench --bench monitor_overhead -- \
        --json --max-monitor-overhead-pct 2)
    {
        printf '[\n'
        printf '%s,\n' "$dist_line"
        printf '%s,\n' "$batch_line"
        printf '%s,\n' "$sim_line"
        printf '%s,\n' "$scale_line"
        printf '%s,\n' "$service_line"
        printf '%s' "$monitor_line"
        printf '\n]\n'
    } > "$tmp"
    cargo run --release -q -p debruijn-bench --bin bench_check -- "$out" "$tmp"
    exit 0
fi

cargo build --release -q -p debruijn-bench \
    --bench distance_engines \
    --bench routing_algorithms \
    --bench batched_query \
    --bench simulation_throughput \
    --bench simulation_scaling \
    --bench service_throughput \
    --bench monitor_overhead

{
    printf '[\n'
    first=1
    for bench in distance_engines routing_algorithms batched_query simulation_throughput simulation_scaling service_throughput monitor_overhead; do
        line=$(cargo bench -q -p debruijn-bench --bench "$bench" -- --json)
        if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
        printf '%s' "$line"
    done
    printf '\n]\n'
} > "$out"

echo "wrote $out"
