#!/bin/sh
# Regenerates BENCH_results.json from the micro-benchmark binaries'
# --json mode (median ns/call per engine and algorithm). Run from the
# repository root; no network access required. The file is checked in
# so reviewers can compare machines and spot regressions.
set -eu

out=BENCH_results.json

cargo build --release -q -p debruijn-bench \
    --bench distance_engines \
    --bench routing_algorithms \
    --bench simulation_throughput

{
    printf '[\n'
    first=1
    for bench in distance_engines routing_algorithms simulation_throughput; do
        line=$(cargo bench -q -p debruijn-bench --bench "$bench" -- --json)
        if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
        printf '%s' "$line"
    done
    printf '\n]\n'
} > "$out"

echo "wrote $out"
