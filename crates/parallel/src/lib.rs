//! Std-only data parallelism with deterministic merge order.
//!
//! The batch drivers in this workspace — all-pairs distance, graph
//! eccentricities, bulk route computation, simulator route precomputation —
//! are embarrassingly parallel, but the workspace builds fully offline with
//! no external dependencies, so rayon is out. This crate provides the small
//! slice of it the drivers need, on `std::thread::scope` alone:
//!
//! * a **chunked dynamic work queue**: workers claim fixed-size index
//!   chunks from an atomic counter, so uneven per-item cost (BFS from a
//!   high-eccentricity vertex, a long route) load-balances instead of
//!   stalling a static partition;
//! * **deterministic merge order**: each chunk remembers its start index
//!   and results are reassembled in index order, so the output is
//!   *byte-identical* regardless of thread count or scheduling — `--threads
//!   8` must equal `--threads 1` exactly (and tests assert it);
//! * **per-worker scratch**: [`map_range_with`] gives every worker one
//!   lazily-created scratch value, the hook the zero-allocation routing and
//!   matching kernels need.
//!
//! Worker panics propagate to the caller (via `std::thread::scope`), so a
//! panicking item behaves the same single- or multi-threaded.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Resolves a requested thread count: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped workers, returning the
/// results in index order.
///
/// With `threads <= 1` (or `n <= 1`) the map runs inline on the calling
/// thread — no spawn, no queue. `threads == 0` resolves to the machine's
/// available parallelism.
///
/// # Examples
///
/// ```
/// let squares = debruijn_parallel::map_range(4, 10, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
pub fn map_range<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_range_with(threads, n, || (), |(), i| f(i))
}

/// Maps `f` over the items of a slice on up to `threads` scoped workers,
/// returning the results in slice order.
pub fn map_slice<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_range(threads, items.len(), |i| f(&items[i]))
}

/// Like [`map_range`], with one `init()`-created scratch value per worker
/// threaded through its calls (workers see disjoint index subsets; the
/// inline path uses a single scratch for all of `0..n`).
///
/// This is the entry point for kernels with reusable buffers: the scratch
/// must not influence results, only amortize allocations.
pub fn map_range_with<S, R, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = effective_threads(threads);
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    // Small chunks load-balance uneven items; the clamp keeps queue
    // traffic negligible. Chunking affects only scheduling, never results.
    let chunk = (n / (threads * 8)).clamp(1, 1024);
    let nchunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(nchunks));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(nchunks) {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= nchunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(n);
                    let out: Vec<R> = (start..end).map(|i| f(&mut scratch, i)).collect();
                    done.lock().unwrap().push((start, out));
                }
            });
        }
    });
    let mut chunks = done.into_inner().unwrap();
    // Reassembly by chunk start index makes the merge order — and thus
    // the caller-visible output — independent of thread scheduling.
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut v) in chunks {
        out.append(&mut v);
    }
    out
}

/// Maps `f` over `0..n` split into contiguous chunks of (at most)
/// `chunk` indices, returning one result per chunk in chunk order.
///
/// Unlike [`map_range`], the *caller* fixes the chunk geometry, so the
/// partition itself is part of the contract: callers that fold each
/// chunk into a partial aggregate (a metrics shard, a partial sum) get
/// the same partition — and therefore the same per-chunk results —
/// for every thread count. Workers still claim chunks dynamically, and
/// results are reassembled in chunk order.
///
/// # Panics
///
/// Panics if `chunk == 0` and `n > 0`.
///
/// # Examples
///
/// ```
/// let sums = debruijn_parallel::map_chunks(4, 10, 4, |r| r.sum::<usize>());
/// assert_eq!(sums, vec![0 + 1 + 2 + 3, 4 + 5 + 6 + 7, 8 + 9]);
/// ```
pub fn map_chunks<R, F>(threads: usize, n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    assert!(chunk > 0, "chunk size must be positive");
    let nchunks = n.div_ceil(chunk);
    let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
    let threads = effective_threads(threads);
    if threads <= 1 || nchunks <= 1 {
        return (0..nchunks).map(|c| f(range_of(c))).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(nchunks));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(nchunks) {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= nchunks {
                    break;
                }
                let out = f(range_of(c));
                done.lock().unwrap().push((c, out));
            });
        }
    });
    let mut chunks = done.into_inner().unwrap();
    chunks.sort_unstable_by_key(|&(c, _)| c);
    chunks.into_iter().map(|(_, r)| r).collect()
}

/// Runs `f(worker)` for `workers` scoped workers, ids `0..workers`.
///
/// Worker 0 runs on the calling thread (so `workers <= 1` spawns
/// nothing); the rest run on scoped threads, and panics propagate. This
/// is the spawn layer of time-stepped drivers: callers pair it with a
/// [`TickBarrier`] and keep the same worker ids across every tick, so
/// per-worker state stays thread-local for the whole run instead of
/// being re-distributed per tick.
pub fn run_workers<F>(workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if workers <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        for w in 1..workers {
            let f = &f;
            scope.spawn(move || f(w));
        }
        f(0);
    });
}

/// A reusable rendezvous for lockstep (time-stepped) parallel drivers:
/// all workers finish tick `T`, publish the next tick they each need,
/// and every worker learns the global minimum before anyone proceeds.
///
/// This is the conservative-simulation barrier: with a known lookahead
/// `L = service + latency`, a worker may process every event in the
/// window `[T, T + L)` without coordination, then
/// [`TickBarrier::sync_min`] both separates the phases and elects the
/// next tick. `u64::MAX` means "nothing left"; when every worker says
/// so, the returned minimum signals termination.
///
/// The implementation is a spinning min-reduction with per-worker
/// generation counters and parity-indexed value slots — no mutex, no
/// condvar, no syscall on the fast path. A `std::sync::Barrier` round
/// costs two mutex/condvar waits (microseconds when workers park);
/// simulator windows are often shorter than that, which is how the
/// PR 5 engine lost its parallelism (`speedup_vs_1_thread = 1.0` in
/// BENCH_results.json — see docs/SCALING.md). Spins yield to the
/// scheduler after a short busy phase, so oversubscribed boxes (more
/// workers than cores) still make progress.
///
/// # Examples
///
/// ```
/// use debruijn_parallel::TickBarrier;
///
/// let barrier = TickBarrier::new(2);
/// debruijn_parallel::run_workers(2, |w| {
///     // Worker 0 next needs tick 7, worker 1 tick 3: both learn 3.
///     let next = barrier.sync_min(w, if w == 0 { 7 } else { 3 });
///     assert_eq!(next, 3);
/// });
/// ```
pub struct TickBarrier {
    /// `gens[w]`: rounds worker `w` has completed publishing. Padded to
    /// a cache line so spinning on one worker's counter does not
    /// false-share with its neighbors.
    gens: Vec<CachePadded<std::sync::atomic::AtomicU64>>,
    /// `vals[r & 1][w]`: worker `w`'s published tick for round `r`.
    /// Two parity slots suffice: a worker can only start publishing
    /// round `r + 2` after every worker finished *reading* round `r`
    /// (it must first observe everyone at generation `r + 1`).
    vals: [Vec<CachePadded<std::sync::atomic::AtomicU64>>; 2],
}

/// Pads a value to its own cache line(s) to prevent false sharing
/// between per-worker atomics. 128 bytes covers the adjacent-line
/// prefetcher on common x86 parts.
#[repr(align(128))]
struct CachePadded<T>(T);

impl TickBarrier {
    /// A barrier for `workers` participants (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let column = |value: u64| {
            (0..workers)
                .map(|_| CachePadded(std::sync::atomic::AtomicU64::new(value)))
                .collect::<Vec<_>>()
        };
        Self {
            gens: column(0),
            vals: [column(u64::MAX), column(u64::MAX)],
        }
    }

    /// Number of participating workers.
    pub fn workers(&self) -> usize {
        self.gens.len()
    }

    /// Publishes this worker's next-needed tick and returns the minimum
    /// over all workers. Blocks (spinning, then yielding) until every
    /// worker has called in; all workers observe the same minimum for
    /// the same round.
    ///
    /// The release store of the generation counter orders each worker's
    /// pre-call writes before every other worker's post-call reads — the
    /// same happens-before edge a `std::sync::Barrier` provides — so
    /// callers may hand off arbitrary data (e.g. mailbox contents)
    /// across the rendezvous.
    pub fn sync_min(&self, worker: usize, local: u64) -> u64 {
        let mut wait = BarrierWait::default();
        self.sync_inner::<false>(worker, local, &mut wait)
    }

    /// [`TickBarrier::sync_min`] with wait accounting: wall-clock time,
    /// spin iterations, and yields spent inside the rendezvous are
    /// added to `wait`. The synchronization protocol is identical; the
    /// untimed entry point compiles with every accounting branch
    /// removed (`TIMED` is a const), so instrumentation is zero-cost
    /// when unused.
    pub fn sync_min_timed(&self, worker: usize, local: u64, wait: &mut BarrierWait) -> u64 {
        self.sync_inner::<true>(worker, local, wait)
    }

    fn sync_inner<const TIMED: bool>(
        &self,
        worker: usize,
        local: u64,
        wait: &mut BarrierWait,
    ) -> u64 {
        use std::sync::atomic::Ordering;
        if TIMED {
            wait.rounds += 1;
        }
        if self.gens.len() == 1 {
            return local;
        }
        let started = TIMED.then(std::time::Instant::now);
        let round = self.gens[worker].0.load(Ordering::Relaxed) + 1;
        let slot = &self.vals[(round & 1) as usize];
        slot[worker].0.store(local, Ordering::Relaxed);
        self.gens[worker].0.store(round, Ordering::Release);
        let mut min = local;
        for (peer, gen) in self.gens.iter().enumerate() {
            if peer == worker {
                continue;
            }
            let mut spins = 0u32;
            while gen.0.load(Ordering::Acquire) < round {
                if spins < 128 {
                    spins += 1;
                    if TIMED {
                        wait.spins += 1;
                    }
                    std::hint::spin_loop();
                } else {
                    if TIMED {
                        wait.yields += 1;
                    }
                    std::thread::yield_now();
                }
            }
            // The acquire above synchronized with the peer's release of
            // generation >= round, which happens after its round-value
            // store — a relaxed read suffices (and a peer one round
            // ahead writes the *other* parity slot, never this one).
            min = min.min(slot[peer].0.load(Ordering::Relaxed));
        }
        if let Some(started) = started {
            wait.nanos += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        min
    }
}

/// A bounded multi-producer job queue with batch drain — the admission
/// and batching primitive for thread-per-core service pools.
///
/// Producers [`try_push`] and are *rejected* (never blocked) when the
/// queue is full: the caller decides what load shedding looks like
/// (an HTTP `503`, a dropped message). The consumer [`drain_into`]s up
/// to a batch of items per wakeup, so one mutex/condvar round trip is
/// amortized over the whole batch instead of paid per item. FIFO order
/// is preserved across the batch boundary.
///
/// [`close`] wakes the consumer and fails subsequent pushes; items
/// already queued stay drainable, so shutdown is a *clean drain* — no
/// accepted work is lost.
///
/// [`try_push`]: BoundedQueue::try_push
/// [`drain_into`]: BoundedQueue::drain_into
/// [`close`]: BoundedQueue::close
///
/// # Examples
///
/// ```
/// use debruijn_parallel::BoundedQueue;
///
/// let q = BoundedQueue::new(2);
/// assert_eq!(q.try_push(1), Ok(1));
/// assert_eq!(q.try_push(2), Ok(2));
/// assert_eq!(q.try_push(3), Err(3), "full queue sheds");
/// q.close();
/// let mut batch = Vec::new();
/// assert!(q.drain_into(&mut batch, 8), "queued items survive close");
/// assert_eq!(batch, vec![1, 2]);
/// assert!(!q.drain_into(&mut batch, 8), "closed and empty");
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.min(4096)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, returning the queue depth after the push, or
    /// hands the item back when the queue is full or closed. Never
    /// blocks — rejection is the backpressure signal.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one item is queued (or the queue is
    /// closed), then moves up to `max` items into `out` in FIFO order.
    /// Returns `false` only when the queue is closed *and* empty — the
    /// consumer's signal to exit after a clean drain.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> bool {
        let max = max.max(1);
        let mut state = self.state.lock().expect("queue lock");
        while state.items.is_empty() {
            if state.closed {
                return false;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
        let take = state.items.len().min(max);
        out.extend(state.items.drain(..take));
        true
    }

    /// Closes the queue: wakes blocked consumers and fails every
    /// subsequent [`try_push`](BoundedQueue::try_push). Already-queued
    /// items remain drainable.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](BoundedQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }
}

/// Accumulated barrier-wait accounting for one worker, filled by
/// [`TickBarrier::sync_min_timed`]: how long (and how busily) the
/// worker sat at the rendezvous waiting for its slowest peer. This is
/// the number that explains a flat `speedup_vs_1_thread` — compute
/// imbalance shows up here, not in the compute timers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWait {
    /// Wall-clock nanoseconds inside the rendezvous (publish to fold).
    pub nanos: u64,
    /// Busy-spin iterations while waiting for peers.
    pub spins: u64,
    /// `yield_now` calls after the spin budget ran out.
    pub yields: u64,
    /// Rendezvous rounds crossed (windows + the seeding round).
    pub rounds: u64,
}

impl BarrierWait {
    /// Folds another worker's accounting into this one.
    pub fn merge(&mut self, other: &BarrierWait) {
        self.nanos += other.nanos;
        self.spins += other.spins;
        self.yields += other.yields;
        self.rounds += other.rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 17] {
            let got = map_range(threads, 1000, |i| i * 3);
            assert_eq!(got, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn multithreaded_output_is_identical_to_single_threaded() {
        // Uneven per-item cost provokes out-of-order chunk completion.
        let work = |i: usize| -> u64 {
            let spins = if i.is_multiple_of(97) { 10_000 } else { 10 };
            (0..spins).fold(i as u64, |acc, s| {
                acc.wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(s as u64)
            })
        };
        let serial = map_range(1, 5000, work);
        let parallel = map_range(8, 5000, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn map_slice_preserves_order() {
        let items: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let got = map_slice(4, &items, |s| s.len());
        let want: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn per_worker_scratch_is_reused_not_shared() {
        // Each worker's scratch counts its own items; totals must add up
        // to n even though workers race for chunks.
        let counted = map_range_with(
            4,
            1000,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(counted.len(), 1000);
        // Index order is preserved regardless of which worker ran what.
        assert!(counted.iter().enumerate().all(|(idx, &(i, _))| idx == i));
        // No worker saw more items than exist.
        assert!(counted.iter().all(|&(_, seen)| seen <= 1000));
    }

    #[test]
    fn empty_and_singleton_ranges_run_inline() {
        assert_eq!(map_range(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_range(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(5), 5);
        // And the mapping still works with the resolved count.
        assert_eq!(map_range(0, 10, |i| i).len(), 10);
    }

    #[test]
    fn map_chunks_partition_is_independent_of_thread_count() {
        let serial = map_chunks(1, 1003, 17, |r| (r.start, r.end, r.sum::<usize>()));
        for threads in [2, 4, 16] {
            let parallel = map_chunks(threads, 1003, 17, |r| (r.start, r.end, r.sum::<usize>()));
            assert_eq!(serial, parallel);
        }
        // The chunks tile 0..n exactly.
        let mut expect = 0;
        for &(start, end, _) in &serial {
            assert_eq!(start, expect);
            assert!(end - start <= 17);
            expect = end;
        }
        assert_eq!(expect, 1003);
    }

    #[test]
    fn map_chunks_handles_empty_and_oversized_chunks() {
        assert_eq!(map_chunks(4, 0, 8, |r| r.len()), Vec::<usize>::new());
        // One chunk covers everything when chunk >= n.
        assert_eq!(map_chunks(4, 5, 100, |r| (r.start, r.end)), vec![(0, 5)]);
    }

    #[test]
    fn run_workers_covers_every_id_once() {
        for workers in [1, 2, 5] {
            let seen: Vec<std::sync::atomic::AtomicUsize> = (0..workers)
                .map(|_| std::sync::atomic::AtomicUsize::new(0))
                .collect();
            run_workers(workers, |w| {
                seen[w].fetch_add(1, Ordering::Relaxed);
            });
            assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn sync_min_agrees_across_rounds_and_workers() {
        for workers in [1, 2, 4] {
            let barrier = TickBarrier::new(workers);
            let mins: Mutex<Vec<Vec<u64>>> = Mutex::new(vec![Vec::new(); workers]);
            run_workers(workers, |w| {
                // Round r: worker w publishes r * 10 + w; the global
                // minimum is r * 10 (worker 0's value) every round.
                for r in 0..50u64 {
                    let got = barrier.sync_min(w, r * 10 + w as u64);
                    mins.lock().unwrap()[w].push(got);
                }
            });
            let mins = mins.into_inner().unwrap();
            for per_worker in mins {
                let want: Vec<u64> = (0..50).map(|r| r * 10).collect();
                assert_eq!(per_worker, want);
            }
        }
    }

    #[test]
    fn sync_min_terminates_on_unanimous_max() {
        let barrier = TickBarrier::new(3);
        run_workers(3, |w| {
            assert_eq!(barrier.sync_min(w, u64::MAX), u64::MAX);
        });
    }

    #[test]
    fn sync_min_timed_returns_the_same_minima_and_counts_rounds() {
        for workers in [1, 2, 4] {
            let barrier = TickBarrier::new(workers);
            let waits: Mutex<Vec<BarrierWait>> = Mutex::new(vec![BarrierWait::default(); workers]);
            let mins: Mutex<Vec<Vec<u64>>> = Mutex::new(vec![Vec::new(); workers]);
            run_workers(workers, |w| {
                let mut wait = BarrierWait::default();
                for r in 0..20u64 {
                    let got = barrier.sync_min_timed(w, r * 10 + w as u64, &mut wait);
                    mins.lock().unwrap()[w].push(got);
                }
                waits.lock().unwrap()[w] = wait;
            });
            for per_worker in mins.into_inner().unwrap() {
                let want: Vec<u64> = (0..20).map(|r| r * 10).collect();
                assert_eq!(per_worker, want, "workers {workers}");
            }
            for wait in waits.into_inner().unwrap() {
                assert_eq!(wait.rounds, 20, "workers {workers}");
                // A single worker never waits; with peers the timer may
                // legitimately read 0 ns on a fast rendezvous, so only
                // the round count is asserted exactly.
                if workers == 1 {
                    assert_eq!(
                        wait,
                        BarrierWait {
                            rounds: 20,
                            ..BarrierWait::default()
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn barrier_wait_merge_adds_fields() {
        let mut a = BarrierWait {
            nanos: 5,
            spins: 2,
            yields: 1,
            rounds: 3,
        };
        a.merge(&BarrierWait {
            nanos: 10,
            spins: 4,
            yields: 0,
            rounds: 7,
        });
        assert_eq!(
            a,
            BarrierWait {
                nanos: 15,
                spins: 6,
                yields: 1,
                rounds: 10,
            }
        );
    }

    #[test]
    fn bounded_queue_sheds_at_capacity_and_preserves_fifo_order() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.try_push("a"), Ok(1));
        assert_eq!(q.try_push("b"), Ok(2));
        assert_eq!(q.try_push("c"), Ok(3));
        assert_eq!(q.try_push("d"), Err("d"));
        assert_eq!(q.len(), 3);
        let mut batch = Vec::new();
        assert!(q.drain_into(&mut batch, 2));
        assert_eq!(batch, vec!["a", "b"]);
        // Shedding freed a slot; the queue accepts again.
        assert_eq!(q.try_push("e"), Ok(2));
        batch.clear();
        assert!(q.drain_into(&mut batch, 10));
        assert_eq!(batch, vec!["c", "e"]);
    }

    #[test]
    fn bounded_queue_close_drains_cleanly_then_reports_exhaustion() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3), Err(3), "closed queue rejects producers");
        let mut batch = Vec::new();
        assert!(q.drain_into(&mut batch, 100), "accepted work is kept");
        assert_eq!(batch, vec![1, 2]);
        assert!(!q.drain_into(&mut batch, 100), "closed and empty");
        assert_eq!(batch, vec![1, 2], "exhausted drain appends nothing");
    }

    #[test]
    fn bounded_queue_wakes_a_blocked_consumer_on_close() {
        let q = std::sync::Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                // Blocks until the producer side closes, then exits.
                q.drain_into(&mut batch, 8)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!consumer.join().unwrap());
    }

    #[test]
    fn bounded_queue_concurrent_producers_lose_no_accepted_item() {
        let q = std::sync::Arc::new(BoundedQueue::new(64));
        let accepted = std::sync::Arc::new(AtomicUsize::new(0));
        let consumed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = std::sync::Arc::clone(&q);
                let accepted = std::sync::Arc::clone(&accepted);
                scope.spawn(move || {
                    for i in 0..100 {
                        if q.try_push(p * 100 + i).is_ok() {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Producers may outpace the consumer; shed items
                    // are simply not counted.
                });
            }
            scope.spawn(|| {
                let mut batch = Vec::new();
                loop {
                    batch.clear();
                    if !q.drain_into(&mut batch, 16) {
                        break;
                    }
                    consumed.lock().unwrap().extend(batch.iter().copied());
                    // A batch never exceeds the requested maximum.
                    assert!(batch.len() <= 16);
                }
            });
            // Give producers time to finish before closing.
            while accepted.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
            q.close();
        });
        let consumed = consumed.into_inner().unwrap();
        // Some items may remain queued if close raced the consumer;
        // drain them for the accounting check.
        let mut rest = Vec::new();
        while q.drain_into(&mut rest, 64) {}
        assert_eq!(
            consumed.len() + rest.len(),
            accepted.load(Ordering::Relaxed),
            "every accepted item is consumed exactly once"
        );
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            map_range(4, 100, |i| {
                assert!(i != 57, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
