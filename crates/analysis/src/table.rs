//! Minimal plain-text table rendering for the experiment benches.

use std::fmt;

/// A fixed-column text table. Cells are right-aligned except the first
/// column, which is left-aligned (row labels).
///
/// # Examples
///
/// ```
/// use debruijn_analysis::Table;
///
/// let mut t = Table::new(vec!["k".into(), "avg".into()]);
/// t.row(vec!["3".into(), "2.156".into()]);
/// let s = t.to_string();
/// assert!(s.contains("avg"));
/// assert!(s.contains("2.156"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of `Display` values.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Renders the table as RFC-4180-ish CSV (quotes only where needed).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<width$}", width = widths[i])?;
                } else {
                    write!(f, "{cell:>width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn row_display_converts_values() {
        let mut t = Table::new(vec!["k".into(), "v".into()]);
        t.row_display(&[1.5, 2.25]);
        assert!(t.to_string().contains("2.25"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a".into()]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new(vec!["name".into(), "note".into()]);
        t.row(vec!["plain".into(), "a,b".into()]);
        t.row(vec!["quoted\"q".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,\"a,b\"");
        assert_eq!(lines[2], "\"quoted\"\"q\",x");
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = Table::new(vec!["k".into(), "v".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("debruijn-table-test");
        let path = dir.join("nested").join("t.csv");
        t.write_csv(&path).expect("writable temp dir");
        let read = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(read, t.to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
