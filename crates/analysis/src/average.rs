//! Average inter-vertex distances: the data behind Eq. (5) and Figure 2.
//!
//! Averages are over **all ordered pairs including `X = Y`** (the paper's
//! convention for Eq. (5); the self-pairs contribute distance 0, so the
//! two conventions differ by the factor `N/(N−1)`).

use debruijn_core::batch::{distance_column_into, ColumnScratch};
use debruijn_core::rng::SplitMix64;
use debruijn_core::space::RankSpace;
use debruijn_core::{distance, DeBruijn, Word};

fn order(space: DeBruijn) -> usize {
    space
        .order_usize()
        .expect("exact averages require an enumerable space")
}

/// Destination-major all-pairs total: one reverse-BFS distance column per
/// destination (each column is `O(N·d)` instead of `N` formula solves),
/// fanned out over `threads` workers with a per-worker [`ColumnScratch`].
/// Column totals are integers summed in destination order, so the result
/// is the same `u64` the pair-by-pair sweep produces.
///
/// Returns `None` when the space has no [`RankSpace`] (`d^k` beyond
/// `u64`), in which case callers fall back to the formula sweep.
fn column_total(space: DeBruijn, directed: bool, threads: usize) -> Option<u64> {
    let ranks = RankSpace::new(space)?;
    let n = usize::try_from(ranks.order()).ok()?;
    let totals =
        debruijn_parallel::map_range_with(threads, n, ColumnScratch::new, move |col, dst| {
            distance_column_into(ranks, directed, dst as u64, col);
            col.distances().iter().map(|&d| u64::from(d)).sum::<u64>()
        });
    Some(totals.into_iter().sum())
}

/// Exact average distance of the **directed** `DG(d,k)` over all `N²`
/// ordered pairs — destination-major (`O(N²·d)` via one reverse-BFS
/// column per destination), falling back to the `O(N²·k)` Property-1
/// pair sweep when no `u64` rank space exists.
///
/// # Panics
///
/// Panics if `d^k` does not fit in `usize`.
pub fn exact_directed(space: DeBruijn) -> f64 {
    exact_directed_threads(space, 1)
}

/// [`exact_directed`] with the `N²` pair sweep evaluated
/// destination-major — one reverse-BFS column per destination — fanned
/// out over `threads` scoped workers (1 = inline, 0 = available
/// parallelism). All partial totals are integers, so the result is
/// bit-identical for every thread count *and* to the pair-by-pair
/// Property-1 sweep (which remains as the fallback for spaces without a
/// `u64` rank space).
///
/// # Panics
///
/// Panics if `d^k` does not fit in `usize`.
pub fn exact_directed_threads(space: DeBruijn, threads: usize) -> f64 {
    let n = order(space);
    let total = column_total(space, true, threads).unwrap_or_else(|| {
        let words: Vec<Word> = space.vertices().collect();
        debruijn_parallel::map_slice(threads, &words, |x| {
            words
                .iter()
                .map(|y| distance::directed::distance(x, y) as u64)
                .sum::<u64>()
        })
        .into_iter()
        .sum()
    });
    total as f64 / (n as f64 * n as f64)
}

/// Exact average distance of the **undirected** `DG(d,k)` (the quantity
/// plotted in the paper's Figure 2) over all ordered pairs —
/// destination-major (`O(N²·d)` via one reverse-BFS column per
/// destination), falling back to the `O(N²·k²)` Theorem-2 pair sweep
/// when no `u64` rank space exists.
///
/// # Panics
///
/// Panics if `d^k` does not fit in `usize`.
pub fn exact_undirected(space: DeBruijn) -> f64 {
    exact_undirected_threads(space, 1)
}

/// [`exact_undirected`] with the all-pairs sweep evaluated
/// destination-major — one reverse-BFS column per destination instead of
/// `N` Theorem-2 solves — fanned out over `threads` scoped workers (1 =
/// inline, 0 = available parallelism). All partial totals are integers,
/// so the result is bit-identical for every thread count *and* to the
/// pair-by-pair Theorem-2 sweep (the fallback for spaces without a `u64`
/// rank space).
///
/// # Panics
///
/// Panics if `d^k` does not fit in `usize`.
pub fn exact_undirected_threads(space: DeBruijn, threads: usize) -> f64 {
    let n = order(space);
    let total = column_total(space, false, threads).unwrap_or_else(|| {
        let words: Vec<Word> = space.vertices().collect();
        debruijn_parallel::map_slice(threads, &words, |x| {
            words
                .iter()
                .map(|y| distance::undirected::distance(x, y) as u64)
                .sum::<u64>()
        })
        .into_iter()
        .sum()
    });
    total as f64 / (n as f64 * n as f64)
}

/// Exact average undirected distance computed with BFS from every vertex
/// over the materialized graph — an independent cross-check of
/// [`exact_undirected`] that never touches the distance formula.
///
/// # Panics
///
/// Panics if the graph cannot be materialized.
pub fn exact_undirected_bfs(space: DeBruijn) -> f64 {
    let graph = debruijn_graph::DebruijnGraph::undirected(space)
        .expect("space small enough to materialize");
    let n = graph.node_count();
    let mut total: u64 = 0;
    for v in graph.nodes() {
        for dist in debruijn_graph::bfs::distances(&graph, v) {
            assert_ne!(dist, debruijn_graph::bfs::UNREACHABLE);
            total += u64::from(dist);
        }
    }
    total as f64 / (n as f64 * n as f64)
}

/// Monte-Carlo estimate of the average distance over uniform ordered
/// pairs. Deterministic for a fixed seed. Works for spaces far too large
/// to enumerate (up to `u128` ranks).
///
/// # Panics
///
/// Panics if `samples == 0` or `d^k` overflows `u128`.
pub fn sampled(space: DeBruijn, directed: bool, samples: usize, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let n = space
        .order()
        .expect("rank sampling requires d^k to fit u128");
    let mut rng = SplitMix64::new(seed);
    let mut total: u64 = 0;
    for _ in 0..samples {
        let xr = rng.below_u128(n);
        let yr = rng.below_u128(n);
        let x = space.word_from_rank(xr).expect("sampled below order");
        let y = space.word_from_rank(yr).expect("sampled below order");
        total += if directed {
            distance::directed::distance(&x, &y) as u64
        } else {
            distance::undirected::distance(&x, &y) as u64
        };
    }
    total as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::directed_average_distance;

    fn space(d: u8, k: usize) -> DeBruijn {
        DeBruijn::new(d, k).unwrap()
    }

    #[test]
    fn exact_directed_dg22_is_nine_eighths() {
        assert!((exact_directed(space(2, 2)) - 1.125).abs() < 1e-12);
    }

    #[test]
    fn eq5_upper_bounds_exact_directed() {
        for (d, k) in [(2u8, 2usize), (2, 4), (2, 6), (3, 3), (4, 2), (5, 2)] {
            let exact = exact_directed(space(d, k));
            let formula = directed_average_distance(d, k);
            assert!(
                formula >= exact - 1e-12,
                "d={d} k={k}: formula {formula} < exact {exact}"
            );
            // The gap shrinks fast with d.
            assert!(
                formula - exact < 1.0 / (f64::from(d) - 1.0) + 0.1,
                "d={d} k={k}"
            );
        }
    }

    #[test]
    fn undirected_average_is_below_directed() {
        for (d, k) in [(2u8, 4usize), (3, 3)] {
            let s = space(d, k);
            assert!(exact_undirected(s) <= exact_directed(s) + 1e-12);
        }
    }

    #[test]
    fn formula_engine_and_bfs_engine_agree() {
        for (d, k) in [(2u8, 3usize), (2, 5), (3, 3), (4, 2)] {
            let s = space(d, k);
            let by_formula = exact_undirected(s);
            let by_bfs = exact_undirected_bfs(s);
            assert!(
                (by_formula - by_bfs).abs() < 1e-12,
                "d={d} k={k}: {by_formula} vs {by_bfs}"
            );
        }
    }

    #[test]
    fn column_totals_match_the_pair_by_pair_sweeps() {
        for (d, k) in [(2u8, 5usize), (3, 3), (4, 2), (5, 2)] {
            let s = space(d, k);
            let words: Vec<Word> = s.vertices().collect();
            for directed in [true, false] {
                let pairwise: u64 = words
                    .iter()
                    .flat_map(|x| {
                        words.iter().map(move |y| {
                            if directed {
                                distance::directed::distance(x, y) as u64
                            } else {
                                distance::undirected::distance(x, y) as u64
                            }
                        })
                    })
                    .sum();
                assert_eq!(
                    column_total(s, directed, 1),
                    Some(pairwise),
                    "d={d} k={k} directed={directed}"
                );
            }
        }
    }

    #[test]
    fn threaded_all_pairs_is_bit_identical_to_serial() {
        for (d, k) in [(2u8, 5usize), (3, 3)] {
            let s = space(d, k);
            assert_eq!(
                exact_undirected_threads(s, 1).to_bits(),
                exact_undirected_threads(s, 8).to_bits(),
                "undirected d={d} k={k}"
            );
            assert_eq!(
                exact_directed_threads(s, 1).to_bits(),
                exact_directed_threads(s, 8).to_bits(),
                "directed d={d} k={k}"
            );
        }
    }

    #[test]
    fn sampling_converges_to_exact() {
        let s = space(2, 5);
        let exact = exact_undirected(s);
        let est = sampled(s, false, 20_000, 99);
        assert!(
            (est - exact).abs() < 0.05,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = space(3, 3);
        assert_eq!(
            sampled(s, true, 500, 7).to_bits(),
            sampled(s, true, 500, 7).to_bits()
        );
    }

    #[test]
    fn sampling_works_beyond_enumeration() {
        // d = 2, k = 100: 2^100 vertices; only label algorithms survive.
        let s = space(2, 100);
        let est = sampled(s, false, 200, 1);
        assert!(est > 90.0 && est <= 100.0, "estimate {est}");
    }
}
