//! Least-squares fits for empirical complexity verification (E5).

/// Least-squares slope of `log(y)` against `log(x)`.
///
/// For timing data `(k, t(k))`, the slope estimates the exponent `p` in
/// `t = c·k^p`: ≈1 for the paper's linear Algorithms 1 and 4, ≈2 for
/// Algorithm 2.
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is not
/// strictly positive.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit a slope");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "log-log fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    slope(&logs)
}

/// Plain least-squares slope of `y` against `x`.
///
/// # Panics
///
/// Panics if fewer than two points are given or all `x` are equal.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit a slope");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values must not be constant");
    (n * sxy - sx * sy) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_slope() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_power_law_exponents() {
        for p in [1.0f64, 2.0, 3.0] {
            let pts: Vec<(f64, f64)> = (1..=20)
                .map(|i| (i as f64, 5.0 * (i as f64).powf(p)))
                .collect();
            assert!((log_log_slope(&pts) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn tolerates_noise() {
        let pts: Vec<(f64, f64)> = (1..=50)
            .map(|i| {
                let x = i as f64;
                let noise = 1.0 + 0.01 * ((i * 37 % 11) as f64 - 5.0) / 5.0;
                (x, 2.0 * x * x * noise)
            })
            .collect();
        let s = log_log_slope(&pts);
        assert!((s - 2.0).abs() < 0.05, "slope {s}");
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn rejects_non_positive_data() {
        log_log_slope(&[(1.0, 0.0), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        slope(&[(1.0, 1.0)]);
    }
}
