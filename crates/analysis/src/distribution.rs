//! Exact distance distributions over all ordered pairs.

use std::collections::BTreeMap;

use debruijn_core::{distance, DeBruijn, Word};

/// Which distance function a histogram is taken over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Property 1 distances (left shifts only).
    Directed,
    /// Theorem 2 distances (both shift types).
    Undirected,
}

/// Exact histogram `distance → number of ordered pairs` over all `N²`
/// pairs (including `X = Y` at distance 0).
///
/// The directed histogram is the distribution behind Eq. (5); the
/// undirected one is the distribution whose mean Figure 2 plots.
///
/// # Panics
///
/// Panics if `d^k` does not fit in `usize`.
pub fn distance_histogram(space: DeBruijn, orientation: Orientation) -> BTreeMap<usize, u64> {
    let words: Vec<Word> = space.vertices().collect();
    let mut hist = BTreeMap::new();
    for x in &words {
        for y in &words {
            let d = match orientation {
                Orientation::Directed => distance::directed::distance(x, y),
                Orientation::Undirected => distance::undirected::distance(x, y),
            };
            *hist.entry(d).or_insert(0) += 1;
        }
    }
    hist
}

/// Mean of a histogram produced by [`distance_histogram`].
pub fn histogram_mean(hist: &BTreeMap<usize, u64>) -> f64 {
    let total: u64 = hist.values().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: u64 = hist.iter().map(|(&d, &c)| d as u64 * c).sum();
    weighted as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::average;

    fn space(d: u8, k: usize) -> DeBruijn {
        DeBruijn::new(d, k).unwrap()
    }

    #[test]
    fn histogram_counts_all_pairs() {
        let s = space(2, 3);
        for o in [Orientation::Directed, Orientation::Undirected] {
            let h = distance_histogram(s, o);
            let total: u64 = h.values().sum();
            assert_eq!(total, 64);
        }
    }

    #[test]
    fn exactly_n_pairs_at_distance_zero() {
        let s = space(3, 2);
        let h = distance_histogram(s, Orientation::Undirected);
        assert_eq!(h.get(&0).copied(), Some(9));
    }

    #[test]
    fn directed_distribution_mean_matches_exact_average() {
        let s = space(2, 4);
        let h = distance_histogram(s, Orientation::Directed);
        assert!((histogram_mean(&h) - average::exact_directed(s)).abs() < 1e-12);
    }

    #[test]
    fn undirected_support_stops_at_diameter() {
        let s = space(2, 4);
        let h = distance_histogram(s, Orientation::Undirected);
        assert!(h.keys().all(|&d| d <= 4));
        assert!(h.contains_key(&4), "diameter pairs must exist");
    }

    #[test]
    fn directed_tail_matches_paper_counting() {
        // The number of ordered pairs at directed distance k−s is governed
        // by overlaps: exactly d^k · d^s ... verify the simplest claim:
        // pairs at distance ≤ j from a fixed x are at most d + d² + … + dʲ
        // + 1 reachable words, with equality in the tree-like prefix of
        // the BFS. Spot check: from 0001, exactly d words at distance 1.
        let s = space(2, 4);
        let h = distance_histogram(s, Orientation::Directed);
        // Σ_j count(j)·? — simplest: count(1) = number of (x,y) arcs = 2N − ...
        // each x has exactly d left-shifts, of which some coincide with x.
        // Total distance-1 pairs = Nd − (#self-loops) = Nd − d.
        let n = 16u64;
        assert_eq!(h.get(&1).copied(), Some(n * 2 - 2));
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(histogram_mean(&BTreeMap::new()), 0.0);
    }
}
