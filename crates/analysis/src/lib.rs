//! Experiment harness: average distances, distributions, fits and tables.
//!
//! This crate holds the computations behind the paper-reproduction
//! experiments (E1–E9 in DESIGN.md):
//!
//! * [`average`] — exact (all-pairs) and Monte-Carlo average distances for
//!   the directed and undirected graphs, the quantities behind Eq. (5)
//!   and Figure 2;
//! * [`distribution`] — exact distance histograms;
//! * [`fit`] — log-log scaling fits used to verify the `O(k)` / `O(k²)`
//!   complexity claims empirically;
//! * [`table`] — plain-text table/series rendering shared by the
//!   experiment benches so their output matches the paper's rows.
//!
//! # Example
//!
//! ```
//! use debruijn_analysis::average;
//! use debruijn_core::DeBruijn;
//!
//! let space = DeBruijn::new(2, 2)?;
//! // The exact directed average differs from the paper's Eq. (5): 9/8 vs 10/8.
//! let exact = average::exact_directed(space);
//! assert!((exact - 1.125).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod average;
pub mod distribution;
pub mod fit;
pub mod table;

pub use table::Table;
