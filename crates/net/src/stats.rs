//! Simulation statistics: hop counts, latency, link loads, and the
//! exact-value [`Histogram`] backing the observability layer.

use std::collections::BTreeMap;
use std::fmt;

/// An exact-value histogram over unsigned tick/count quantities.
///
/// The observed quantities (per-hop latencies, queue waits, queue
/// depths, hop counts) are small integers, so the histogram keeps one
/// bucket per distinct value in a `BTreeMap` — no binning, no loss.
/// Recording is `O(log distinct)`; all summary statistics are exact.
///
/// # Examples
///
/// ```
/// use debruijn_net::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 2, 3] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 2.0);
/// assert_eq!(h.percentile(50.0), Some(2));
/// assert_eq!(h.max(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(value).or_insert(0) += 1;
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Nearest-rank percentile: the smallest recorded value `v` such
    /// that at least `p`% of observations are `≤ v`. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must lie in [0, 100]"
        );
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&value, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// Population variance (exact, over the recorded multiset).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let acc: f64 = self
            .buckets
            .iter()
            .map(|(&v, &n)| n as f64 * (v as f64 - mean).powi(2))
            .sum();
        acc / self.count as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Iterates `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &n)| (v, n))
    }
}

impl fmt::Display for Histogram {
    /// Renders one `value  count  bar` row per bucket, bar scaled to
    /// the fullest bucket; empty histograms render as `(empty)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return writeln!(f, "  (empty)");
        }
        const BAR: usize = 40;
        let fullest = self.buckets.values().copied().max().expect("non-empty");
        for (&value, &n) in &self.buckets {
            let len = ((n as f64 / fullest as f64) * BAR as f64).ceil() as usize;
            writeln!(f, "  {value:>6}  {n:>8}  {}", "#".repeat(len))?;
        }
        Ok(())
    }
}

/// Aggregate result of one simulation run.
///
/// Produced by [`crate::Simulation::run`]. All times are in simulator
/// ticks; link keys are `(from_rank, to_rank)` word ranks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimReport {
    /// Messages injected (including ones dropped at the source).
    pub injected: usize,
    /// Messages accepted at their destination.
    pub delivered: usize,
    /// Messages lost to faults (at the source, in transit, or at a faulty
    /// destination).
    pub dropped: usize,
    /// Losses broken out by [`DropReason::name`](crate::DropReason::name)
    /// (kebab-case); the values sum to `dropped`.
    pub dropped_by_reason: BTreeMap<&'static str, u64>,
    /// `hops → number of delivered messages with that hop count`.
    pub hop_histogram: BTreeMap<usize, usize>,
    /// Total hops over all delivered messages.
    pub total_hops: u64,
    /// Sum of delivery latencies (delivery time − injection time).
    pub latency_total: u64,
    /// Maximum delivery latency.
    pub latency_max: u64,
    /// Time of the last delivery.
    pub makespan: u64,
    /// Messages carried per directed link.
    pub link_loads: BTreeMap<(u128, u128), u64>,
    /// Number of directed links the network offers (0 if unknown, e.g.
    /// when the space is too large to enumerate).
    pub total_links: usize,
    /// Longest time any message waited for a busy link.
    pub max_queue_wait: u64,
    /// Sum of all per-hop waiting times (queueing delay in the latency).
    pub total_queue_wait: u64,
}

/// Summary statistics of the per-link load distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLoadSummary {
    /// Links that carried at least one message.
    pub links_used: usize,
    /// Heaviest per-link load.
    pub max: u64,
    /// Mean load over all network links (unused links count as 0); over
    /// used links when the network size is unknown.
    pub mean: f64,
    /// Standard deviation on the same population as `mean`.
    pub std_dev: f64,
}

impl SimReport {
    /// Mean hops per delivered message.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.total_hops as f64 / self.delivered as f64
    }

    /// Mean delivery latency in ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.latency_total as f64 / self.delivered as f64
    }

    /// Delivered fraction of injected messages.
    pub fn delivery_rate(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }

    /// Largest hop count among delivered messages.
    pub fn max_hops(&self) -> usize {
        self.hop_histogram.keys().copied().max().unwrap_or(0)
    }

    /// Summarizes the link-load distribution (the E7 balance metric).
    pub fn link_load_summary(&self) -> LinkLoadSummary {
        let links_used = self.link_loads.len();
        let max = self.link_loads.values().copied().max().unwrap_or(0);
        let population = if self.total_links > 0 {
            self.total_links
        } else {
            links_used.max(1)
        };
        let sum: u64 = self.link_loads.values().sum();
        let mean = sum as f64 / population as f64;
        let mut var_acc: f64 = self
            .link_loads
            .values()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum();
        // Unused links contribute (0 − mean)² each.
        let zeros = population.saturating_sub(links_used);
        var_acc += zeros as f64 * mean * mean;
        let std_dev = (var_acc / population as f64).sqrt();
        LinkLoadSummary {
            links_used,
            max,
            mean,
            std_dev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_has_sane_defaults() {
        let r = SimReport::default();
        assert_eq!(r.mean_hops(), 0.0);
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.delivery_rate(), 1.0);
        assert_eq!(r.max_hops(), 0);
        let s = r.link_load_summary();
        assert_eq!(s.max, 0);
        assert_eq!(s.links_used, 0);
    }

    #[test]
    fn means_divide_by_delivered() {
        let r = SimReport {
            injected: 4,
            delivered: 2,
            dropped: 2,
            total_hops: 6,
            latency_total: 10,
            ..SimReport::default()
        };
        assert_eq!(r.mean_hops(), 3.0);
        assert_eq!(r.mean_latency(), 5.0);
        assert_eq!(r.delivery_rate(), 0.5);
    }

    #[test]
    fn link_summary_accounts_for_unused_links() {
        let mut r = SimReport {
            total_links: 4,
            ..SimReport::default()
        };
        r.link_loads.insert((0, 1), 4);
        r.link_loads.insert((1, 2), 4);
        let s = r.link_load_summary();
        assert_eq!(s.links_used, 2);
        assert_eq!(s.max, 4);
        assert!((s.mean - 2.0).abs() < 1e-12);
        // loads are [4, 4, 0, 0] → variance 4, std 2.
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }
}
