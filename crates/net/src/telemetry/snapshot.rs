//! Periodic in-flight summaries: `dbr simulate --progress N`.

use std::io;

use crate::record::{NetEvent, Recorder};
use crate::telemetry::Telemetry;

/// Wraps a [`Telemetry`] aggregator and prints one summary line every
/// `every` simulated ticks, so long runs report progress while still
/// in flight.
///
/// The snapshot clock follows *processed* events (forwards,
/// deliveries, drops, wildcard resolutions, reroutes), which the
/// simulator emits in non-decreasing time order; injection events are
/// aggregated but do not advance the clock, because the simulator
/// records all of them up front. A snapshot is emitted at the first
/// processed event whose time reaches the next `every`-tick boundary.
///
/// Write errors are sticky: after the first failure no further
/// snapshots are written (aggregation continues), and
/// [`SnapshotRecorder::finish`] reports the error.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::telemetry::SnapshotRecorder;
/// use debruijn_net::{workload, SimConfig, Simulation};
///
/// let space = DeBruijn::new(2, 5)?;
/// let sim = Simulation::new(space, SimConfig::default())?;
/// let traffic = workload::uniform_random(space, 400, 3);
/// let mut snap = SnapshotRecorder::new(50, Vec::new());
/// sim.run_recorded(&traffic, &mut snap);
/// let (telemetry, out) = snap.finish()?;
/// assert_eq!(telemetry.delivered, 400);
/// let text = String::from_utf8(out)?;
/// assert!(text.lines().count() >= 2, "several 50-tick boundaries passed");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SnapshotRecorder<W: io::Write> {
    telemetry: Telemetry,
    every: u64,
    next: u64,
    out: W,
    error: Option<io::Error>,
}

impl<W: io::Write> SnapshotRecorder<W> {
    /// Summarize every `every` ticks into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn new(every: u64, out: W) -> Self {
        assert!(every > 0, "snapshot interval must be positive");
        Self {
            telemetry: Telemetry::new(),
            every,
            next: every,
            out,
            error: None,
        }
    }

    /// The aggregation so far (readable mid-run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Returns the final telemetry and the writer, or the first write
    /// error.
    pub fn finish(mut self) -> io::Result<(Telemetry, W)> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok((self.telemetry, self.out))
    }

    fn emit(&mut self, time: u64) {
        if self.error.is_some() {
            return;
        }
        let t = &self.telemetry;
        let hottest = t
            .hottest_links()
            .first()
            .map(|&((from, to), stat)| {
                format!(
                    " | hottest {} -> {} ({})",
                    t.name_of(from),
                    t.name_of(to),
                    stat.forwarded
                )
            })
            .unwrap_or_default();
        let line = format!(
            "[t {time}] in flight {} | delivered {}/{} dropped {} | hops mean {:.3} p99 {} | latency p99 {}{hottest}",
            t.in_flight(),
            t.delivered,
            t.injected,
            t.dropped(),
            t.hops.mean(),
            t.hops.percentile(99.0).unwrap_or(0),
            t.latency.percentile(99.0).unwrap_or(0),
        );
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
        // Skip boundaries the stream jumped over.
        self.next = (time / self.every + 1) * self.every;
    }
}

impl<W: io::Write> Recorder for SnapshotRecorder<W> {
    fn record(&mut self, event: &NetEvent) {
        self.telemetry.record(event);
        if !matches!(event, NetEvent::Inject { .. }) && event.time() >= self.next {
            self.emit(event.time());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DropReason;
    use debruijn_core::Word;

    fn forward(time: u64, message: usize) -> NetEvent {
        let w = Word::parse(2, "0110").unwrap();
        NetEvent::Forward {
            time,
            message,
            hop: 0,
            from: w.clone(),
            to: w.shift_left(1),
            departs: time,
            arrives: time + 1,
            queue_wait: 0,
            queue_depth: 0,
        }
    }

    #[test]
    fn emits_once_per_boundary_and_skips_gaps() {
        let mut snap = SnapshotRecorder::new(10, Vec::new());
        snap.record(&forward(5, 0)); // before first boundary
        snap.record(&forward(10, 0)); // boundary 10
        snap.record(&forward(12, 0)); // same window: no line
        snap.record(&forward(47, 0)); // jumps windows 20..40: one line
        snap.record(&forward(50, 0)); // boundary 50
        let (_, out) = snap.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        let times: Vec<&str> = text.lines().map(|l| l.split(']').next().unwrap()).collect();
        assert_eq!(times, ["[t 10", "[t 47", "[t 50"], "{text}");
        assert!(text.contains("hottest"), "{text}");
    }

    #[test]
    fn injections_do_not_advance_the_clock() {
        let mut snap = SnapshotRecorder::new(5, Vec::new());
        let w = Word::parse(2, "0110").unwrap();
        for m in 0..100usize {
            snap.record(&NetEvent::Inject {
                time: m as u64,
                message: m,
                source: w.clone(),
                destination: w.shift_left(1),
                route_len: 1,
                shortest: 1,
            });
        }
        let (t, out) = snap.finish().unwrap();
        assert_eq!(t.injected, 100);
        assert!(out.is_empty(), "no processed events, no snapshots");
    }

    #[test]
    fn sticky_write_errors_stop_snapshots_not_aggregation() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("pipe closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut snap = SnapshotRecorder::new(1, Failing);
        snap.record(&forward(1, 0));
        snap.record(&forward(2, 0));
        snap.record(&NetEvent::Drop {
            time: 3,
            message: 0,
            reason: DropReason::DeadLink,
            at: Word::parse(2, "1011").unwrap(),
            upstream: None,
        });
        assert_eq!(snap.telemetry().dropped(), 1, "aggregation continued");
        assert!(snap.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_is_rejected() {
        let _ = SnapshotRecorder::new(0, Vec::new());
    }
}
