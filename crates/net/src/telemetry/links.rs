//! Per-link and per-node accumulators.
//!
//! The paper's §3 wildcard remark is a *per-link* statement: free `*`
//! positions let the network spread traffic so no single link melts.
//! The aggregate [`SimReport`](crate::stats::SimReport) only keeps a
//! load total per link; these accumulators add the queueing view
//! (high-water marks, waits, busy time) needed to read utilization and
//! balance off a run — live or from a JSONL trace.

/// Accumulated statistics of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStat {
    /// Messages handed to the link.
    pub forwarded: u64,
    /// Total ticks messages spent waiting for the link.
    pub queue_wait_total: u64,
    /// Most messages ever queued ahead at a handover (high-water mark).
    pub queue_depth_high_water: usize,
    /// Ticks the link was occupied (union of its `[departs, arrives)`
    /// transit intervals — exact because the event stream hands each
    /// link its forwards in FIFO order).
    pub busy: u64,
    /// End of the last busy interval (for the union computation).
    last_busy_end: u64,
}

impl LinkStat {
    /// Folds one forward (`departs`, `arrives`, `queue_wait`,
    /// `queue_depth`) into the accumulator.
    pub fn record_forward(
        &mut self,
        departs: u64,
        arrives: u64,
        queue_wait: u64,
        queue_depth: usize,
    ) {
        self.forwarded += 1;
        self.queue_wait_total += queue_wait;
        self.queue_depth_high_water = self.queue_depth_high_water.max(queue_depth);
        let start = departs.max(self.last_busy_end);
        self.busy += arrives.saturating_sub(start);
        self.last_busy_end = self.last_busy_end.max(arrives);
    }

    /// Fraction of `[0, horizon]` the link was occupied; 0 for an
    /// empty horizon.
    pub fn utilization(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy as f64 / horizon as f64
    }

    /// Mean ticks a message waited for this link.
    pub fn mean_queue_wait(&self) -> f64 {
        if self.forwarded == 0 {
            return 0.0;
        }
        self.queue_wait_total as f64 / self.forwarded as f64
    }
}

/// Accumulated statistics of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStat {
    /// Messages injected with this node as source.
    pub injected: u64,
    /// Messages this node handed to an outgoing link.
    pub forwarded: u64,
    /// Messages accepted here (this node was the destination).
    pub delivered: u64,
    /// Messages lost while resident at this node.
    pub dropped: u64,
    /// Wildcard `*` steps this node resolved.
    pub wildcards: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_is_the_union_of_transit_intervals() {
        let mut s = LinkStat::default();
        // Two overlapping transits (pipelined propagation) and one
        // disjoint: union is [0,3) ∪ [10,12) = 5 ticks, not 2+2+2.
        s.record_forward(0, 2, 0, 0);
        s.record_forward(1, 3, 1, 1);
        s.record_forward(10, 12, 0, 0);
        assert_eq!(s.busy, 5);
        assert_eq!(s.forwarded, 3);
        assert_eq!(s.queue_wait_total, 1);
        assert_eq!(s.queue_depth_high_water, 1);
        assert!((s.utilization(20) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
        assert!((s.mean_queue_wait() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LinkStat::default();
        assert_eq!(s.mean_queue_wait(), 0.0);
        assert_eq!(s.utilization(100), 0.0);
        let n = NodeStat::default();
        assert_eq!(
            n.injected + n.forwarded + n.delivered + n.dropped + n.wildcards,
            0
        );
    }
}
