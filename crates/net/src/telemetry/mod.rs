//! Bounded-memory telemetry over the [`Recorder`] event stream.
//!
//! The recorder layer in [`record`](crate::record) makes every
//! simulator action visible; this module makes a
//! *multi-million-message* run measurable without the memory growing
//! with traffic:
//!
//! * [`LogHistogram`] — `O(1)`-record log-bucketed histogram with
//!   ≤ 0.8% quantile error (vs the exact but unbounded
//!   [`Histogram`](crate::stats::Histogram));
//! * [`Telemetry`] — a recorder aggregating
//!   log-bucketed distributions plus per-link and per-node
//!   accumulators ([`LinkStat`], [`NodeStat`]): utilization,
//!   queue-depth high-water marks, forwarded/dropped counts — the
//!   per-link view the paper's wildcard-balancing remark calls for;
//! * [`SnapshotRecorder`] — wraps [`Telemetry`] and prints an
//!   in-flight summary every N simulated ticks
//!   (`dbr simulate --progress N`);
//! * [`ChromeTraceRecorder`] — exports the event stream in Chrome
//!   trace-event JSON (Perfetto/`chrome://tracing` compatible), one
//!   track per node (`dbr simulate --chrome-trace`, `dbr trace
//!   export`).
//!
//! All state is bounded by the *network* (links, nodes, in-flight
//! messages), never by the number of events recorded. See
//! `docs/OBSERVABILITY.md` for the CLI surface and
//! `docs/adr/0002-exact-vs-log-bucketed-histograms.md` for the
//! histogram trade-off.

mod chrome;
mod links;
mod loghist;
mod snapshot;

pub use chrome::ChromeTraceRecorder;
pub use links::{LinkStat, NodeStat};
pub use loghist::LogHistogram;
pub use snapshot::SnapshotRecorder;

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::record::{NetEvent, Recorder};

/// Bounded-memory aggregation of one event stream: log-bucketed
/// distributions, counters, and per-link/per-node accumulators.
///
/// Memory is `O(links + nodes + in-flight messages)`, independent of
/// how many events are recorded; every [`Telemetry::record`] is
/// `O(1)` (amortized — map entries are created once per link/node).
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::telemetry::Telemetry;
/// use debruijn_net::{workload, SimConfig, Simulation};
///
/// let space = DeBruijn::new(2, 5)?;
/// let sim = Simulation::new(space, SimConfig::default())?;
/// let traffic = workload::uniform_random(space, 500, 3);
/// let mut t = Telemetry::new();
/// let report = sim.run_recorded(&traffic, &mut t);
/// assert_eq!(t.delivered, report.delivered as u64);
/// assert_eq!(t.hops.count(), 500);
/// assert_eq!(t.in_flight(), 0);
/// // Per-link loads sum to the total hop count.
/// let forwards: u64 = t.links.values().map(|l| l.forwarded).sum();
/// assert_eq!(forwards, report.total_hops);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Messages that entered the network.
    pub injected: u64,
    /// Messages accepted at their destination.
    pub delivered: u64,
    /// Messages lost, by [`DropReason::name`](crate::DropReason::name).
    pub drops_by_reason: BTreeMap<&'static str, u64>,
    /// Fault-avoiding route computations.
    pub reroutes: u64,
    /// Wildcard resolutions by substituted digit.
    pub wildcard_by_digit: BTreeMap<u8, u64>,
    /// Hops per delivered message.
    pub hops: LogHistogram,
    /// `hops − D(X,Y)` per delivered message.
    pub stretch: LogHistogram,
    /// End-to-end delivery latency in ticks.
    pub latency: LogHistogram,
    /// Per-hop latency (handover to arrival).
    pub per_hop_latency: LogHistogram,
    /// Ticks each forward waited for a busy link.
    pub queue_wait: LogHistogram,
    /// Messages queued ahead at each handover.
    pub queue_depth: LogHistogram,
    /// Per-directed-link accumulators, keyed by `(from, to)` word
    /// ranks.
    pub links: BTreeMap<(u128, u128), LinkStat>,
    /// Per-node accumulators, keyed by word rank.
    pub nodes: BTreeMap<u128, NodeStat>,
    /// Largest event time seen (the makespan so far).
    pub last_time: u64,
    /// Display forms of every rank seen (for rendering tables).
    names: BTreeMap<u128, String>,
    /// Current node of each live message (for attributing terminal
    /// events to nodes). Entries are removed on deliver/drop.
    locations: HashMap<usize, u128>,
}

impl Telemetry {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages lost.
    pub fn dropped(&self) -> u64 {
        self.drops_by_reason.values().sum()
    }

    /// Messages injected but not yet delivered or dropped.
    pub fn in_flight(&self) -> u64 {
        self.injected - self.delivered - self.dropped()
    }

    /// Total wildcard resolutions.
    pub fn wildcards_resolved(&self) -> u64 {
        self.wildcard_by_digit.values().sum()
    }

    /// Display form of a recorded rank (`?` if never seen).
    pub fn name_of(&self, rank: u128) -> &str {
        self.names.get(&rank).map_or("?", String::as_str)
    }

    /// Links sorted by descending forwarded count, heaviest first.
    pub fn hottest_links(&self) -> Vec<((u128, u128), LinkStat)> {
        let mut v: Vec<_> = self.links.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by(|a, b| b.1.forwarded.cmp(&a.1.forwarded).then(a.0.cmp(&b.0)));
        v
    }

    /// Max/mean ratio of per-link forwarded counts over *used* links —
    /// 1.0 is perfectly balanced. Returns `None` before any forward.
    pub fn link_imbalance(&self) -> Option<f64> {
        if self.links.is_empty() {
            return None;
        }
        let max = self.links.values().map(|l| l.forwarded).max()? as f64;
        let total: u64 = self.links.values().map(|l| l.forwarded).sum();
        let mean = total as f64 / self.links.len() as f64;
        Some(max / mean)
    }

    fn remember(&mut self, rank: u128, word: &debruijn_core::Word) {
        self.names.entry(rank).or_insert_with(|| word.to_string());
    }

    fn touch(&mut self, time: u64) {
        self.last_time = self.last_time.max(time);
    }
}

impl Recorder for Telemetry {
    fn record(&mut self, event: &NetEvent) {
        match event {
            NetEvent::Inject {
                message,
                source,
                destination,
                ..
            } => {
                self.injected += 1;
                let src = source.rank();
                self.remember(src, source);
                self.remember(destination.rank(), destination);
                self.nodes.entry(src).or_default().injected += 1;
                self.locations.insert(*message, src);
                // Injections are recorded up front, before the event
                // loop runs; they do not advance the clock.
            }
            NetEvent::WildcardResolved {
                time, at, digit, ..
            } => {
                let rank = at.rank();
                self.remember(rank, at);
                self.nodes.entry(rank).or_default().wildcards += 1;
                *self.wildcard_by_digit.entry(*digit).or_insert(0) += 1;
                self.touch(*time);
            }
            NetEvent::Forward {
                time,
                message,
                from,
                to,
                departs,
                arrives,
                queue_wait,
                queue_depth,
                ..
            } => {
                self.per_hop_latency.record(arrives - time);
                self.queue_wait.record(*queue_wait);
                self.queue_depth.record(*queue_depth as u64);
                let (f, t) = (from.rank(), to.rank());
                self.remember(f, from);
                self.remember(t, to);
                self.links.entry((f, t)).or_default().record_forward(
                    *departs,
                    *arrives,
                    *queue_wait,
                    *queue_depth,
                );
                self.nodes.entry(f).or_default().forwarded += 1;
                self.locations.insert(*message, t);
                self.touch(*arrives);
            }
            NetEvent::Reroute { time, .. } => {
                self.reroutes += 1;
                self.touch(*time);
            }
            NetEvent::Deliver {
                time,
                message,
                hops,
                latency,
                shortest,
            } => {
                self.delivered += 1;
                self.hops.record(*hops as u64);
                self.stretch.record(hops.saturating_sub(*shortest) as u64);
                self.latency.record(*latency);
                if let Some(rank) = self.locations.remove(message) {
                    self.nodes.entry(rank).or_default().delivered += 1;
                }
                self.touch(*time);
            }
            NetEvent::Drop {
                time,
                message,
                reason,
                ..
            } => {
                *self.drops_by_reason.entry(reason.name()).or_insert(0) += 1;
                if let Some(rank) = self.locations.remove(message) {
                    self.nodes.entry(rank).or_default().dropped += 1;
                }
                self.touch(*time);
            }
        }
    }
}

impl fmt::Display for Telemetry {
    /// Renders the bounded-memory summary: counters, distribution
    /// one-liners, and the five hottest links.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "messages: {} injected, {} delivered, {} dropped, {} in flight",
            self.injected,
            self.delivered,
            self.dropped(),
            self.in_flight()
        )?;
        for (reason, n) in &self.drops_by_reason {
            writeln!(f, "  dropped ({reason}): {n}")?;
        }
        if self.reroutes > 0 {
            writeln!(f, "fault-avoiding reroutes: {}", self.reroutes)?;
        }
        writeln!(f, "hops:          {}", self.hops.summary())?;
        writeln!(f, "stretch:       {}", self.stretch.summary())?;
        writeln!(f, "latency:       {}", self.latency.summary())?;
        writeln!(f, "per-hop:       {}", self.per_hop_latency.summary())?;
        writeln!(f, "queue wait:    {}", self.queue_wait.summary())?;
        writeln!(f, "queue depth:   {}", self.queue_depth.summary())?;
        if !self.wildcard_by_digit.is_empty() {
            write!(f, "wildcards:     {} resolved (", self.wildcards_resolved())?;
            for (i, (digit, n)) in self.wildcard_by_digit.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "digit {digit}: {n}")?;
            }
            writeln!(f, ")")?;
        }
        if let Some(ratio) = self.link_imbalance() {
            writeln!(
                f,
                "links:         {} used, imbalance (max/mean load) {ratio:.3}",
                self.links.len()
            )?;
            for ((from, to), stat) in self.hottest_links().into_iter().take(5) {
                writeln!(
                    f,
                    "  {} -> {}: {} forwards, {:.1}% busy, queue high-water {}",
                    self.name_of(from),
                    self.name_of(to),
                    stat.forwarded,
                    stat.utilization(self.last_time) * 100.0,
                    stat.queue_depth_high_water
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DropReason;
    use crate::{workload, SimConfig, Simulation, WildcardPolicy};
    use debruijn_core::{DeBruijn, ShiftKind, Word};

    fn w(s: &str) -> Word {
        Word::parse(2, s).unwrap()
    }

    #[test]
    fn aggregates_a_handwritten_stream() {
        let mut t = Telemetry::new();
        t.record(&NetEvent::Inject {
            time: 0,
            message: 0,
            source: w("0110"),
            destination: w("1011"),
            route_len: 1,
            shortest: 1,
        });
        t.record(&NetEvent::WildcardResolved {
            time: 1,
            message: 0,
            at: w("0110"),
            shift: ShiftKind::Right,
            digit: 1,
            policy: WildcardPolicy::LeastLoaded,
        });
        t.record(&NetEvent::Forward {
            time: 0,
            message: 0,
            hop: 0,
            from: w("0110"),
            to: w("1011"),
            departs: 1,
            arrives: 3,
            queue_wait: 1,
            queue_depth: 1,
        });
        t.record(&NetEvent::Deliver {
            time: 3,
            message: 0,
            hops: 1,
            latency: 3,
            shortest: 1,
        });
        t.record(&NetEvent::Inject {
            time: 0,
            message: 1,
            source: w("0000"),
            destination: w("1011"),
            route_len: 3,
            shortest: 3,
        });
        t.record(&NetEvent::Drop {
            time: 5,
            message: 1,
            reason: DropReason::DeadLink,
            at: w("0000"),
            upstream: None,
        });

        assert_eq!(t.injected, 2);
        assert_eq!(t.delivered, 1);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.wildcards_resolved(), 1);
        assert_eq!(t.last_time, 5);
        let src = w("0110").rank();
        let dst = w("1011").rank();
        assert_eq!(t.nodes[&src].injected, 1);
        assert_eq!(t.nodes[&src].forwarded, 1);
        assert_eq!(t.nodes[&src].wildcards, 1);
        assert_eq!(t.nodes[&dst].delivered, 1);
        // Message 1 was dropped while still at its source.
        assert_eq!(t.nodes[&w("0000").rank()].dropped, 1);
        let link = t.links[&(src, dst)];
        assert_eq!(link.forwarded, 1);
        assert_eq!(link.queue_depth_high_water, 1);
        assert_eq!(t.name_of(src), "0110");
        assert_eq!(t.name_of(42_000), "?");
        assert_eq!(t.link_imbalance(), Some(1.0));
        let text = t.to_string();
        assert!(text.contains("0 in flight"), "{text}");
        assert!(text.contains("dropped (dead-link): 1"), "{text}");
        assert!(text.contains("0110 -> 1011"), "{text}");
    }

    #[test]
    fn agrees_with_the_exact_recorder_on_a_real_run() {
        let space = DeBruijn::new(2, 6).unwrap();
        let sim = Simulation::new(space, SimConfig::default()).unwrap();
        let traffic = workload::uniform_random(space, 2_000, 7);
        let mut exact = crate::record::InMemoryRecorder::new();
        let mut bounded = Telemetry::new();
        {
            let mut fan = crate::record::FanoutRecorder::new();
            fan.push(&mut exact);
            fan.push(&mut bounded);
            sim.run_recorded(&traffic, &mut fan);
        }
        assert_eq!(bounded.injected, exact.injected);
        assert_eq!(bounded.delivered, exact.delivered);
        assert_eq!(bounded.hops.count(), exact.hops.count());
        assert_eq!(bounded.hops.sum(), exact.hops.sum());
        // Hop counts are small integers: the log histogram is exact
        // there, so the quantiles agree perfectly.
        for p in [50.0, 90.0, 99.0] {
            assert_eq!(bounded.hops.percentile(p), exact.hops.percentile(p));
        }
        // Latencies may exceed the exact region; stay within the bound.
        for p in [50.0, 90.0, 99.0] {
            let e = exact.latency.percentile(p).unwrap() as f64;
            let b = bounded.latency.percentile(p).unwrap() as f64;
            assert!(
                (b - e).abs() <= e * LogHistogram::MAX_RELATIVE_ERROR,
                "p{p}: {b} vs {e}"
            );
        }
        assert_eq!(bounded.in_flight(), 0);
    }
}
