//! Bounded-memory log-bucketed histogram.
//!
//! The exact [`Histogram`](crate::stats::Histogram) keeps one
//! `BTreeMap` bucket per distinct value — perfect for the small
//! integers the simulator produces today, but its memory grows with
//! the number of distinct observations and every `record` pays a tree
//! walk. [`LogHistogram`] is the production-scale counterpart: a fixed
//! bucket layout (exact below 64, then 64 linear sub-buckets per
//! power of two), `O(1)` record via bit tricks, at most a few
//! thousand `u64` counters regardless of traffic, and quantiles
//! correct to well under 2% relative error. See
//! `docs/adr/0002-exact-vs-log-bucketed-histograms.md` for why both
//! exist.

use std::fmt;

/// Number of linear sub-buckets per power-of-two range, as a shift.
const SUB_BITS: u32 = 6;
/// Values below `SUB` (64) get one exact bucket each.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets needed to cover all of `u64`.
const MAX_BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize;

/// A log-bucketed histogram over `u64` observations with `O(1)` record
/// and bounded memory.
///
/// Layout: values `0..64` are exact; every range `[2^e, 2^(e+1))` for
/// `e ≥ 6` is split into 64 equal sub-buckets. A bucket of width `w`
/// starting at `lo ≥ 64·w` reports its midpoint, so any reported
/// value (and any quantile) is within `w/2 / lo ≤ 1/128 ≈ 0.8%` of the
/// truth — comfortably inside the documented
/// [`LogHistogram::MAX_RELATIVE_ERROR`]. `count`, `sum` (hence
/// `mean`), `min` and `max` are tracked exactly.
///
/// # Examples
///
/// ```
/// use debruijn_net::telemetry::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 0..1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.mean(), 499.5);
/// let p50 = h.percentile(50.0).unwrap() as f64;
/// assert!((p50 - 500.0).abs() / 500.0 <= LogHistogram::MAX_RELATIVE_ERROR);
/// assert_eq!(h.max(), Some(999));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogHistogram {
    /// Bucket counters, grown lazily up to [`MAX_BUCKETS`].
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Index of the bucket holding `v`.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        // e = floor(log2 v) >= SUB_BITS; the top SUB_BITS+1 bits of v
        // are in [SUB, 2*SUB) and select the sub-bucket.
        let e = 63 - v.leading_zeros();
        let sub = ((v >> (e - SUB_BITS)) - SUB) as usize;
        (e - SUB_BITS) as usize * SUB as usize + SUB as usize + sub
    }
}

/// Smallest value that lands in bucket `idx`.
#[inline]
fn lower_bound(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let m = idx - SUB as usize;
        let shift = (m / SUB as usize) as u32;
        let sub = (m % SUB as usize) as u64;
        (SUB + sub) << shift
    }
}

/// Width of bucket `idx` (1 in the exact region).
#[inline]
fn width(idx: usize) -> u64 {
    if idx < SUB as usize {
        1
    } else {
        1u64 << ((idx - SUB as usize) / SUB as usize)
    }
}

/// The midpoint reported for bucket `idx`.
#[inline]
fn representative(idx: usize) -> u64 {
    let w = width(idx);
    lower_bound(idx) + (w - 1) / 2
}

impl LogHistogram {
    /// Worst-case relative error of any reported quantile or bucket
    /// midpoint: `1/128`.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 128.0;

    /// An empty histogram. Allocates nothing until the first record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation. `O(1)`: a few bit operations and one
    /// array increment (plus at most one amortized `Vec` growth, capped
    /// at 3 776 slots ≈ 30 KiB).
    pub fn record(&mut self, value: u64) {
        let idx = index_of(value);
        debug_assert!(idx < MAX_BUCKETS);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Number of observations (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations (exact).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (exact: `sum` and `count` are not bucketed), or
    /// 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest observation (exact), `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (exact), `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank percentile, reported as the midpoint of the bucket
    /// holding the true rank-`⌈p/100·n⌉` value, clamped into
    /// `[min, max]`. Within [`LogHistogram::MAX_RELATIVE_ERROR`] of
    /// the exact answer; exact for values below 64, and exact at the
    /// rank edges (p0 is `min`, p100 is `max`). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must lie in [0, 100]"
        );
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        // The extreme ranks are tracked exactly; report them as such
        // rather than as bucket midpoints.
        if rank <= 1 {
            return Some(self.min);
        }
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= rank {
                return Some(representative(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Population variance over bucket midpoints (within the bucket
    /// error of the exact value; exact when all values are below 64).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let acc: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| n as f64 * (representative(idx) as f64 - mean).powi(2))
            .sum();
        acc / self.count as f64
    }

    /// Population standard deviation (same approximation as
    /// [`LogHistogram::variance`]).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Iterates non-empty buckets as `(lowest value, highest value,
    /// count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (lower_bound(idx), lower_bound(idx) + (width(idx) - 1), n))
    }

    /// Folds another histogram into this one (used when aggregating
    /// per-shard telemetry). Exact fields stay exact.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &n) in self.counts.iter_mut().zip(&other.counts) {
            *slot += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// One-line summary: `mean m, p50 a, p90 b, p99 c, max d`.
    pub fn summary(&self) -> String {
        format!(
            "mean {:.4}, p50 {}, p90 {}, p99 {}, max {}",
            self.mean(),
            self.percentile(50.0).unwrap_or(0),
            self.percentile(90.0).unwrap_or(0),
            self.percentile(99.0).unwrap_or(0),
            self.max().unwrap_or(0)
        )
    }
}

impl fmt::Display for LogHistogram {
    /// Renders one `lo..hi  count  bar` row per non-empty bucket, bar
    /// scaled to the fullest bucket; empty histograms render as
    /// `(empty)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return writeln!(f, "  (empty)");
        }
        const BAR: usize = 40;
        let fullest = self.counts.iter().copied().max().expect("non-empty");
        for (lo, hi, n) in self.iter() {
            let len = ((n as f64 / fullest as f64) * BAR as f64).ceil() as usize;
            let label = if lo == hi {
                lo.to_string()
            } else {
                format!("{lo}..{hi}")
            };
            writeln!(f, "  {label:>14}  {n:>8}  {}", "#".repeat(len))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's lower bound is the previous bucket's upper
        // bound + 1, and index_of inverts lower_bound.
        for idx in 0..MAX_BUCKETS {
            let lo = lower_bound(idx);
            assert_eq!(index_of(lo), idx, "lo {lo}");
            let hi = lo + (width(idx) - 1);
            assert_eq!(index_of(hi), idx, "hi {hi}");
            if idx + 1 < MAX_BUCKETS {
                assert_eq!(lower_bound(idx + 1), hi.wrapping_add(1));
            }
        }
        assert_eq!(index_of(u64::MAX), MAX_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let rank = ((p / 100.0) * SUB as f64).ceil().max(1.0) as u64 - 1;
            assert_eq!(h.percentile(p), Some(rank), "p{p}");
        }
        assert_eq!(h.mean(), (SUB - 1) as f64 / 2.0);
    }

    #[test]
    fn extremes_are_tracked_exactly() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.count(), 2);
        // The reported p100 is clamped to the exact max.
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
        assert_eq!(h.percentile(0.0), Some(0));
    }

    #[test]
    fn quantiles_stay_within_the_error_bound() {
        // Geometric sweep over 20 octaves: every reported percentile
        // is within MAX_RELATIVE_ERROR of a value actually recorded in
        // that bucket.
        let mut h = LogHistogram::new();
        let mut v = 1u64;
        let mut values = Vec::new();
        while v < (1 << 20) {
            h.record(v);
            values.push(v);
            v = v * 21 / 16 + 1;
        }
        values.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize - 1;
            let exact = values[rank] as f64;
            let approx = h.percentile(p).unwrap() as f64;
            assert!(
                (approx - exact).abs() <= exact * LogHistogram::MAX_RELATIVE_ERROR,
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in [3u64, 70, 1_000_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 500, 1 << 40] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        a.merge(&LogHistogram::new());
        assert_eq!(a, whole);
    }

    #[test]
    fn display_renders_ranges() {
        let mut h = LogHistogram::new();
        assert!(h.to_string().contains("(empty)"));
        h.record(5);
        h.record(10_000);
        let text = h.to_string();
        assert!(text.contains("  5"), "{text}");
        assert!(text.contains(".."), "{text}");
    }
}
