//! Chrome trace-event export: inspect a run in Perfetto.
//!
//! Emits the [trace-event JSON array format] consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>: one *thread*
//! track per network node, a complete (`"X"`) span on the sending
//! node's track for every queue wait and every link transit, and a
//! nestable async (`"b"`/`"e"`) span per message covering its whole
//! inject→deliver/drop lifetime. Simulator ticks map 1:1 to
//! microseconds, the format's base unit.
//!
//! [trace-event JSON array format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Addresses are digit strings (optionally dot-separated), so no JSON
//! string escaping is ever needed.

use std::collections::HashMap;
use std::io;

use crate::record::{NetEvent, Recorder};

/// Streams [`NetEvent`]s as a Chrome trace-event JSON array.
///
/// Drive it live (`dbr simulate --chrome-trace FILE`) or offline from
/// a JSONL trace (`dbr trace export IN OUT`); both produce the same
/// file for the same run. Write errors are sticky: recording stops at
/// the first failure and [`ChromeTraceRecorder::finish`] reports it.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::telemetry::ChromeTraceRecorder;
/// use debruijn_net::{workload, SimConfig, Simulation};
///
/// let space = DeBruijn::new(2, 4)?;
/// let sim = Simulation::new(space, SimConfig::default())?;
/// let traffic = workload::uniform_random(space, 20, 1);
/// let mut chrome = ChromeTraceRecorder::new(Vec::new());
/// sim.run_recorded(&traffic, &mut chrome);
/// let json = String::from_utf8(chrome.finish()?)?;
/// assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
/// assert!(json.contains("\"thread_name\""));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ChromeTraceRecorder<W: io::Write> {
    out: W,
    error: Option<io::Error>,
    wrote_any: bool,
    /// Compact sequential track id per node rank.
    tids: HashMap<u128, u64>,
    /// Lifetime-span label per live message (`"src -> dst"`).
    labels: HashMap<usize, String>,
    events: u64,
}

impl<W: io::Write> ChromeTraceRecorder<W> {
    /// Wraps a writer. Consider a `BufWriter` for file sinks.
    pub fn new(out: W) -> Self {
        Self {
            out,
            error: None,
            wrote_any: false,
            tids: HashMap::new(),
            labels: HashMap::new(),
            events: 0,
        }
    }

    /// Trace records emitted so far (spans + metadata).
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Terminates the JSON array, flushes, and returns the writer, or
    /// the first write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !self.wrote_any {
            self.out.write_all(b"[")?;
        }
        self.out.write_all(b"\n]\n")?;
        self.out.flush()?;
        Ok(self.out)
    }

    fn emit(&mut self, record: &str) {
        if self.error.is_some() {
            return;
        }
        let lead: &[u8] = if self.wrote_any { b",\n" } else { b"[\n" };
        self.wrote_any = true;
        self.events += 1;
        if let Err(e) = self
            .out
            .write_all(lead)
            .and_then(|()| self.out.write_all(record.as_bytes()))
        {
            self.error = Some(e);
        }
    }

    /// Track id for a node, emitting its `thread_name` metadata record
    /// on first sight.
    fn tid(&mut self, word: &debruijn_core::Word) -> u64 {
        let rank = word.rank();
        if let Some(&tid) = self.tids.get(&rank) {
            return tid;
        }
        let tid = self.tids.len() as u64;
        self.tids.insert(rank, tid);
        self.emit(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"node {word}\"}}}}"
        ));
        tid
    }
}

impl<W: io::Write> Recorder for ChromeTraceRecorder<W> {
    fn enabled(&self) -> bool {
        self.error.is_none()
    }

    fn record(&mut self, event: &NetEvent) {
        if self.error.is_some() {
            return;
        }
        match event {
            NetEvent::Inject {
                time,
                message,
                source,
                destination,
                route_len,
                shortest,
            } => {
                let tid = self.tid(source);
                let label = format!("{source} -> {destination}");
                self.emit(&format!(
                    "{{\"name\":\"msg {message} {label}\",\"cat\":\"message\",\"ph\":\"b\",\
                     \"id\":{message},\"ts\":{time},\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"route_len\":{route_len},\"shortest\":{shortest}}}}}"
                ));
                self.labels.insert(*message, label);
            }
            NetEvent::WildcardResolved {
                time,
                message,
                at,
                digit,
                policy,
                ..
            } => {
                let tid = self.tid(at);
                self.emit(&format!(
                    "{{\"name\":\"wildcard\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\
                     \"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"message\":{message},\"digit\":{digit},\"policy\":\"{}\"}}}}",
                    policy.name()
                ));
            }
            NetEvent::Forward {
                time,
                message,
                hop,
                from,
                to,
                departs,
                arrives,
                queue_wait,
                ..
            } => {
                let tid = self.tid(from);
                if queue_wait > &0 {
                    self.emit(&format!(
                        "{{\"name\":\"queue\",\"cat\":\"hop\",\"ph\":\"X\",\"ts\":{time},\
                         \"dur\":{queue_wait},\"pid\":0,\"tid\":{tid},\
                         \"args\":{{\"message\":{message},\"hop\":{hop}}}}}"
                    ));
                }
                self.emit(&format!(
                    "{{\"name\":\"transit\",\"cat\":\"hop\",\"ph\":\"X\",\"ts\":{departs},\
                     \"dur\":{},\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"message\":{message},\"hop\":{hop},\"to\":\"{to}\"}}}}",
                    arrives - departs
                ));
            }
            NetEvent::Reroute { time, message, at } => {
                let tid = self.tid(at);
                self.emit(&format!(
                    "{{\"name\":\"reroute\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{time},\
                     \"pid\":0,\"tid\":{tid},\"args\":{{\"message\":{message}}}}}"
                ));
            }
            NetEvent::Deliver {
                time,
                message,
                hops,
                latency,
                ..
            } => {
                let label = self.labels.remove(message).unwrap_or_default();
                self.emit(&format!(
                    "{{\"name\":\"msg {message} {label}\",\"cat\":\"message\",\"ph\":\"e\",\
                     \"id\":{message},\"ts\":{time},\"pid\":0,\"tid\":0,\
                     \"args\":{{\"hops\":{hops},\"latency\":{latency}}}}}"
                ));
            }
            NetEvent::Drop {
                time,
                message,
                reason,
                ..
            } => {
                let label = self.labels.remove(message).unwrap_or_default();
                self.emit(&format!(
                    "{{\"name\":\"msg {message} {label}\",\"cat\":\"message\",\"ph\":\"e\",\
                     \"id\":{message},\"ts\":{time},\"pid\":0,\"tid\":0,\
                     \"args\":{{\"dropped\":\"{}\"}}}}",
                    reason.name()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DropReason;
    use debruijn_core::Word;

    fn w(s: &str) -> Word {
        Word::parse(2, s).unwrap()
    }

    #[test]
    fn produces_a_json_array_with_tracks_and_spans() {
        let mut c = ChromeTraceRecorder::new(Vec::new());
        c.record(&NetEvent::Inject {
            time: 0,
            message: 0,
            source: w("0110"),
            destination: w("1011"),
            route_len: 1,
            shortest: 1,
        });
        c.record(&NetEvent::Forward {
            time: 0,
            message: 0,
            hop: 0,
            from: w("0110"),
            to: w("1011"),
            departs: 2,
            arrives: 4,
            queue_wait: 2,
            queue_depth: 1,
        });
        c.record(&NetEvent::Deliver {
            time: 4,
            message: 0,
            hops: 1,
            latency: 4,
            shortest: 1,
        });
        c.record(&NetEvent::Drop {
            time: 9,
            message: 1,
            reason: DropReason::NoRoute,
            at: w("1011"),
            upstream: Some(w("0110")),
        });
        let n = c.events_written();
        let text = String::from_utf8(c.finish().unwrap()).unwrap();
        // thread_name metadata for the source node, async b/e pair,
        // queue + transit X spans, drop end.
        assert!(n >= 6, "{n}: {text}");
        assert!(text.starts_with("[\n{"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"name\":\"node 0110\""), "{text}");
        assert!(text.contains("\"ph\":\"b\""), "{text}");
        assert!(text.contains("\"ph\":\"e\""), "{text}");
        assert!(text.contains("\"name\":\"queue\""), "{text}");
        assert!(
            text.contains("\"name\":\"transit\",\"cat\":\"hop\",\"ph\":\"X\",\"ts\":2,\"dur\":2"),
            "{text}"
        );
        assert!(text.contains("\"dropped\":\"no-route\""), "{text}");
        // Balanced braces and brackets (cheap well-formedness check).
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_trace_is_still_a_valid_array() {
        let c = ChromeTraceRecorder::new(Vec::new());
        let text = String::from_utf8(c.finish().unwrap()).unwrap();
        assert_eq!(text, "[\n]\n");
    }

    #[test]
    fn sticky_write_errors_disable_the_sink() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut c = ChromeTraceRecorder::new(Failing);
        assert!(c.enabled());
        c.record(&NetEvent::Drop {
            time: 0,
            message: 0,
            reason: DropReason::NoRoute,
            at: Word::parse(2, "0110").unwrap(),
            upstream: None,
        });
        assert!(!c.enabled());
        assert!(c.finish().is_err());
    }
}
