//! Identifying-code monitors: network-wide fault localization from
//! per-node telemetry alone.
//!
//! The fault-injection machinery can break a node and the
//! flight-recorder can capture the resulting drop burst, but neither
//! says *which* node broke. This module closes the loop using the
//! identifying-code theory retrieved for the de Bruijn family
//! ([`debruijn_graph::identifying`], after Boutin/Horan/Pelto
//! arXiv:1412.5842 and Horan arXiv:1508.00403):
//!
//! 1. [`MonitorSet`] — a [`Recorder`] placed on a vertex code `C`.
//!    Each monitor folds the ingress telemetry it can see locally into
//!    a graded anomaly count: drops of messages it forwarded downstream
//!    (the drop's `upstream` attribution), drops at the node itself
//!    (the self bit, from the drop's `at` holder), and optionally
//!    queue-depth breaches attributed to the transmitting node. The
//!    set [subscribes](Recorder::wants) only to drop events (plus
//!    forwards when queue attribution is on), so the engines skip
//!    constructing the hot-path event flood entirely and monitoring
//!    costs next to nothing over an unmonitored run.
//! 2. The *observed signature* is the set of monitors whose count
//!    reached the threshold. Because a fault at `v` is visible exactly
//!    to the monitors in its closed in-ball `B⁻[v]`, a 1-identifying
//!    code makes the signature of every single-node fault unique.
//! 3. [`Localizer`] — decodes an observed signature back to the
//!    faulted node: [`Verdict::Exact`] when the signature matches one
//!    node's expected signature, [`Verdict::Ranked`] candidates under
//!    noise or partial observation, [`Verdict::Clean`] when nothing
//!    fired.
//!
//! [`MonitorSet::export`] publishes the `dbr_monitor_*` registry
//! families (placement size, signature bits, decode verdicts, decode
//! latency) and [`MonitorSet::dump_evidence`] writes the retained
//! anomaly window as a flight-recorder-style JSONL dump on decode.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;
use std::time::Instant;

use debruijn_core::Word;
use debruijn_graph::identifying::{self, IdentifyError};
use debruijn_graph::DebruijnGraph;

use crate::metrics::MetricsRegistry;
use crate::record::{DropReason, EventClass, NetEvent, Recorder};

/// How many retained anomaly events [`MonitorSet::dump_evidence`] can
/// write (oldest evicted first).
pub const EVIDENCE_CAPACITY: usize = 4096;

/// Which vertices carry monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// A verified 1-identifying code (the minimal-overhead placement
    /// that still localizes any single fault exactly).
    Identifying,
    /// Every vertex (the exhaustive baseline).
    All,
}

impl Placement {
    /// Stable name used in CLI flags and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Identifying => "identifying",
            Placement::All => "all",
        }
    }
}

/// What a monitor observed, by attribution rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnomalyKind {
    /// A message this monitor forwarded downstream was dropped at the
    /// receiving node (the upstream bit of the in-ball).
    UpstreamDrop,
    /// A drop at the monitor's own node (the self bit: faulty source,
    /// arrival at a faulty node, or a local no-route/dead-link/TTL
    /// loss).
    SelfDrop,
    /// A handover whose link queue depth reached the configured limit,
    /// attributed to the transmitting node.
    QueueBreach,
}

const ANOMALY_KINDS: usize = 3;

impl AnomalyKind {
    fn index(self) -> usize {
        match self {
            AnomalyKind::UpstreamDrop => 0,
            AnomalyKind::SelfDrop => 1,
            AnomalyKind::QueueBreach => 2,
        }
    }

    fn name(i: usize) -> &'static str {
        ["upstream-drop", "self-drop", "queue-breach"][i]
    }
}

/// Tuning knobs for [`MonitorSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Graded anomaly count a monitor needs before its signature bit is
    /// considered set. 1 = any anomaly flags the bit.
    pub threshold: u64,
    /// Flag the transmitting node when a handover sees this many
    /// messages already queued. `None` (default) disables queue
    /// attribution, keeping signatures deterministic under load.
    pub queue_depth_limit: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            threshold: 1,
            queue_depth_limit: None,
        }
    }
}

/// One flagged monitor in an observed signature: the evidence row the
/// localizer decodes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReading {
    /// The monitor's vertex.
    pub node: Word,
    /// Total graded anomalies.
    pub total: u64,
    /// Counts by attribution rule, labelled.
    pub by_kind: Vec<(&'static str, u64)>,
}

/// Monitors placed on a vertex code, fed by the simulator's event
/// stream (directly as a [`Recorder`], or by replaying a saved trace).
pub struct MonitorSet {
    graph: DebruijnGraph,
    placement: Placement,
    config: MonitorConfig,
    /// node rank -> dense monitor slot, or `None` off the code.
    slot_of: Vec<Option<u32>>,
    /// monitor slot -> node rank (sorted by rank).
    monitors: Vec<u32>,
    /// Graded anomaly counts per slot and kind.
    counts: Vec<[u64; ANOMALY_KINDS]>,
    /// The anomalous events behind the flags, for the post-decode dump.
    evidence: VecDeque<NetEvent>,
}

impl MonitorSet {
    /// Monitors on a verified 1-identifying code of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`IdentifyError::Twins`] when the graph is not
    /// 1-identifiable (e.g. undirected `DG(2,2)`).
    pub fn identifying(graph: DebruijnGraph) -> Result<Self, IdentifyError> {
        let code = identifying::identifying_code(&graph)?;
        Ok(Self::on_code(graph, Placement::Identifying, code))
    }

    /// Monitors on every vertex: the exhaustive baseline placement.
    pub fn all(graph: DebruijnGraph) -> Self {
        let code: Vec<u32> = graph.nodes().collect();
        Self::on_code(graph, Placement::All, code)
    }

    fn on_code(graph: DebruijnGraph, placement: Placement, code: Vec<u32>) -> Self {
        let mut slot_of = vec![None; graph.node_count()];
        for (slot, &rank) in code.iter().enumerate() {
            slot_of[rank as usize] = Some(slot as u32);
        }
        let counts = vec![[0; ANOMALY_KINDS]; code.len()];
        Self {
            graph,
            placement,
            config: MonitorConfig::default(),
            slot_of,
            monitors: code,
            counts,
            evidence: VecDeque::new(),
        }
    }

    /// Replaces the default [`MonitorConfig`]. Apply before handing
    /// the set to an engine: the queue limit widens the event
    /// [subscription](Recorder::wants), which engines snapshot once
    /// per run.
    pub fn with_config(mut self, config: MonitorConfig) -> Self {
        self.config = config;
        self
    }

    /// The placement strategy in force.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The monitored graph.
    pub fn graph(&self) -> &DebruijnGraph {
        &self.graph
    }

    /// The monitor vertices (sorted ranks).
    pub fn monitors(&self) -> &[u32] {
        &self.monitors
    }

    /// The observed signature: ranks of monitors whose graded count
    /// reached the threshold, sorted.
    pub fn observed(&self) -> Vec<u32> {
        self.monitors
            .iter()
            .zip(&self.counts)
            .filter(|(_, c)| c.iter().sum::<u64>() >= self.config.threshold)
            .map(|(&rank, _)| rank)
            .collect()
    }

    /// Evidence rows for every flagged monitor, in rank order.
    pub fn readings(&self) -> Vec<MonitorReading> {
        self.monitors
            .iter()
            .zip(&self.counts)
            .filter(|(_, c)| c.iter().sum::<u64>() >= self.config.threshold)
            .map(|(&rank, counts)| MonitorReading {
                node: self.graph.word_of(rank),
                total: counts.iter().sum(),
                by_kind: counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| (AnomalyKind::name(i), n))
                    .collect(),
            })
            .collect()
    }

    /// Decodes the observed signature (see [`Localizer::decode`]).
    pub fn localize(&self) -> Verdict {
        Localizer::new(&self.graph, &self.monitors).decode(&self.observed())
    }

    /// Publishes the `dbr_monitor_*` families into `registry`:
    /// placement gauges, per-monitor signature bits (flagged monitors
    /// only — the families stay sparse), the decode verdict counter and
    /// the decode latency histogram.
    pub fn export(&self, registry: &MetricsRegistry) -> Verdict {
        registry
            .gauge_with(
                "dbr_monitor_nodes",
                "Vertices carrying monitors, by placement strategy.",
                &[("placement", self.placement.name())],
            )
            .set(self.monitors.len() as i64);
        for reading in self.readings() {
            let node = reading.node.to_string();
            registry
                .gauge_with(
                    "dbr_monitor_signature_bits",
                    "Graded anomaly count per flagged monitor (signature bit when >= threshold).",
                    &[("monitor", &node)],
                )
                .set(reading.total as i64);
        }
        let start = Instant::now();
        let verdict = self.localize();
        let elapsed = start.elapsed().as_nanos() as u64;
        registry
            .counter_with(
                "dbr_monitor_decode_total",
                "Signature decodes by verdict.",
                &[("verdict", verdict.name())],
            )
            .inc();
        registry
            .histogram_with(
                "dbr_monitor_decode_latency_ns",
                "Wall-clock nanoseconds per signature decode.",
                &[],
            )
            .observe(elapsed);
        verdict
    }

    /// Writes the retained anomaly window (the events behind the
    /// flags, oldest first, capped at [`EVIDENCE_CAPACITY`]) as a
    /// flight-recorder-style JSONL dump — one
    /// [`render_json`](crate::record::render_json) line per event,
    /// replayable by `dbr trace` and
    /// [`parse_event`](crate::record::parse_event).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn dump_evidence(&self, path: &Path) -> io::Result<()> {
        let mut out = io::BufWriter::new(std::fs::File::create(path)?);
        for event in &self.evidence {
            writeln!(out, "{}", crate::record::render_json(event))?;
        }
        out.flush()
    }

    /// Number of retained evidence events.
    pub fn evidence_len(&self) -> usize {
        self.evidence.len()
    }

    fn flag(&mut self, rank: u32, kind: AnomalyKind) -> bool {
        match self.slot_of[rank as usize] {
            Some(slot) => {
                self.counts[slot as usize][kind.index()] += 1;
                true
            }
            None => false,
        }
    }

    fn retain_evidence(&mut self, event: &NetEvent) {
        if self.evidence.len() == EVIDENCE_CAPACITY {
            self.evidence.pop_front();
        }
        self.evidence.push_back(event.clone());
    }

    fn rank(&self, word: &Word) -> u32 {
        self.graph.rank_of(word)
    }
}

impl Recorder for MonitorSet {
    /// Drops always; forwards only when queue attribution is on. The
    /// engines snapshot these answers and skip constructing every
    /// other event class, which is what keeps monitored runs at
    /// monitors-off speed.
    fn wants(&self, class: EventClass) -> bool {
        match class {
            EventClass::Drop => true,
            EventClass::Forward => self.config.queue_depth_limit.is_some(),
            _ => false,
        }
    }

    fn record(&mut self, event: &NetEvent) {
        match event {
            NetEvent::Forward {
                from, queue_depth, ..
            } => {
                if let Some(limit) = self.config.queue_depth_limit {
                    let from = self.rank(from);
                    if *queue_depth >= limit && self.flag(from, AnomalyKind::QueueBreach) {
                        self.retain_evidence(event);
                    }
                }
            }
            NetEvent::Drop {
                reason,
                at,
                upstream,
                ..
            } => {
                // The self bit: a monitor on the failing node itself
                // sees the loss (watchdog semantics). The drop's
                // holder pins it for every reason.
                let mut flagged = self.flag(self.rank(at), AnomalyKind::SelfDrop);
                // The upstream bit: the node that forwarded the
                // message into the failure observes the drop of its
                // own downstream traffic. Together with the self bit
                // this trips exactly the closed in-ball of the faulty
                // node.
                if *reason == DropReason::FaultyNode {
                    if let Some(upstream) = upstream {
                        flagged |= self.flag(self.rank(upstream), AnomalyKind::UpstreamDrop);
                    }
                }
                if flagged {
                    self.retain_evidence(event);
                }
            }
            NetEvent::Inject { .. }
            | NetEvent::Deliver { .. }
            | NetEvent::WildcardResolved { .. }
            | NetEvent::Reroute { .. } => {}
        }
    }
}

/// How confidently a signature decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No monitor flagged: no fault observed.
    Clean,
    /// The signature matches exactly one node's expected signature —
    /// with a verified identifying code this is guaranteed for any
    /// single fault whose ball traffic was observed.
    Exact {
        /// The localized faulty node.
        node: Word,
    },
    /// Noisy or partial signature: candidates ranked best-first.
    Ranked {
        /// Candidate nodes, best match first.
        candidates: Vec<Candidate>,
    },
}

impl Verdict {
    /// Stable name used in metric labels and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Exact { .. } => "exact",
            Verdict::Ranked { .. } => "ranked",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Clean => write!(f, "clean — no monitor flagged"),
            Verdict::Exact { node } => write!(f, "exact — faulty node {node}"),
            Verdict::Ranked { candidates } => {
                write!(f, "ranked — {} candidate(s)", candidates.len())?;
                if let Some(best) = candidates.first() {
                    write!(f, ", best {}", best.node)?;
                }
                Ok(())
            }
        }
    }
}

/// One ranked decode candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The candidate faulty node.
    pub node: Word,
    /// Flagged monitors inside the candidate's expected signature.
    pub matched: usize,
    /// Symmetric difference between observed and expected signatures
    /// (0 = perfect match).
    pub mismatch: usize,
}

/// Decodes observed monitor signatures back to faulted nodes.
///
/// Holds the expected-signature table `σ(v) = B⁻[v] ∩ C` for every
/// vertex; [`decode`](Self::decode) compares an observation against it.
pub struct Localizer<'a> {
    graph: &'a DebruijnGraph,
    is_monitor: Vec<bool>,
}

impl<'a> Localizer<'a> {
    /// A localizer for monitors on `code` over `graph`.
    pub fn new(graph: &'a DebruijnGraph, code: &[u32]) -> Self {
        let mut is_monitor = vec![false; graph.node_count()];
        for &c in code {
            is_monitor[c as usize] = true;
        }
        Self { graph, is_monitor }
    }

    /// The expected signature of a fault at `node`, sorted.
    pub fn expected(&self, node: u32) -> Vec<u32> {
        identifying::closed_in_ball(self.graph, node)
            .into_iter()
            .filter(|&u| self.is_monitor[u as usize])
            .collect()
    }

    /// Decodes a sorted observed signature.
    ///
    /// Candidates are the nodes whose ball contains at least one
    /// flagged monitor (every other node is unobservable from the
    /// evidence). [`Verdict::Exact`] requires a unique candidate whose
    /// expected signature equals the observation; otherwise candidates
    /// are ranked by matched bits (desc), then symmetric-difference
    /// size (asc), then rank.
    pub fn decode(&self, observed: &[u32]) -> Verdict {
        if observed.is_empty() {
            return Verdict::Clean;
        }
        // A monitor M lies in B⁻[v] iff v = M or v is a successor of M.
        let mut candidates: Vec<u32> = observed
            .iter()
            .flat_map(|&m| std::iter::once(m).chain(self.successors(m)))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut scored: Vec<(Candidate, u32)> = candidates
            .into_iter()
            .map(|v| {
                let expected = self.expected(v);
                let matched = intersection_size(&expected, observed);
                let mismatch = expected.len() + observed.len() - 2 * matched;
                (
                    Candidate {
                        node: self.graph.word_of(v),
                        matched,
                        mismatch,
                    },
                    v,
                )
            })
            .collect();
        scored.sort_by(|(a, va), (b, vb)| {
            b.matched
                .cmp(&a.matched)
                .then(a.mismatch.cmp(&b.mismatch))
                .then(va.cmp(vb))
        });

        let perfect: Vec<&(Candidate, u32)> =
            scored.iter().filter(|(c, _)| c.mismatch == 0).collect();
        if perfect.len() == 1 {
            return Verdict::Exact {
                node: perfect[0].0.node.clone(),
            };
        }
        Verdict::Ranked {
            candidates: scored.into_iter().map(|(c, _)| c).collect(),
        }
    }

    /// Out-neighbours of `m` under the graph's ball convention: CSR
    /// successors (they equal the undirected neighbours on the
    /// undirected graph, and left shifts on the directed one).
    fn successors(&self, m: u32) -> Vec<u32> {
        self.graph.neighbors(m).to_vec()
    }
}

fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Drives a saved trace (or any event sequence) through a
/// [`MonitorSet`] and returns it primed for decoding. Convenience for
/// `dbr localize` and tests.
pub fn replay<'a>(
    mut monitors: MonitorSet,
    events: impl IntoIterator<Item = &'a NetEvent>,
) -> MonitorSet {
    for event in events {
        monitors.record(event);
    }
    monitors
}

pub use crate::metrics::numbered_path;

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::DeBruijn;

    fn undirected(d: u8, k: usize) -> DebruijnGraph {
        DebruijnGraph::undirected(DeBruijn::new(d, k).unwrap()).unwrap()
    }

    fn directed(d: u8, k: usize) -> DebruijnGraph {
        DebruijnGraph::directed(DeBruijn::new(d, k).unwrap()).unwrap()
    }

    /// The synthetic event stream of a fault at `f`: one message
    /// forwarded `u -> f` and dropped there per in-neighbour `u`, plus
    /// one message originating (and dying) at `f` itself.
    fn fault_stream(graph: &DebruijnGraph, f: u32) -> Vec<NetEvent> {
        let fw = graph.word_of(f);
        let mut events = Vec::new();
        let ball = identifying::closed_in_ball(graph, f);
        let mut message = 0usize;
        for &u in ball.iter().filter(|&&u| u != f) {
            let uw = graph.word_of(u);
            events.push(NetEvent::Inject {
                time: 0,
                message,
                source: uw.clone(),
                destination: fw.clone(),
                route_len: 1,
                shortest: 1,
            });
            events.push(NetEvent::Forward {
                time: 1,
                message,
                hop: 0,
                from: uw.clone(),
                to: fw.clone(),
                departs: 1,
                arrives: 2,
                queue_wait: 0,
                queue_depth: 0,
            });
            events.push(NetEvent::Drop {
                time: 2,
                message,
                reason: DropReason::FaultyNode,
                at: fw.clone(),
                upstream: Some(uw),
            });
            message += 1;
        }
        events.push(NetEvent::Inject {
            time: 3,
            message,
            source: fw.clone(),
            destination: fw.clone(),
            route_len: 0,
            shortest: 0,
        });
        events.push(NetEvent::Drop {
            time: 3,
            message,
            reason: DropReason::FaultySource,
            at: fw,
            upstream: None,
        });
        events
    }

    /// The acceptance sweep: on DG(2,k), k ≤ 10, directed and
    /// undirected, every single injected fault decodes exactly from
    /// the monitor signature alone.
    #[test]
    fn every_single_fault_localizes_exactly_dg2k() {
        for k in 3..=10 {
            for graph in [directed(2, k), undirected(2, k)] {
                let template = MonitorSet::identifying(graph.clone()).unwrap();
                let code = template.monitors().to_vec();
                for f in graph.nodes() {
                    let monitors = replay(
                        MonitorSet::on_code(graph.clone(), Placement::Identifying, code.clone()),
                        &fault_stream(&graph, f),
                    );
                    let verdict = monitors.localize();
                    assert_eq!(
                        verdict,
                        Verdict::Exact {
                            node: graph.word_of(f)
                        },
                        "k={k} mode={:?} fault={f}",
                        graph.mode()
                    );
                }
            }
        }
    }

    #[test]
    fn observed_signature_is_the_closed_in_ball_intersection() {
        let graph = directed(2, 6);
        let monitors = MonitorSet::identifying(graph.clone()).unwrap();
        let code = monitors.monitors().to_vec();
        for f in [0u32, 17, 40, 63] {
            let set = replay(
                MonitorSet::on_code(graph.clone(), Placement::Identifying, code.clone()),
                &fault_stream(&graph, f),
            );
            let expected: Vec<u32> = identifying::closed_in_ball(&graph, f)
                .into_iter()
                .filter(|u| code.binary_search(u).is_ok())
                .collect();
            assert_eq!(set.observed(), expected, "fault {f}");
        }
    }

    #[test]
    fn all_placement_also_localizes_exactly() {
        let graph = undirected(2, 5);
        for f in [3u32, 12, 31] {
            let monitors = replay(MonitorSet::all(graph.clone()), &fault_stream(&graph, f));
            assert_eq!(
                monitors.localize(),
                Verdict::Exact {
                    node: graph.word_of(f)
                }
            );
        }
    }

    #[test]
    fn clean_runs_decode_clean() {
        let graph = undirected(2, 4);
        let monitors = MonitorSet::identifying(graph).unwrap();
        assert_eq!(monitors.localize(), Verdict::Clean);
        assert_eq!(monitors.observed(), Vec::<u32>::new());
    }

    #[test]
    fn partial_signatures_rank_the_true_fault_first() {
        let graph = undirected(2, 6);
        let monitors = MonitorSet::identifying(graph.clone()).unwrap();
        let code = monitors.monitors().to_vec();
        let f = 23u32;
        // Drop the stream's first in-ball witness: the signature is now
        // a strict subset, so the decode degrades to a ranked verdict
        // (or stays exact if the remainder is still unique).
        let mut events = fault_stream(&graph, f);
        events.drain(0..3);
        let set = replay(
            MonitorSet::on_code(graph.clone(), Placement::Identifying, code),
            &events,
        );
        match set.localize() {
            Verdict::Exact { node } => assert_eq!(node, graph.word_of(f)),
            Verdict::Ranked { candidates } => {
                assert_eq!(candidates[0].node, graph.word_of(f), "true fault not first");
            }
            Verdict::Clean => panic!("signature lost entirely"),
        }
    }

    #[test]
    fn healthy_traffic_leaves_monitors_clean() {
        let graph = undirected(2, 4);
        let mut monitors = MonitorSet::identifying(graph.clone()).unwrap();
        let x = graph.word_of(1);
        let y = graph.word_of(2);
        monitors.record(&NetEvent::Inject {
            time: 0,
            message: 9,
            source: x.clone(),
            destination: y.clone(),
            route_len: 1,
            shortest: 1,
        });
        monitors.record(&NetEvent::Forward {
            time: 1,
            message: 9,
            hop: 0,
            from: x,
            to: y,
            departs: 1,
            arrives: 2,
            queue_wait: 0,
            queue_depth: 0,
        });
        monitors.record(&NetEvent::Deliver {
            time: 2,
            message: 9,
            hops: 1,
            latency: 2,
            shortest: 1,
        });
        assert_eq!(monitors.evidence_len(), 0);
        assert_eq!(monitors.localize(), Verdict::Clean);
    }

    /// The subscription contract behind the overhead gate: by default a
    /// monitor set asks only for drops, so the engines never construct
    /// the hot-path inject/forward/deliver events; queue attribution
    /// widens it to forwards.
    #[test]
    fn monitors_subscribe_to_drops_only_unless_queue_attribution_is_on() {
        let graph = undirected(2, 4);
        let monitors = MonitorSet::identifying(graph.clone()).unwrap();
        assert!(monitors.enabled());
        assert!(monitors.wants(EventClass::Drop));
        for class in [
            EventClass::Inject,
            EventClass::Wildcard,
            EventClass::Forward,
            EventClass::Reroute,
            EventClass::Deliver,
        ] {
            assert!(!monitors.wants(class), "{class:?}");
        }
        let with_queue = MonitorSet::all(graph).with_config(MonitorConfig {
            threshold: 1,
            queue_depth_limit: Some(4),
        });
        assert!(with_queue.wants(EventClass::Drop));
        assert!(with_queue.wants(EventClass::Forward));
        assert!(!with_queue.wants(EventClass::Deliver));
    }

    #[test]
    fn queue_breaches_attribute_to_the_transmitter_when_enabled() {
        let graph = undirected(2, 4);
        let config = MonitorConfig {
            threshold: 1,
            queue_depth_limit: Some(2),
        };
        let mut monitors = MonitorSet::all(graph.clone()).with_config(config);
        let from = graph.word_of(5);
        let to = graph.word_of(10);
        monitors.record(&NetEvent::Forward {
            time: 0,
            message: 0,
            hop: 0,
            from: from.clone(),
            to,
            departs: 0,
            arrives: 1,
            queue_wait: 0,
            queue_depth: 3,
        });
        assert_eq!(monitors.observed(), vec![graph.rank_of(&from)]);
        let readings = monitors.readings();
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].by_kind, vec![("queue-breach", 1)]);
        assert_eq!(monitors.evidence_len(), 1);
    }

    #[test]
    fn threshold_gates_the_signature_bits() {
        let graph = undirected(2, 5);
        let code = MonitorSet::identifying(graph.clone())
            .unwrap()
            .monitors()
            .to_vec();
        let f = 11u32;
        // Each upstream witness fires once; the faulty node's own bit
        // accumulates one self-drop per lost message. A threshold of 2
        // therefore gates out every bit except the self bit...
        let monitors = replay(
            MonitorSet::on_code(graph.clone(), Placement::Identifying, code.clone()).with_config(
                MonitorConfig {
                    threshold: 2,
                    queue_depth_limit: None,
                },
            ),
            &fault_stream(&graph, f),
        );
        let self_bit: Vec<u32> = [f]
            .into_iter()
            .filter(|v| code.binary_search(v).is_ok())
            .collect();
        assert_eq!(monitors.observed(), self_bit);
        // ...and an unreachable threshold blanks the signature.
        let stream = fault_stream(&graph, f);
        let monitors = replay(
            MonitorSet::on_code(graph, Placement::Identifying, code).with_config(MonitorConfig {
                threshold: 1_000,
                queue_depth_limit: None,
            }),
            &stream,
        );
        assert_eq!(monitors.localize(), Verdict::Clean);
    }

    #[test]
    fn export_publishes_the_monitor_families() {
        let graph = undirected(2, 5);
        let set = replay(
            MonitorSet::identifying(graph.clone()).unwrap(),
            &fault_stream(&graph, 7),
        );
        let registry = MetricsRegistry::new();
        let verdict = set.export(&registry);
        assert!(matches!(verdict, Verdict::Exact { .. }));
        let text = registry.snapshot().render();
        assert!(
            text.contains("dbr_monitor_nodes{placement=\"identifying\"}"),
            "{text}"
        );
        assert!(
            text.contains("dbr_monitor_signature_bits{monitor="),
            "{text}"
        );
        assert!(
            text.contains("dbr_monitor_decode_total{verdict=\"exact\"} 1"),
            "{text}"
        );
        assert!(text.contains("dbr_monitor_decode_latency_ns"), "{text}");
    }

    #[test]
    fn evidence_dump_round_trips_through_the_trace_parser() {
        let dir = std::env::temp_dir().join(format!("dbr-monitor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evidence.jsonl");
        let graph = undirected(2, 5);
        let set = replay(
            MonitorSet::identifying(graph.clone()).unwrap(),
            &fault_stream(&graph, 19),
        );
        assert!(set.evidence_len() > 0);
        set.dump_evidence(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), set.evidence_len());
        for line in text.lines() {
            crate::record::parse_event(2, line).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evidence_window_is_bounded() {
        let graph = undirected(2, 4);
        let mut monitors = MonitorSet::all(graph.clone());
        let f = graph.word_of(3);
        for message in 0..EVIDENCE_CAPACITY + 10 {
            monitors.record(&NetEvent::Inject {
                time: 0,
                message,
                source: f.clone(),
                destination: f.clone(),
                route_len: 0,
                shortest: 0,
            });
            monitors.record(&NetEvent::Drop {
                time: 1,
                message,
                reason: DropReason::FaultySource,
                at: f.clone(),
                upstream: None,
            });
        }
        assert_eq!(monitors.evidence_len(), EVIDENCE_CAPACITY);
    }

    /// End-to-end sweep on the sharded simulator: for every possible
    /// faulty node, inject one message from each in-ball witness (plus
    /// background traffic), run the real engine with the fault, and
    /// demand an exact verdict from the monitor signature alone —
    /// directed balls under Algorithm 1, undirected under Algorithm 2.
    #[test]
    fn sharded_sim_fault_sweep_localizes_every_node_dg26() {
        use crate::sim::{Injection, SimConfig};
        let space = DeBruijn::new(2, 6).unwrap();
        for (router, graph) in [
            (crate::RouterKind::Algorithm1, directed(2, 6)),
            (crate::RouterKind::Algorithm2, undirected(2, 6)),
        ] {
            let code = MonitorSet::identifying(graph.clone())
                .unwrap()
                .monitors()
                .to_vec();
            let background = crate::workload::uniform_random(space, 40, 99);
            for f in graph.nodes() {
                let fw = graph.word_of(f);
                let mut traffic: Vec<Injection> = identifying::closed_in_ball(&graph, f)
                    .into_iter()
                    .filter(|&u| u != f)
                    .map(|u| Injection {
                        time: 0,
                        source: graph.word_of(u),
                        destination: fw.clone(),
                    })
                    .collect();
                traffic.push(Injection {
                    time: 0,
                    source: fw.clone(),
                    destination: graph.word_of((f + 1) % graph.node_count() as u32),
                });
                traffic.extend(background.iter().cloned());
                let config = SimConfig {
                    router,
                    ..SimConfig::default()
                };
                let mut monitors =
                    MonitorSet::on_code(graph.clone(), Placement::Identifying, code.clone());
                let sim = crate::shard::ShardedSimulation::new(space, config, 2)
                    .unwrap()
                    .with_faults(vec![fw.clone()])
                    .unwrap();
                sim.run_recorded(&traffic, &mut monitors);
                assert_eq!(
                    monitors.localize(),
                    Verdict::Exact { node: fw },
                    "router={router:?} fault={f}"
                );
            }
        }
    }
}
