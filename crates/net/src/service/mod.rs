//! Thread-per-core query service: the layer that turns the fast
//! routing engine into a fast system.
//!
//! The paper's `O(k)` route construction (Algorithm 1 / Theorem 2) and
//! `O(1)` per-hop forwarding make a high-QPS distance/route service
//! feasible; this module supplies the serving substrate, std-only:
//!
//! * **Two planes.** Connection threads ([`QueryService`]) do blocking
//!   HTTP/1.1 keep-alive protocol work; compute workers
//!   ([`Dispatcher`]) own the routing state. Queries — not connections
//!   — are what shards: each query hops to the worker its
//!   *destination* hashes to, so cache locality survives any
//!   connection-to-thread assignment.
//! * **Sharded route cache.** One clock-eviction
//!   [`RouteCache`](debruijn_core::routing::RouteCache) per worker,
//!   exclusively owned — zero shared locks on the hot path. The
//!   deterministic [`destination_shard`](debruijn_core::routing::destination_shard)
//!   map keeps repeat traffic on the shard that already holds its
//!   route.
//! * **Batching.** Workers drain up to [`ServiceConfig::batch`] queued
//!   queries per condvar wakeup and answer them through reused
//!   [`RoutingScratch`](debruijn_core::routing::RoutingScratch)
//!   buffers, amortizing wakeups and metrics publication.
//! * **Admission control.** Per-worker queues are bounded
//!   ([`ServiceConfig::max_inflight`]); overflow is shed immediately
//!   with `503` + `Retry-After` and counted in
//!   `dbr_service_shed_total`, keeping latency bounded under overload.
//!   A queue-depth flight-recorder trigger can freeze the pre-overload
//!   event window for post-mortems.
//!
//! Responses are byte-identical to the single-threaded direct engine
//! answers at any worker count — [`answer_query_direct`] is the
//! reference the tests hold the service to. Design rationale (vs an
//! async runtime, vs one shared cache) is recorded in
//! `docs/adr/0008-thread-per-core-service.md`; the operator-facing
//! walkthrough lives in `docs/OBSERVABILITY.md`.

mod query;
mod server;
mod worker;

pub use query::{
    answer_batch_cached, answer_query_cached, answer_query_direct, parse_query, BatchAnswerState,
    Query, QueryError, QueryKind,
};
pub use server::QueryService;
pub use worker::{Dispatcher, Job, ServiceConfig};
