//! The query grammar of the service plane: parsing `/distance` and
//! `/route` targets into typed [`Query`] values and answering them.
//!
//! Two answer paths exist on purpose:
//!
//! * [`answer_query_cached`] — the production path: per-worker
//!   [`RouteCache`] for undirected queries (the expensive Theorem-2
//!   solves), allocation-free Algorithm 1 for directed ones.
//! * [`answer_query_direct`] — the reference path with no cache and no
//!   reused buffers.
//!
//! The two must agree byte for byte for every query; the e2e tests
//! assert exactly that, which is what makes the service's worker count
//! and shard layout invisible to clients.

use debruijn_core::batch::{route_batch_into, BatchScratch};
use debruijn_core::distance::undirected::Engine;
use debruijn_core::routing::{
    self, algorithm1_into, route_with_engine_into, RouteCache, RoutePath, RoutingScratch,
};
use debruijn_core::{distance, Word};

/// Which endpoint a query arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `GET /distance` — answer is the distance followed by a newline.
    Distance,
    /// `GET /route` — answer is the two-line `dbr route` report.
    Route,
}

impl QueryKind {
    /// The metrics label for this endpoint (`distance` / `route`).
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Distance => "distance",
            QueryKind::Route => "route",
        }
    }
}

/// One validated route/distance query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The endpoint.
    pub kind: QueryKind,
    /// Source address.
    pub x: Word,
    /// Destination address.
    pub y: Word,
    /// Uni-directional network (`directed=1|true`) instead of the
    /// default bi-directional one.
    pub directed: bool,
}

/// A rejected query: a stable kebab-case `kind` (bounded label set for
/// `dbr_service_errors_total`) plus a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// One of `missing-param`, `bad-address`, `length-mismatch`.
    pub kind: &'static str,
    /// What exactly was wrong, for the JSON error body.
    pub detail: String,
}

impl QueryError {
    fn new(kind: &'static str, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

/// Parses the query string of a `/distance` or `/route` request into a
/// [`Query`] over radix-`d` words.
///
/// Grammar: `x=WORD&y=WORD[&directed=1|true]`. Both words must parse in
/// radix `d` and have equal length.
///
/// # Errors
///
/// [`QueryError`] with kind `missing-param` (no `x` or `y`),
/// `bad-address` (a word that does not parse in radix `d`), or
/// `length-mismatch` (`x` and `y` of different lengths).
///
/// # Examples
///
/// ```
/// use debruijn_net::service::{parse_query, QueryKind};
///
/// let q = parse_query(2, QueryKind::Route, "x=0110&y=1011").unwrap();
/// assert_eq!(q.x.to_string(), "0110");
/// assert!(!q.directed);
/// assert_eq!(parse_query(2, QueryKind::Route, "x=0110").unwrap_err().kind, "missing-param");
/// assert_eq!(parse_query(2, QueryKind::Route, "x=012&y=000").unwrap_err().kind, "bad-address");
/// ```
pub fn parse_query(d: u8, kind: QueryKind, query: &str) -> Result<Query, QueryError> {
    let param = |key: &str| {
        query.split('&').find_map(|kv| {
            kv.split_once('=')
                .filter(|(k, _)| *k == key)
                .map(|(_, v)| v)
        })
    };
    let x = param("x")
        .ok_or_else(|| QueryError::new("missing-param", "missing query parameter 'x'"))?;
    let y = param("y")
        .ok_or_else(|| QueryError::new("missing-param", "missing query parameter 'y'"))?;
    let directed = matches!(param("directed"), Some("1" | "true"));
    let x = Word::parse(d, x).map_err(|e| QueryError::new("bad-address", format!("bad X: {e}")))?;
    let y = Word::parse(d, y).map_err(|e| QueryError::new("bad-address", format!("bad Y: {e}")))?;
    if !x.same_space(&y) {
        return Err(QueryError::new(
            "length-mismatch",
            "X and Y must have the same length",
        ));
    }
    Ok(Query {
        kind,
        x,
        y,
        directed,
    })
}

/// Formats the response body for a distance answer.
fn distance_body(dist: usize) -> String {
    format!("{dist}\n")
}

/// Formats the response body for a route answer (the same two lines
/// `dbr route` prints).
fn route_body(route: &RoutePath) -> String {
    format!("distance: {}\nroute:    {route}\n", route.len())
}

/// Answers `query` through a worker's private state: `cache` memoizes
/// the bi-directional Theorem-2 solves (a hit is one `Vec` clone), and
/// directed queries run Algorithm 1 allocation-free through `scratch`
/// and `path_buf`.
///
/// Undirected `/distance` is served from the cached route's length —
/// valid because every route the library computes has length equal to
/// the exact graph distance — so distance traffic warms the route cache
/// and vice versa.
pub fn answer_query_cached(
    query: &Query,
    cache: &mut RouteCache,
    scratch: &mut RoutingScratch,
    path_buf: &mut RoutePath,
) -> String {
    if query.directed {
        // O(k) and allocation-free: not worth a cache slot.
        algorithm1_into(&query.x, &query.y, scratch, path_buf);
        return match query.kind {
            QueryKind::Distance => distance_body(path_buf.len()),
            QueryKind::Route => route_body(path_buf),
        };
    }
    let route = cache.get_or_compute(&query.x, &query.y, |x, y| {
        let mut out = RoutePath::empty();
        route_with_engine_into(x, y, Engine::Auto, &mut out);
        out
    });
    match query.kind {
        QueryKind::Distance => distance_body(route.len()),
        QueryKind::Route => route_body(&route),
    }
}

/// Reusable buffers for [`answer_batch_cached`]: the batched kernel's
/// scratch, the grouped evaluation inputs, and the per-query precomputed
/// routes. One per worker.
#[derive(Debug, Default)]
pub struct BatchAnswerState {
    scratch: BatchScratch,
    routes: Vec<RoutePath>,
    group_pairs: Vec<(Word, Word)>,
    group_of: Vec<usize>,
    slots: Vec<Option<RoutePath>>,
}

impl BatchAnswerState {
    /// Creates an empty state; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Answers one drained batch of queries through the destination-major
/// batched kernel, byte-identically to calling [`answer_query_cached`] on
/// each query in order — including the cache's hit/miss/eviction
/// counters.
///
/// * Directed queries bypass the cache (as in the scalar path) and are
///   evaluated destination-grouped in one [`route_batch_into`] call.
/// * Undirected queries run in two passes: pass 1 [`RouteCache::peek`]s
///   each one (no stat mutation) and computes the predicted misses
///   destination-grouped; pass 2 performs the authoritative
///   [`RouteCache::get_or_compute`] lookups in original arrival order,
///   handing over the precomputed routes. The cache therefore observes
///   the exact same lookup sequence — and the same computed bytes, since
///   the batched kernel replays the scalar engine's sweep — as the
///   per-query path. (A pass-1 prediction can be stale when an earlier
///   insert in the same batch evicts a peeked entry; the closure then
///   recomputes scalar, which yields the same bytes.)
///
/// `out[i]` receives the response body for `queries[i]`.
pub fn answer_batch_cached(
    queries: &[&Query],
    cache: &mut RouteCache,
    st: &mut BatchAnswerState,
    out: &mut Vec<String>,
) {
    out.clear();
    out.resize(queries.len(), String::new());

    // Directed queries: grouped Algorithm 1, no cache involvement.
    st.group_pairs.clear();
    st.group_of.clear();
    for (i, q) in queries.iter().enumerate() {
        if q.directed {
            st.group_pairs.push((q.x.clone(), q.y.clone()));
            st.group_of.push(i);
        }
    }
    if !st.group_pairs.is_empty() {
        route_batch_into(
            &st.group_pairs,
            true,
            Engine::Auto,
            &mut st.scratch,
            &mut st.routes,
        );
        for (pos, &i) in st.group_of.iter().enumerate() {
            out[i] = match queries[i].kind {
                QueryKind::Distance => distance_body(st.routes[pos].len()),
                QueryKind::Route => route_body(&st.routes[pos]),
            };
        }
    }

    // Undirected, pass 1: destination-grouped solves for predicted misses.
    st.group_pairs.clear();
    st.group_of.clear();
    for (i, q) in queries.iter().enumerate() {
        if !q.directed && !cache.peek(&q.x, &q.y) {
            st.group_pairs.push((q.x.clone(), q.y.clone()));
            st.group_of.push(i);
        }
    }
    st.slots.clear();
    st.slots.resize_with(queries.len(), || None);
    if !st.group_pairs.is_empty() {
        route_batch_into(
            &st.group_pairs,
            false,
            Engine::Auto,
            &mut st.scratch,
            &mut st.routes,
        );
        for (pos, &i) in st.group_of.iter().enumerate() {
            st.slots[i] = Some(std::mem::take(&mut st.routes[pos]));
        }
    }

    // Undirected, pass 2: stat-mutating lookups in arrival order.
    for (i, q) in queries.iter().enumerate() {
        if q.directed {
            continue;
        }
        let slot = &mut st.slots[i];
        let route = cache.get_or_compute(&q.x, &q.y, |x, y| {
            slot.take().unwrap_or_else(|| {
                let mut fresh = RoutePath::empty();
                route_with_engine_into(x, y, Engine::Auto, &mut fresh);
                fresh
            })
        });
        out[i] = match q.kind {
            QueryKind::Distance => distance_body(route.len()),
            QueryKind::Route => route_body(&route),
        };
    }
}

/// The uncached, unbuffered reference answer — what a single-threaded
/// `dbr distance`/`dbr route` invocation would print. Every service
/// response must be byte-equal to this.
pub fn answer_query_direct(query: &Query) -> String {
    match (query.kind, query.directed) {
        (QueryKind::Distance, true) => {
            distance_body(distance::directed::distance(&query.x, &query.y))
        }
        (QueryKind::Distance, false) => distance_body(distance::undirected::distance_with(
            Engine::Auto,
            &query.x,
            &query.y,
        )),
        (QueryKind::Route, true) => route_body(&routing::algorithm1(&query.x, &query.y)),
        (QueryKind::Route, false) => route_body(&routing::route_with_engine(
            &query.x,
            &query.y,
            Engine::Auto,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::DeBruijn;

    #[test]
    fn parse_accepts_the_full_grammar() {
        let q = parse_query(2, QueryKind::Distance, "x=0110&y=1011&directed=1").unwrap();
        assert_eq!(q.kind, QueryKind::Distance);
        assert!(q.directed);
        let q = parse_query(2, QueryKind::Route, "y=1011&x=0110&directed=true").unwrap();
        assert!(q.directed);
        let q = parse_query(2, QueryKind::Route, "x=0110&y=1011&directed=0").unwrap();
        assert!(!q.directed, "only 1|true enable directed");
        let q = parse_query(3, QueryKind::Route, "x=012&y=210").unwrap();
        assert_eq!(q.y.to_string(), "210");
    }

    #[test]
    fn parse_rejections_carry_stable_kinds() {
        let cases = [
            ("", "missing-param"),
            ("y=1011", "missing-param"),
            ("x=0110", "missing-param"),
            ("x=0210&y=0000", "bad-address"),
            ("x=0110&y=01a1", "bad-address"),
            ("x=0110&y=01", "length-mismatch"),
        ];
        for (query, kind) in cases {
            let err = parse_query(2, QueryKind::Distance, query).unwrap_err();
            assert_eq!(err.kind, kind, "{query}: {err:?}");
            assert!(!err.detail.is_empty());
        }
    }

    #[test]
    fn cached_and_direct_answers_agree_exhaustively() {
        let g = DeBruijn::new(2, 5).unwrap();
        let mut cache = RouteCache::new(64);
        let mut scratch = RoutingScratch::new();
        let mut path_buf = RoutePath::empty();
        for x in g.vertices() {
            for y in g.vertices() {
                for kind in [QueryKind::Distance, QueryKind::Route] {
                    for directed in [false, true] {
                        let q = Query {
                            kind,
                            x: x.clone(),
                            y: y.clone(),
                            directed,
                        };
                        // Twice: the second answer is a cache hit and
                        // must still be byte-identical.
                        for _ in 0..2 {
                            assert_eq!(
                                answer_query_cached(&q, &mut cache, &mut scratch, &mut path_buf),
                                answer_query_direct(&q),
                                "{x}->{y} {kind:?} directed={directed}"
                            );
                        }
                    }
                }
            }
        }
        assert!(cache.stats().hits > 0, "repeat queries must hit");
    }

    #[test]
    fn batched_answers_match_scalar_replay_including_cache_stats() {
        use debruijn_core::rng::SplitMix64;

        let g = DeBruijn::new(2, 5).unwrap();
        let words: Vec<Word> = g.vertices().collect();
        let mut rng = SplitMix64::new(0xBA7C_57A7);

        // A skewed stream: a few hot destinations, duplicates, mixed
        // kinds and directions. Tiny cache capacity forces evictions so
        // the test also covers the stale-peek recompute path.
        let hot: Vec<&Word> = (0..4)
            .map(|_| &words[rng.below_usize(words.len())])
            .collect();
        let mut queries = Vec::new();
        for _ in 0..300 {
            let x = words[rng.below_usize(words.len())].clone();
            let y = if rng.below_usize(4) < 3 {
                hot[rng.below_usize(hot.len())].clone()
            } else {
                words[rng.below_usize(words.len())].clone()
            };
            queries.push(Query {
                kind: if rng.below_usize(2) == 0 {
                    QueryKind::Distance
                } else {
                    QueryKind::Route
                },
                x,
                y,
                directed: rng.below_usize(4) == 0,
            });
        }

        let mut scalar_cache = RouteCache::new(8);
        let mut batch_cache = RouteCache::new(8);
        let mut scratch = RoutingScratch::new();
        let mut path_buf = RoutePath::empty();
        let mut st = BatchAnswerState::new();
        let mut bodies = Vec::new();
        for drain in queries.chunks(32) {
            let refs: Vec<&Query> = drain.iter().collect();
            answer_batch_cached(&refs, &mut batch_cache, &mut st, &mut bodies);
            for (q, body) in drain.iter().zip(&bodies) {
                let want = answer_query_cached(q, &mut scalar_cache, &mut scratch, &mut path_buf);
                assert_eq!(*body, want, "{}->{} {:?}", q.x, q.y, q.kind);
            }
            assert_eq!(batch_cache.stats(), scalar_cache.stats());
        }
        let stats = batch_cache.stats();
        assert!(stats.hits > 0 && stats.misses > 0 && stats.evictions > 0);
    }

    #[test]
    fn bodies_match_the_cli_formats() {
        let q = parse_query(2, QueryKind::Distance, "x=0000&y=1111").unwrap();
        assert_eq!(answer_query_direct(&q), "4\n");
        let q = parse_query(2, QueryKind::Route, "x=0000&y=1111").unwrap();
        let body = answer_query_direct(&q);
        assert!(body.starts_with("distance: 4\nroute:    "), "{body}");
        assert!(body.ends_with('\n'));
    }
}
