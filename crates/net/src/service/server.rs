//! The I/O plane: HTTP/1.1 keep-alive connection handling in front of
//! the [`Dispatcher`].
//!
//! A [`QueryService`] owns one accept thread, a bounded pool of
//! connection threads (one per live connection — blocking I/O, no
//! reactor), and one compute worker per dispatcher shard. Connection
//! threads do only protocol work: parse a request, hand the query to
//! [`Dispatcher::submit`], block on the reply channel, write the
//! response, repeat on the same socket. All routing math happens on the
//! worker that owns the destination's cache shard, so answers are
//! identical no matter which connection carried the query.
//!
//! Endpoints: `/distance` and `/route` (the query grammar of
//! [`parse_query`]), `/metrics` (Prometheus text), `/healthz`, and
//! `/quitquitquit` (graceful shutdown: answer, stop accepting, drain
//! queues, join workers — how `dbr serve` gets an end-of-run metrics
//! dump and CI gets a deterministic teardown).

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::query::{parse_query, QueryKind};
use super::worker::{Dispatcher, ServiceConfig};
use crate::metrics::{
    read_request, write_response, Anomaly, HttpResponse, MetricsRegistry, PROMETHEUS_CONTENT_TYPE,
};

/// Hard cap on concurrent connections; beyond it new sockets get an
/// immediate `503`. Queue bounds (not this) are the real admission
/// control — the cap only stops a connection flood from exhausting
/// threads.
const MAX_CONNECTIONS: usize = 1024;

/// How long an idle keep-alive connection may sit between requests.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// How long shutdown waits for in-flight connections to finish before
/// proceeding (stragglers then shed against the closed queues).
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Shared state every connection thread needs.
struct Shared {
    dispatcher: Arc<Dispatcher>,
    registry: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    addr: SocketAddr,
}

/// A thread-per-core HTTP query service over one TCP listener.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use debruijn_net::metrics::{MetricsRegistry, ScrapeServer};
/// use debruijn_net::service::{QueryService, ServiceConfig};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// let service = QueryService::bind("127.0.0.1:0", ServiceConfig::new(2), Arc::clone(&registry))?;
/// let addr = service.local_addr();
/// assert_eq!(ScrapeServer::get(addr, "/distance?x=0000&y=1111")?, "4\n");
/// service.shutdown()?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct QueryService {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    dispatcher: Arc<Dispatcher>,
    active: Arc<AtomicUsize>,
    torn_down: bool,
}

impl QueryService {
    /// Binds `addr` and starts the accept thread plus one compute
    /// worker per shard.
    ///
    /// # Errors
    ///
    /// Returns the bind or thread-spawn error.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<Self> {
        let dispatcher = Dispatcher::new(config, Arc::clone(&registry));
        Self::bind_dispatcher(addr, dispatcher, registry)
    }

    /// Like [`QueryService::bind`] with a pre-built dispatcher (e.g.
    /// one carrying a flight recorder).
    ///
    /// # Errors
    ///
    /// Returns the bind or thread-spawn error.
    pub fn bind_dispatcher(
        addr: impl ToSocketAddrs,
        dispatcher: Dispatcher,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let dispatcher = Arc::new(dispatcher);
        let mut workers = Vec::with_capacity(dispatcher.workers());
        for w in 0..dispatcher.workers() {
            let dispatcher = Arc::clone(&dispatcher);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dbr-serve-worker-{w}"))
                    .spawn(move || dispatcher.run_worker(w))?,
            );
        }
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let shared = Arc::new(Shared {
            dispatcher: Arc::clone(&dispatcher),
            registry,
            stop: Arc::clone(&stop),
            active: Arc::clone(&active),
            addr: local,
        });
        let accept = std::thread::Builder::new()
            .name("dbr-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    if shared.active.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                        let retry = shared.dispatcher.config().retry_after_secs;
                        let _ =
                            write_response(&mut stream, &HttpResponse::overloaded(retry), false);
                        continue;
                    }
                    shared.active.fetch_add(1, Ordering::SeqCst);
                    let conn_shared = Arc::clone(&shared);
                    let spawned = std::thread::Builder::new()
                        .name("dbr-serve-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(&conn_shared, stream);
                            conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        shared.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
            dispatcher,
            active,
            torn_down: false,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The compute plane, for inspection in tests and CLI reporting.
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// Parks the caller until the service stops (a `/quitquitquit`
    /// request), then drains and joins everything.
    ///
    /// # Errors
    ///
    /// Returns the flight-recorder dump error, if any.
    pub fn block(mut self) -> io::Result<Option<Anomaly>> {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.teardown()
    }

    /// Stops accepting, drains in-flight work, joins all threads.
    ///
    /// # Errors
    ///
    /// Returns the flight-recorder dump error, if any.
    pub fn shutdown(mut self) -> io::Result<Option<Anomaly>> {
        self.stop_accepting();
        self.teardown()
    }

    fn stop_accepting(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept call with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }

    fn teardown(&mut self) -> io::Result<Option<Anomaly>> {
        self.torn_down = true;
        // Let live connections finish their current exchanges; after
        // the deadline, any straggler sheds against the closed queues.
        let deadline = Instant::now() + DRAIN_DEADLINE;
        while self.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.dispatcher.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.dispatcher.finish_flight()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.stop_accepting();
        if !self.torn_down {
            let _ = self.teardown();
        }
    }
}

/// One connection's keep-alive serve loop.
fn serve_connection(shared: &Shared, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(IDLE_TIMEOUT))?;
    // Responses are small and latency-bound: without TCP_NODELAY,
    // Nagle holding them for the peer's delayed ACK costs ~40ms per
    // keep-alive exchange even on loopback.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // One reply channel reused for every query on this connection: the
    // connection blocks on it, so at most one answer is in flight.
    let (reply_tx, reply_rx) = sync_channel::<String>(1);
    loop {
        let Some(request) = read_request(&mut reader)? else {
            return Ok(());
        };
        let (path, query_string) = request
            .target
            .split_once('?')
            .unwrap_or((request.target.as_str(), ""));
        let response = respond(
            shared,
            &request.method,
            path,
            query_string,
            &reply_tx,
            &reply_rx,
        );
        let endpoint = match path {
            "/distance" => "distance",
            "/route" => "route",
            "/metrics" => "metrics",
            "/healthz" => "healthz",
            "/quitquitquit" => "quitquitquit",
            // Unknown paths share one label to keep cardinality bounded.
            _ => "other",
        };
        shared
            .registry
            .counter_with(
                "dbr_service_requests_total",
                "Service requests, by endpoint and status.",
                &[
                    ("endpoint", endpoint),
                    ("status", &response.status.to_string()),
                ],
            )
            .inc();
        write_response(&mut stream, &response, request.keep_alive)?;
        if path == "/quitquitquit" {
            // Stop accepting after the response is on the wire; the
            // owner's block()/teardown drains and joins the rest.
            shared.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.addr);
            return Ok(());
        }
        if !request.keep_alive {
            return Ok(());
        }
    }
}

fn respond(
    shared: &Shared,
    method: &str,
    path: &str,
    query_string: &str,
    reply_tx: &SyncSender<String>,
    reply_rx: &Receiver<String>,
) -> HttpResponse {
    if method != "GET" {
        count_error(shared, "method");
        return HttpResponse::json_error(405, "method", "only GET is supported");
    }
    let kind = match path {
        "/distance" => QueryKind::Distance,
        "/route" => QueryKind::Route,
        "/metrics" => {
            return HttpResponse {
                status: 200,
                content_type: PROMETHEUS_CONTENT_TYPE.to_string(),
                body: shared.registry.snapshot().render(),
                retry_after: None,
            }
        }
        "/healthz" => return HttpResponse::ok("ok\n"),
        "/quitquitquit" => return HttpResponse::ok("shutting down\n"),
        _ => {
            count_error(shared, "unknown-endpoint");
            return HttpResponse::json_error(
                404,
                "unknown-endpoint",
                &format!("no such endpoint: {path}"),
            );
        }
    };
    let query = match parse_query(shared.dispatcher.config().d, kind, query_string) {
        Ok(query) => query,
        Err(e) => {
            count_error(shared, e.kind);
            return HttpResponse::json_error(400, e.kind, &e.detail);
        }
    };
    match shared.dispatcher.submit(query, reply_tx.clone()) {
        Err(_) => HttpResponse::overloaded(shared.dispatcher.config().retry_after_secs),
        Ok(_) => match reply_rx.recv() {
            Ok(body) => HttpResponse::ok(body),
            // The worker vanished mid-query (panic or forced teardown).
            Err(_) => {
                count_error(shared, "internal");
                HttpResponse::json_error(500, "internal", "worker unavailable")
            }
        },
    }
}

fn count_error(shared: &Shared, kind: &str) {
    shared
        .registry
        .counter_with(
            "dbr_service_errors_total",
            "Rejected service requests, by error kind.",
            &[("kind", kind)],
        )
        .inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ScrapeServer;

    fn service(workers: usize) -> (QueryService, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        let config = ServiceConfig {
            workers,
            ..ServiceConfig::new(2)
        };
        let service = QueryService::bind("127.0.0.1:0", config, Arc::clone(&registry)).unwrap();
        (service, registry)
    }

    #[test]
    fn serves_distance_route_metrics_and_health() {
        let (service, _registry) = service(2);
        let addr = service.local_addr();
        assert_eq!(
            ScrapeServer::get(addr, "/distance?x=0000&y=1111").unwrap(),
            "4\n"
        );
        let route = ScrapeServer::get(addr, "/route?x=0110&y=1011").unwrap();
        assert!(route.starts_with("distance: "), "{route}");
        assert_eq!(ScrapeServer::get(addr, "/healthz").unwrap(), "ok\n");
        let metrics = ScrapeServer::get(addr, "/metrics").unwrap();
        assert!(
            metrics.contains("dbr_service_requests_total{endpoint=\"distance\",status=\"200\"} 1"),
            "{metrics}"
        );
        service.shutdown().unwrap();
    }

    #[test]
    fn quitquitquit_unblocks_block_and_drains() {
        let (service, registry) = service(1);
        let addr = service.local_addr();
        let body = ScrapeServer::get(addr, "/distance?x=0110&y=1011").unwrap();
        assert_eq!(body, "1\n");
        let quitter = std::thread::spawn(move || ScrapeServer::get(addr, "/quitquitquit"));
        service.block().unwrap();
        assert_eq!(quitter.join().unwrap().unwrap(), "shutting down\n");
        // The dump after shutdown still carries the service families.
        let rendered = registry.snapshot().render();
        assert!(rendered.contains("dbr_service_cache_total"), "{rendered}");
    }
}
