//! The compute plane: sharded bounded queues, per-worker route caches,
//! batched answering, and admission control.
//!
//! A [`Dispatcher`] owns one [`BoundedQueue`] per worker. Queries are
//! assigned to workers by [`destination_shard`] — a deterministic hash
//! of the destination — so repeated traffic toward one destination
//! always lands on the same worker's private [`RouteCache`]. That makes
//! the per-worker caches collectively as effective as one shared cache
//! while keeping the hot path free of shared locks: each worker mutates
//! only state it exclusively owns.
//!
//! Admission control is the queue bound: [`Dispatcher::submit`] never
//! blocks, and a full queue hands the query back so the HTTP layer can
//! shed it with `503` + `Retry-After` instead of letting latency grow
//! without bound. Workers drain up to [`ServiceConfig::batch`] queued
//! jobs per wakeup, amortizing the condvar round-trip and the metrics
//! publication across the batch.
//!
//! The `shared_cache` flag flips the dispatcher into the pre-sharding
//! architecture — one global queue and one mutex-guarded cache all
//! workers contend on — kept as the measured baseline for the
//! `service_throughput` bench.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use debruijn_core::routing::{
    destination_shard, RouteCache, RouteCacheStats, RoutePath, RoutingScratch,
};
use debruijn_core::Word;
use debruijn_parallel::{effective_threads, BoundedQueue};

use super::query::{answer_batch_cached, answer_query_cached, BatchAnswerState, Query, QueryKind};
use crate::metrics::{Anomaly, Counter, FlightRecorder, GaugeMerge, MetricsRegistry};
use crate::record::{NetEvent, Recorder};

/// Tuning knobs for the query service, exposed as `dbr serve` flags.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Radix of the served `DG(d,k)` address space.
    pub d: u8,
    /// Worker (and cache-shard) count; `0` means one per core.
    pub workers: usize,
    /// Total cached routes, split evenly across shards (`0` disables
    /// caching).
    pub cache_capacity: usize,
    /// Per-worker queue bound: queries beyond it are shed with `503`.
    pub max_inflight: usize,
    /// Maximum queries a worker drains (and answers) per wakeup.
    pub batch: usize,
    /// Baseline mode: the pre-sharding architecture — one global
    /// queue and one mutex-guarded cache shared by all workers
    /// instead of per-worker shards (the `service_throughput` bench's
    /// comparison series — measurably slower, kept honest).
    pub shared_cache: bool,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u64,
}

impl ServiceConfig {
    /// Production defaults for radix `d`: one worker per core, 4096
    /// cached routes, 256 queued queries per worker, batches of 32.
    pub fn new(d: u8) -> Self {
        Self {
            d,
            workers: 0,
            cache_capacity: 4096,
            max_inflight: 256,
            batch: 32,
            shared_cache: false,
            retry_after_secs: 1,
        }
    }
}

/// One admitted query travelling from the HTTP layer to a worker.
pub struct Job {
    query: Query,
    enqueued: Instant,
    reply: SyncSender<String>,
}

struct Shard {
    queue: BoundedQueue<Job>,
    depth: AtomicU64,
    high_water: AtomicU64,
}

/// A shared cache plus the stats already published to the registry, so
/// concurrent workers publish disjoint deltas.
struct SharedCache {
    cache: RouteCache,
    published: RouteCacheStats,
}

/// The service's compute plane: per-worker bounded queues and route
/// caches behind a deterministic destination-shard map.
///
/// The dispatcher only owns state; callers spawn the worker threads
/// (one [`Dispatcher::run_worker`] call per shard). Keeping the threads
/// external makes overload deterministic to test: fill a queue with no
/// worker running, observe the sheds, then start the worker and watch
/// the clean drain.
pub struct Dispatcher {
    config: ServiceConfig,
    shards: Arc<Vec<Shard>>,
    shared: Option<Mutex<SharedCache>>,
    registry: Arc<MetricsRegistry>,
    shed_total: Counter,
    flight: Mutex<Option<FlightRecorder>>,
    flight_armed: AtomicBool,
    seq: AtomicU64,
}

impl Dispatcher {
    /// Builds the dispatcher and registers its queue-depth gauges on
    /// `registry`. `config.workers` is resolved via [`effective_threads`]
    /// (0 → one per core).
    pub fn new(config: ServiceConfig, registry: Arc<MetricsRegistry>) -> Self {
        let workers = effective_threads(config.workers);
        let config = ServiceConfig { workers, ..config };
        let shards: Arc<Vec<Shard>> = Arc::new(
            (0..workers)
                .map(|_| Shard {
                    queue: BoundedQueue::new(config.max_inflight),
                    depth: AtomicU64::new(0),
                    high_water: AtomicU64::new(0),
                })
                .collect(),
        );
        let gauge_shards = Arc::clone(&shards);
        registry.register_collector(move |snap| {
            for (w, shard) in gauge_shards.iter().enumerate() {
                let label = w.to_string();
                snap.set_gauge(
                    "dbr_service_queue_depth",
                    "Queries queued per worker shard.",
                    &[("shard", &label)],
                    GaugeMerge::Sum,
                    shard.depth.load(Ordering::Relaxed) as i64,
                );
                snap.set_gauge(
                    "dbr_service_queue_depth_high_water",
                    "Peak queue depth observed per worker shard.",
                    &[("shard", &label)],
                    GaugeMerge::Max,
                    shard.high_water.load(Ordering::Relaxed) as i64,
                );
            }
        });
        let shed_total = registry.counter(
            "dbr_service_shed_total",
            "Queries shed with 503 because a worker queue was full.",
        );
        let shared = config.shared_cache.then(|| {
            Mutex::new(SharedCache {
                cache: RouteCache::new(config.cache_capacity),
                published: RouteCacheStats::default(),
            })
        });
        Self {
            config,
            shards,
            shared,
            registry,
            shed_total,
            flight: Mutex::new(None),
            flight_armed: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        }
    }

    /// Installs a flight recorder fed one synthetic forward event per
    /// admission decision, carrying the observed queue depth — so an
    /// [`crate::metrics::AnomalyTriggers::queue_depth_limit`] of
    /// [`ServiceConfig::max_inflight`] trips exactly when the service
    /// starts shedding and freezes the pre-overload window.
    pub fn with_flight_recorder(self, recorder: FlightRecorder) -> Self {
        *self.flight.lock().expect("flight lock") = Some(recorder);
        self.flight_armed.store(true, Ordering::SeqCst);
        self
    }

    /// The resolved configuration (with `workers` made concrete).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The shard a destination hashes to.
    pub fn shard_of(&self, y: &Word) -> usize {
        destination_shard(y, self.shards.len())
    }

    /// Current depth of one shard's queue.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.shards[shard].queue.len()
    }

    /// Admits `query` to its destination shard, or hands it back when
    /// the shard's queue is full (the caller sheds it with `503`).
    /// Never blocks. On success returns the queue depth after the push;
    /// the answer is delivered through `reply`.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, query: Query, reply: SyncSender<String>) -> Result<usize, Query> {
        // The shared-cache baseline is the whole pre-sharding
        // architecture: one global queue every worker contends on, not
        // just one cache.
        let shard = if self.shared.is_some() {
            0
        } else {
            self.shard_of(&query.y)
        };
        let state = &self.shards[shard];
        let flight_event = self
            .flight_armed
            .load(Ordering::Relaxed)
            .then(|| (query.x.clone(), query.y.clone()));
        let job = Job {
            query,
            enqueued: Instant::now(),
            reply,
        };
        match state.queue.try_push(job) {
            Ok(depth) => {
                state.depth.store(depth as u64, Ordering::Relaxed);
                state.high_water.fetch_max(depth as u64, Ordering::Relaxed);
                if let Some((x, y)) = flight_event {
                    self.record_flight(&x, &y, depth);
                }
                Ok(depth)
            }
            Err(job) => {
                self.shed_total.inc();
                if let Some((x, y)) = flight_event {
                    // A rejected push means the queue sits at its bound:
                    // report the bound itself so a queue-depth trigger
                    // set to `max_inflight` fires on the first shed.
                    self.record_flight(&x, &y, self.config.max_inflight);
                }
                Err(job.query)
            }
        }
    }

    /// One worker's serve loop: block on the shard queue, drain up to
    /// [`ServiceConfig::batch`] jobs, answer each through the worker's
    /// private cache and reusable buffers, publish the cache-stat
    /// deltas, repeat. Returns after [`Dispatcher::close`] once the
    /// queue is fully drained — no admitted query is ever dropped.
    pub fn run_worker(&self, w: usize) {
        let per_shard = if self.config.cache_capacity == 0 {
            0
        } else {
            self.config.cache_capacity.div_ceil(self.workers()).max(1)
        };
        let mut cache = RouteCache::new(per_shard);
        let mut scratch = RoutingScratch::new();
        let mut path_buf = RoutePath::empty();
        let mut published = RouteCacheStats::default();
        let mut batch: Vec<Job> = Vec::with_capacity(self.config.batch);
        let mut batch_state = BatchAnswerState::new();
        let mut bodies: Vec<String> = Vec::with_capacity(self.config.batch);
        let shard_label = w.to_string();
        let stats_counters = CacheCounters::new(&self.registry, &shard_label);
        let latency = |kind: QueryKind| {
            self.registry.histogram_with(
                "dbr_service_latency_ns",
                "Queue-to-answer latency per query, nanoseconds.",
                &[("endpoint", kind.label())],
            )
        };
        let lat_distance = latency(QueryKind::Distance);
        let lat_route = latency(QueryKind::Route);
        let state = &self.shards[if self.shared.is_some() { 0 } else { w }];
        while state.queue.drain_into(&mut batch, self.config.batch) {
            state
                .depth
                .store(state.queue.len() as u64, Ordering::Relaxed);
            match &self.shared {
                Some(shared) => {
                    // Baseline architecture: per-job answering under the
                    // global cache mutex, exactly as before sharding.
                    for job in batch.drain(..) {
                        let body = {
                            let mut guard = shared.lock().expect("shared cache lock");
                            answer_query_cached(
                                &job.query,
                                &mut guard.cache,
                                &mut scratch,
                                &mut path_buf,
                            )
                        };
                        let hist = match job.query.kind {
                            QueryKind::Distance => &lat_distance,
                            QueryKind::Route => &lat_route,
                        };
                        hist.observe(job.enqueued.elapsed().as_nanos() as u64);
                        // A send error means the client hung up; the
                        // answer is simply discarded.
                        let _ = job.reply.send(body);
                    }
                }
                None => {
                    // Sharded path: the whole drained batch goes through
                    // the destination-major kernel, which amortizes the
                    // per-destination preprocessing across every job
                    // aimed at the same sink while leaving the bodies and
                    // cache counters byte-identical to per-job answering.
                    let queries: Vec<&Query> = batch.iter().map(|job| &job.query).collect();
                    answer_batch_cached(&queries, &mut cache, &mut batch_state, &mut bodies);
                    for (job, body) in batch.drain(..).zip(bodies.drain(..)) {
                        let hist = match job.query.kind {
                            QueryKind::Distance => &lat_distance,
                            QueryKind::Route => &lat_route,
                        };
                        hist.observe(job.enqueued.elapsed().as_nanos() as u64);
                        // A send error means the client hung up; the
                        // answer is simply discarded.
                        let _ = job.reply.send(body);
                    }
                }
            }
            match &self.shared {
                Some(shared) => {
                    let mut guard = shared.lock().expect("shared cache lock");
                    let now = guard.cache.stats();
                    let delta = now.since(&guard.published);
                    guard.published = now;
                    stats_counters.publish(&delta);
                }
                None => {
                    let now = cache.stats();
                    stats_counters.publish(&now.since(&published));
                    published = now;
                }
            }
        }
        state.depth.store(0, Ordering::Relaxed);
    }

    /// Closes every shard queue: subsequent submits shed, blocked
    /// workers wake, and each worker exits after draining what was
    /// already admitted.
    pub fn close(&self) {
        for shard in self.shards.iter() {
            shard.queue.close();
        }
    }

    /// The anomaly the flight recorder captured, if any (without
    /// consuming the recorder).
    pub fn flight_anomaly(&self) -> Option<Anomaly> {
        self.flight
            .lock()
            .expect("flight lock")
            .as_ref()
            .and_then(|f| f.anomaly().cloned())
    }

    /// Takes the flight recorder and finalizes it, writing the dump
    /// file when one was configured and an anomaly fired.
    ///
    /// # Errors
    ///
    /// Returns the dump-file write error.
    pub fn finish_flight(&self) -> std::io::Result<Option<Anomaly>> {
        match self.flight.lock().expect("flight lock").take() {
            Some(recorder) => recorder.finish(),
            None => Ok(None),
        }
    }

    fn record_flight(&self, from: &Word, to: &Word, queue_depth: usize) {
        let mut guard = self.flight.lock().expect("flight lock");
        if let Some(flight) = guard.as_mut() {
            // Admission decisions mapped onto the trace vocabulary:
            // one Forward per admitted (or shed) query, sequenced by a
            // monotone counter standing in for simulator time.
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            flight.record(&NetEvent::Forward {
                time: seq,
                message: seq as usize,
                hop: 0,
                from: from.clone(),
                to: to.clone(),
                departs: seq,
                arrives: seq,
                queue_wait: 0,
                queue_depth,
            });
        }
    }
}

/// The six counter handles a worker publishes cache-stat deltas to:
/// per-shard series plus the cross-shard aggregate (distinct family
/// names, so a scrape never double counts).
struct CacheCounters {
    shard: [Counter; 3],
    aggregate: [Counter; 3],
}

const OUTCOMES: [&str; 3] = ["hit", "miss", "eviction"];

impl CacheCounters {
    fn new(registry: &MetricsRegistry, shard_label: &str) -> Self {
        let shard = OUTCOMES.map(|outcome| {
            registry.counter_with(
                "dbr_service_cache_shard_total",
                "Route-cache lookups per worker shard, by outcome.",
                &[("shard", shard_label), ("outcome", outcome)],
            )
        });
        let aggregate = OUTCOMES.map(|outcome| {
            registry.counter_with(
                "dbr_service_cache_total",
                "Route-cache lookups across all shards, by outcome.",
                &[("outcome", outcome)],
            )
        });
        Self { shard, aggregate }
    }

    fn publish(&self, delta: &RouteCacheStats) {
        for (i, n) in [delta.hits, delta.misses, delta.evictions]
            .into_iter()
            .enumerate()
        {
            if n > 0 {
                self.shard[i].add(n);
                self.aggregate[i].add(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::AnomalyTriggers;
    use crate::service::query::{answer_query_direct, parse_query};
    use std::sync::mpsc::sync_channel;

    fn config(workers: usize, max_inflight: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            max_inflight,
            ..ServiceConfig::new(2)
        }
    }

    fn query(q: &str) -> Query {
        parse_query(2, QueryKind::Route, q).unwrap()
    }

    #[test]
    fn submit_routes_to_the_destination_shard_and_workers_answer() {
        let registry = Arc::new(MetricsRegistry::new());
        let dispatcher = Arc::new(Dispatcher::new(config(3, 16), Arc::clone(&registry)));
        assert_eq!(dispatcher.workers(), 3);
        let (tx, rx) = sync_channel(1);
        let q = query("x=0110&y=1011");
        let shard = dispatcher.shard_of(&q.y);
        assert_eq!(dispatcher.submit(q.clone(), tx), Ok(1));
        assert_eq!(dispatcher.queue_depth(shard), 1);
        dispatcher.close();
        dispatcher.run_worker(shard);
        assert_eq!(rx.recv().unwrap(), answer_query_direct(&q));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("dbr_service_cache_total", &[("outcome", "miss")]),
            Some(1)
        );
    }

    #[test]
    fn full_queue_sheds_then_drains_cleanly_after_close() {
        let registry = Arc::new(MetricsRegistry::new());
        let triggers = AnomalyTriggers {
            drop_burst: None,
            no_route_burst: None,
            queue_depth_limit: Some(2),
            queue_wait_limit: None,
        };
        let dispatcher = Dispatcher::new(config(1, 2), Arc::clone(&registry))
            .with_flight_recorder(FlightRecorder::new(16, triggers));
        // No worker running: both slots fill, the third submit sheds.
        let q = query("x=0110&y=1011");
        let mut receivers = Vec::new();
        for _ in 0..2 {
            let (tx, rx) = sync_channel(1);
            assert!(dispatcher.submit(q.clone(), tx).is_ok());
            receivers.push(rx);
        }
        assert_eq!(dispatcher.queue_depth(0), 2, "depth stays bounded");
        let (tx, _rx) = sync_channel(1);
        let rejected = dispatcher.submit(q.clone(), tx).unwrap_err();
        assert_eq!(rejected, q);
        assert_eq!(dispatcher.queue_depth(0), 2);
        assert!(
            matches!(
                dispatcher.flight_anomaly(),
                Some(Anomaly::QueueDepthBreach {
                    depth: 2,
                    limit: 2,
                    ..
                })
            ),
            "{:?}",
            dispatcher.flight_anomaly()
        );
        // Close, then drain: the two admitted queries are still answered.
        dispatcher.close();
        dispatcher.run_worker(0);
        for rx in receivers {
            assert_eq!(rx.recv().unwrap(), answer_query_direct(&q));
        }
        assert_eq!(
            registry
                .snapshot()
                .counter_value("dbr_service_shed_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn shared_cache_baseline_answers_identically() {
        let registry = Arc::new(MetricsRegistry::new());
        let cfg = ServiceConfig {
            shared_cache: true,
            batch: 1,
            ..config(2, 16)
        };
        let dispatcher = Dispatcher::new(cfg, Arc::clone(&registry));
        let queries = ["x=0110&y=1011", "x=0000&y=1111", "x=1010&y=0101"];
        let mut expected = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            // Alternate kinds so both endpoints cross the shared cache.
            let kind = if i % 2 == 0 {
                QueryKind::Route
            } else {
                QueryKind::Distance
            };
            let q = parse_query(2, kind, q).unwrap();
            let (tx, rx) = sync_channel(1);
            dispatcher.submit(q.clone(), tx).unwrap();
            expected.push((rx, answer_query_direct(&q)));
        }
        dispatcher.close();
        for w in 0..dispatcher.workers() {
            dispatcher.run_worker(w);
        }
        for (rx, want) in expected {
            assert_eq!(rx.recv().unwrap(), want);
        }
        let snap = registry.snapshot();
        let lookups: u64 = ["hit", "miss"]
            .iter()
            .filter_map(|o| snap.counter_value("dbr_service_cache_total", &[("outcome", o)]))
            .sum();
        assert_eq!(lookups, 3, "every undirected query crosses the cache");
    }
}
