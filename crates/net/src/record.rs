//! Pluggable observability for the simulator: events, sinks, metrics.
//!
//! The paper's routing cost claim — `O(k) = O(log N)` hops per message,
//! with wildcard `*` steps balancing traffic (§3, Remark) — is about
//! *per-hop* behavior, but aggregate statistics
//! ([`SimReport`](crate::stats::SimReport)) cannot show it. This module makes every step of a message's life
//! observable:
//!
//! * [`NetEvent`] — span-style events for injection, wildcard
//!   resolution, forwarding (with queueing detail), source/hop
//!   rerouting, delivery and loss;
//! * [`Recorder`] — the sink trait the simulator drives; its
//!   [`Recorder::enabled`] gate lets the simulator skip event
//!   construction entirely when nobody listens;
//! * [`NullRecorder`] — the default sink: disabled, zero-cost;
//! * [`InMemoryRecorder`] — exact histograms (per-hop latency, queue
//!   wait/depth, hop counts, stretch over the shortest distance
//!   `D(X,Y)`) and counters (wildcard resolutions per policy and
//!   digit, reroutes, drops per reason);
//! * [`JsonlRecorder`] — line-delimited JSON export for offline
//!   analysis, with a parser ([`parse_event`]) so traces round-trip.
//!
//! See `docs/OBSERVABILITY.md` for the full event/metric reference and
//! the mapping back to the paper's quantities.

use std::collections::BTreeMap;
use std::fmt;
use std::io;

use debruijn_core::{ShiftKind, Word};

use crate::policy::WildcardPolicy;
use crate::stats::Histogram;

/// Why a message left the network without being delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DropReason {
    /// The source node itself is faulty.
    FaultySource,
    /// No route exists (destination faulty or network cut).
    NoRoute,
    /// The message arrived at a faulty node.
    FaultyNode,
    /// The message was handed to a dead link.
    DeadLink,
    /// The message exhausted its hop budget
    /// ([`SimConfig::ttl`](crate::SimConfig::ttl)) before arriving.
    Ttl,
}

impl DropReason {
    /// Stable kebab-case name used in JSONL output and metric keys.
    pub fn name(&self) -> &'static str {
        match self {
            DropReason::FaultySource => "faulty-source",
            DropReason::NoRoute => "no-route",
            DropReason::FaultyNode => "faulty-node",
            DropReason::DeadLink => "dead-link",
            DropReason::Ttl => "ttl",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "faulty-source" => DropReason::FaultySource,
            "no-route" => DropReason::NoRoute,
            "faulty-node" => DropReason::FaultyNode,
            "dead-link" => DropReason::DeadLink,
            "ttl" => DropReason::Ttl,
            _ => return None,
        })
    }
}

/// One observable event in the life of a simulated message.
///
/// `message` is always the index of the message in the injected
/// traffic; `time` is the simulator tick at which the event happened.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetEvent {
    /// A message entered the network at its source.
    Inject {
        /// Simulator tick.
        time: u64,
        /// Traffic index.
        message: usize,
        /// Source address.
        source: Word,
        /// Destination address.
        destination: Word,
        /// Length of the routing-path field the source computed (0
        /// under hop-by-hop forwarding, where no route is carried).
        route_len: usize,
        /// The fault-free shortest distance `D(source, destination)`
        /// under the configured network model (directed for
        /// uni-directional routers, undirected otherwise).
        shortest: usize,
    },
    /// A forwarding node resolved a wildcard `(a, *)` step to a digit.
    WildcardResolved {
        /// Simulator tick.
        time: u64,
        /// Traffic index.
        message: usize,
        /// The resolving node.
        at: Word,
        /// The shift type of the step (`a`).
        shift: ShiftKind,
        /// The digit substituted for `*`.
        digit: u8,
        /// The policy that chose it.
        policy: WildcardPolicy,
    },
    /// A message was handed to the link `from → to`.
    Forward {
        /// Tick of the handover.
        time: u64,
        /// Traffic index.
        message: usize,
        /// 0-based hop index along the message's path.
        hop: usize,
        /// Transmitting node.
        from: Word,
        /// Receiving node.
        to: Word,
        /// Tick the link starts serving the message (after queueing).
        departs: u64,
        /// Tick the message arrives at `to`.
        arrives: u64,
        /// Ticks spent waiting for the link (`departs − time`).
        queue_wait: u64,
        /// Messages queued ahead on the link at handover.
        queue_depth: usize,
    },
    /// A fault-avoiding route was computed (source reroute, or per-hop
    /// under hop-by-hop forwarding) instead of the label algorithm.
    Reroute {
        /// Simulator tick.
        time: u64,
        /// Traffic index.
        message: usize,
        /// The node that computed the detour.
        at: Word,
    },
    /// A message was accepted at its destination.
    Deliver {
        /// Simulator tick.
        time: u64,
        /// Traffic index.
        message: usize,
        /// Hops actually taken.
        hops: usize,
        /// Delivery latency in ticks (delivery − injection).
        latency: u64,
        /// The fault-free shortest distance recorded at injection.
        shortest: usize,
    },
    /// A message was lost.
    Drop {
        /// Simulator tick.
        time: u64,
        /// Traffic index.
        message: usize,
        /// Why it was lost.
        reason: DropReason,
        /// The node holding the message when it was lost (the source
        /// for injection-time drops, the faulty/expiring node
        /// otherwise).
        at: Word,
        /// The node that forwarded the message to `at`, when the loss
        /// happened mid-flight; `None` for drops at the source.
        upstream: Option<Word>,
    },
}

/// The coarse classes of [`NetEvent`], for per-class recorder
/// subscriptions ([`Recorder::wants`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// [`NetEvent::Inject`].
    Inject,
    /// [`NetEvent::WildcardResolved`].
    Wildcard,
    /// [`NetEvent::Forward`].
    Forward,
    /// [`NetEvent::Reroute`].
    Reroute,
    /// [`NetEvent::Deliver`].
    Deliver,
    /// [`NetEvent::Drop`].
    Drop,
}

impl EventClass {
    /// Every class, in stream order.
    pub const ALL: [EventClass; 6] = [
        EventClass::Inject,
        EventClass::Wildcard,
        EventClass::Forward,
        EventClass::Reroute,
        EventClass::Deliver,
        EventClass::Drop,
    ];
}

impl NetEvent {
    /// The simulator tick the event carries.
    pub fn time(&self) -> u64 {
        match self {
            NetEvent::Inject { time, .. }
            | NetEvent::WildcardResolved { time, .. }
            | NetEvent::Forward { time, .. }
            | NetEvent::Reroute { time, .. }
            | NetEvent::Deliver { time, .. }
            | NetEvent::Drop { time, .. } => *time,
        }
    }

    /// The traffic index of the message the event belongs to.
    pub fn message(&self) -> usize {
        match self {
            NetEvent::Inject { message, .. }
            | NetEvent::WildcardResolved { message, .. }
            | NetEvent::Forward { message, .. }
            | NetEvent::Reroute { message, .. }
            | NetEvent::Deliver { message, .. }
            | NetEvent::Drop { message, .. } => *message,
        }
    }

    /// The event's [`EventClass`].
    pub fn class(&self) -> EventClass {
        match self {
            NetEvent::Inject { .. } => EventClass::Inject,
            NetEvent::WildcardResolved { .. } => EventClass::Wildcard,
            NetEvent::Forward { .. } => EventClass::Forward,
            NetEvent::Reroute { .. } => EventClass::Reroute,
            NetEvent::Deliver { .. } => EventClass::Deliver,
            NetEvent::Drop { .. } => EventClass::Drop,
        }
    }
}

/// A sink for simulation events.
///
/// Implementations are driven synchronously from the event loop, in
/// simulation order. The [`Recorder::enabled`] gate is checked before
/// each event is *constructed*, so a disabled recorder (the default
/// [`NullRecorder`]) costs one virtual call per would-be event and no
/// allocation. Sinks that only care about part of the stream can
/// additionally narrow [`Recorder::wants`]: the engines snapshot the
/// per-class answers once per run and skip *constructing* events of
/// unwanted classes, so a drop-only sink (e.g. a fault-monitor set)
/// pays nothing for the forward/deliver flood.
pub trait Recorder {
    /// Whether the sink wants events at all. Checked before event
    /// construction; return `false` to make recording free.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether the sink wants events of `class`. Defaults to
    /// [`Recorder::enabled`]; override to subscribe to a subset.
    /// Engines snapshot the answers before a run, so they must not
    /// change mid-run.
    fn wants(&self, class: EventClass) -> bool {
        let _ = class;
        self.enabled()
    }

    /// Consumes one event.
    fn record(&mut self, event: &NetEvent);
}

/// Per-class event-construction gates, snapshotted from a recorder
/// once per engine run ([`Recorder::wants`] must not change mid-run).
/// A drop-only sink — e.g. a fault-monitor set — leaves the hot
/// forward/deliver path entirely event-free.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Observe {
    pub(crate) inject: bool,
    pub(crate) wildcard: bool,
    pub(crate) forward: bool,
    pub(crate) reroute: bool,
    pub(crate) deliver: bool,
    pub(crate) drop: bool,
}

impl Observe {
    /// Snapshots the recorder's subscriptions (all-false if disabled).
    pub(crate) fn of(recorder: &dyn Recorder) -> Self {
        if !recorder.enabled() {
            return Self::default();
        }
        Self {
            inject: recorder.wants(EventClass::Inject),
            wildcard: recorder.wants(EventClass::Wildcard),
            forward: recorder.wants(EventClass::Forward),
            reroute: recorder.wants(EventClass::Reroute),
            deliver: recorder.wants(EventClass::Deliver),
            drop: recorder.wants(EventClass::Drop),
        }
    }

    /// Whether any class is observed at all.
    pub(crate) fn any(self) -> bool {
        self.inject || self.wildcard || self.forward || self.reroute || self.deliver || self.drop
    }
}

/// The default sink: drops everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &NetEvent) {}
}

/// Fans one event stream out to several sinks (e.g. metrics + trace).
///
/// Enabled iff any child is enabled; wants a class iff any child
/// wants it; each event is routed only to the children that want its
/// class.
#[derive(Default)]
pub struct FanoutRecorder<'a> {
    sinks: Vec<&'a mut dyn Recorder>,
}

impl<'a> FanoutRecorder<'a> {
    /// An empty fanout (disabled until a sink is added).
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: &'a mut dyn Recorder) {
        self.sinks.push(sink);
    }
}

impl Recorder for FanoutRecorder<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn wants(&self, class: EventClass) -> bool {
        self.sinks.iter().any(|s| s.wants(class))
    }

    fn record(&mut self, event: &NetEvent) {
        let class = event.class();
        for sink in &mut self.sinks {
            if sink.wants(class) {
                sink.record(event);
            }
        }
    }
}

/// In-memory metrics: exact histograms and counters over one run.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::record::InMemoryRecorder;
/// use debruijn_net::{workload, SimConfig, Simulation};
///
/// let space = DeBruijn::new(2, 4)?;
/// let sim = Simulation::new(space, SimConfig::default())?;
/// let traffic = workload::uniform_random(space, 100, 1);
/// let mut metrics = InMemoryRecorder::new();
/// let report = sim.run_recorded(&traffic, &mut metrics);
/// assert_eq!(metrics.delivered, report.delivered as u64);
/// assert_eq!(metrics.hops.count(), 100);
/// // Optimal routes never undercut the distance function.
/// assert_eq!(metrics.stretch.min(), Some(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InMemoryRecorder {
    /// Messages that entered the network.
    pub injected: u64,
    /// Messages accepted at their destination.
    pub delivered: u64,
    /// Messages lost, by [`DropReason::name`].
    pub drops_by_reason: BTreeMap<&'static str, u64>,
    /// Fault-avoiding route computations.
    pub reroutes: u64,
    /// Per-hop latency: handover to arrival (queue wait + service +
    /// propagation), one observation per forward.
    pub per_hop_latency: Histogram,
    /// Ticks each forward waited for a busy link.
    pub queue_wait: Histogram,
    /// Messages already queued on the chosen link at each handover.
    pub queue_depth: Histogram,
    /// Hops per delivered message (the paper's route length).
    pub hops: Histogram,
    /// `hops − D(X,Y)` per delivered message: 0 for optimal routing,
    /// positive under fault detours or the trivial router.
    pub stretch: Histogram,
    /// End-to-end delivery latency in ticks.
    pub latency: Histogram,
    /// Wildcard resolutions by policy name.
    pub wildcard_by_policy: BTreeMap<&'static str, u64>,
    /// Wildcard resolutions by substituted digit — the balancing the
    /// paper's §3 Remark anticipates is visible as a flat digit
    /// distribution.
    pub wildcard_by_digit: BTreeMap<u8, u64>,
}

impl InMemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages lost.
    pub fn dropped(&self) -> u64 {
        self.drops_by_reason.values().sum()
    }

    /// Total wildcard resolutions.
    pub fn wildcards_resolved(&self) -> u64 {
        self.wildcard_by_digit.values().sum()
    }
}

impl Recorder for InMemoryRecorder {
    fn record(&mut self, event: &NetEvent) {
        match event {
            NetEvent::Inject { .. } => self.injected += 1,
            NetEvent::WildcardResolved { digit, policy, .. } => {
                *self.wildcard_by_policy.entry(policy.name()).or_insert(0) += 1;
                *self.wildcard_by_digit.entry(*digit).or_insert(0) += 1;
            }
            NetEvent::Forward {
                time,
                arrives,
                queue_wait,
                queue_depth,
                ..
            } => {
                self.per_hop_latency.record(arrives - time);
                self.queue_wait.record(*queue_wait);
                self.queue_depth.record(*queue_depth as u64);
            }
            NetEvent::Reroute { .. } => self.reroutes += 1,
            NetEvent::Deliver {
                hops,
                latency,
                shortest,
                ..
            } => {
                self.delivered += 1;
                self.hops.record(*hops as u64);
                self.stretch.record(hops.saturating_sub(*shortest) as u64);
                self.latency.record(*latency);
            }
            NetEvent::Drop { reason, .. } => {
                *self.drops_by_reason.entry(reason.name()).or_insert(0) += 1;
            }
        }
    }
}

impl fmt::Display for InMemoryRecorder {
    /// Renders the full metrics report (the `dbr simulate --metrics`
    /// output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "messages: {} injected, {} delivered, {} dropped",
            self.injected,
            self.delivered,
            self.dropped()
        )?;
        if !self.drops_by_reason.is_empty() {
            for (reason, n) in &self.drops_by_reason {
                writeln!(f, "  dropped ({reason}): {n}")?;
            }
        }
        if self.reroutes > 0 {
            writeln!(f, "fault-avoiding reroutes: {}", self.reroutes)?;
        }
        writeln!(
            f,
            "\nhops per delivered message (mean {:.4}, p50 {}, p99 {}, max {}):",
            self.hops.mean(),
            self.hops.percentile(50.0).unwrap_or(0),
            self.hops.percentile(99.0).unwrap_or(0),
            self.hops.max().unwrap_or(0)
        )?;
        write!(f, "{}", self.hops)?;
        writeln!(
            f,
            "\nstretch over shortest D(X,Y) (mean {:.4}):",
            self.stretch.mean()
        )?;
        write!(f, "{}", self.stretch)?;
        writeln!(
            f,
            "\nper-hop latency in ticks (mean {:.4}, p99 {}):",
            self.per_hop_latency.mean(),
            self.per_hop_latency.percentile(99.0).unwrap_or(0)
        )?;
        write!(f, "{}", self.per_hop_latency)?;
        writeln!(
            f,
            "\nqueue wait per hop in ticks (mean {:.4}, max {}):",
            self.queue_wait.mean(),
            self.queue_wait.max().unwrap_or(0)
        )?;
        write!(f, "{}", self.queue_wait)?;
        writeln!(
            f,
            "\nqueue depth ahead at handover (mean {:.4}, max {}):",
            self.queue_depth.mean(),
            self.queue_depth.max().unwrap_or(0)
        )?;
        write!(f, "{}", self.queue_depth)?;
        writeln!(
            f,
            "\nend-to-end latency in ticks (mean {:.4}, p99 {}, max {}):",
            self.latency.mean(),
            self.latency.percentile(99.0).unwrap_or(0),
            self.latency.max().unwrap_or(0)
        )?;
        write!(f, "{}", self.latency)?;
        writeln!(f, "\nwildcard resolutions: {}", self.wildcards_resolved())?;
        for (policy, n) in &self.wildcard_by_policy {
            writeln!(f, "  by policy {policy}: {n}")?;
        }
        for (digit, n) in &self.wildcard_by_digit {
            writeln!(f, "  digit {digit}: {n}")?;
        }
        Ok(())
    }
}

/// Streams events as line-delimited JSON to any [`io::Write`].
///
/// One event per line, flat objects, stable `"type"` discriminants —
/// made for `jq`, pandas, or [`parse_event`]. Write errors are
/// sticky: recording stops at the first failure and
/// [`JsonlRecorder::finish`] reports it.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::record::{parse_event, JsonlRecorder};
/// use debruijn_net::{workload, SimConfig, Simulation};
///
/// let space = DeBruijn::new(2, 4)?;
/// let sim = Simulation::new(space, SimConfig::default())?;
/// let traffic = workload::uniform_random(space, 10, 1);
/// let mut sink = JsonlRecorder::new(Vec::new());
/// sim.run_recorded(&traffic, &mut sink);
/// let bytes = sink.finish()?;
/// for line in String::from_utf8(bytes)?.lines() {
///     parse_event(2, line)?;
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct JsonlRecorder<W: io::Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlRecorder<W> {
    /// Wraps a writer. Consider a `BufWriter` for file sinks.
    pub fn new(out: W) -> Self {
        Self { out, error: None }
    }

    /// Flushes and returns the writer, or the first write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: io::Write> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        self.error.is_none()
    }

    fn record(&mut self, event: &NetEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{}", render_json(event)) {
            self.error = Some(e);
        }
    }
}

fn shift_name(shift: ShiftKind) -> &'static str {
    match shift {
        ShiftKind::Left => "L",
        ShiftKind::Right => "R",
    }
}

/// Serializes one event as a single-line JSON object (no trailing
/// newline). Word addresses use their display form, so the line is
/// self-describing given the radix `d`.
pub fn render_json(event: &NetEvent) -> String {
    match event {
        NetEvent::Inject { time, message, source, destination, route_len, shortest } => format!(
            "{{\"type\":\"inject\",\"time\":{time},\"message\":{message},\"source\":\"{source}\",\"destination\":\"{destination}\",\"route_len\":{route_len},\"shortest\":{shortest}}}"
        ),
        NetEvent::WildcardResolved { time, message, at, shift, digit, policy } => format!(
            "{{\"type\":\"wildcard\",\"time\":{time},\"message\":{message},\"at\":\"{at}\",\"shift\":\"{}\",\"digit\":{digit},\"policy\":\"{}\"}}",
            shift_name(*shift),
            policy.name()
        ),
        NetEvent::Forward { time, message, hop, from, to, departs, arrives, queue_wait, queue_depth } => format!(
            "{{\"type\":\"forward\",\"time\":{time},\"message\":{message},\"hop\":{hop},\"from\":\"{from}\",\"to\":\"{to}\",\"departs\":{departs},\"arrives\":{arrives},\"queue_wait\":{queue_wait},\"queue_depth\":{queue_depth}}}"
        ),
        NetEvent::Reroute { time, message, at } => format!(
            "{{\"type\":\"reroute\",\"time\":{time},\"message\":{message},\"at\":\"{at}\"}}"
        ),
        NetEvent::Deliver { time, message, hops, latency, shortest } => format!(
            "{{\"type\":\"deliver\",\"time\":{time},\"message\":{message},\"hops\":{hops},\"latency\":{latency},\"shortest\":{shortest}}}"
        ),
        NetEvent::Drop { time, message, reason, at, upstream } => match upstream {
            Some(upstream) => format!(
                "{{\"type\":\"drop\",\"time\":{time},\"message\":{message},\"reason\":\"{}\",\"at\":\"{at}\",\"upstream\":\"{upstream}\"}}",
                reason.name()
            ),
            None => format!(
                "{{\"type\":\"drop\",\"time\":{time},\"message\":{message},\"reason\":\"{}\",\"at\":\"{at}\"}}",
                reason.name()
            ),
        },
    }
}

/// Parses one [`render_json`] line back into its event, given the
/// radix `d` of the simulated space (addresses are digit strings).
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON, unknown event
/// types, or missing/ill-typed fields.
pub fn parse_event(d: u8, line: &str) -> Result<NetEvent, String> {
    let fields = parse_flat_object(line)?;
    let num = |key: &str| -> Result<u64, String> {
        match fields.get(key) {
            Some(JsonScalar::Num(n)) => Ok(*n),
            Some(JsonScalar::Str(_)) => Err(format!("field '{key}' is not a number")),
            None => Err(format!("missing field '{key}'")),
        }
    };
    let text = |key: &str| -> Result<&str, String> {
        match fields.get(key) {
            Some(JsonScalar::Str(s)) => Ok(s.as_str()),
            Some(JsonScalar::Num(_)) => Err(format!("field '{key}' is not a string")),
            None => Err(format!("missing field '{key}'")),
        }
    };
    let word = |key: &str| -> Result<Word, String> {
        Word::parse(d, text(key)?).map_err(|e| format!("bad word in '{key}': {e}"))
    };
    match text("type")? {
        "inject" => Ok(NetEvent::Inject {
            time: num("time")?,
            message: num("message")? as usize,
            source: word("source")?,
            destination: word("destination")?,
            route_len: num("route_len")? as usize,
            shortest: num("shortest")? as usize,
        }),
        "wildcard" => Ok(NetEvent::WildcardResolved {
            time: num("time")?,
            message: num("message")? as usize,
            at: word("at")?,
            shift: match text("shift")? {
                "L" => ShiftKind::Left,
                "R" => ShiftKind::Right,
                other => return Err(format!("unknown shift '{other}'")),
            },
            digit: num("digit")? as u8,
            policy: match text("policy")? {
                "zero" => WildcardPolicy::Zero,
                "random" => WildcardPolicy::Random,
                "round-robin" => WildcardPolicy::RoundRobin,
                "least-loaded" => WildcardPolicy::LeastLoaded,
                other => return Err(format!("unknown policy '{other}'")),
            },
        }),
        "forward" => Ok(NetEvent::Forward {
            time: num("time")?,
            message: num("message")? as usize,
            hop: num("hop")? as usize,
            from: word("from")?,
            to: word("to")?,
            departs: num("departs")?,
            arrives: num("arrives")?,
            queue_wait: num("queue_wait")?,
            queue_depth: num("queue_depth")? as usize,
        }),
        "reroute" => Ok(NetEvent::Reroute {
            time: num("time")?,
            message: num("message")? as usize,
            at: word("at")?,
        }),
        "deliver" => Ok(NetEvent::Deliver {
            time: num("time")?,
            message: num("message")? as usize,
            hops: num("hops")? as usize,
            latency: num("latency")?,
            shortest: num("shortest")? as usize,
        }),
        "drop" => {
            let reason = text("reason")?;
            Ok(NetEvent::Drop {
                time: num("time")?,
                message: num("message")? as usize,
                reason: DropReason::parse(reason)
                    .ok_or_else(|| format!("unknown drop reason '{reason}'"))?,
                at: word("at")?,
                upstream: match fields.get("upstream") {
                    Some(_) => Some(word("upstream")?),
                    None => None,
                },
            })
        }
        other => Err(format!("unknown event type '{other}'")),
    }
}

enum JsonScalar {
    Num(u64),
    Str(String),
}

/// Parses a flat JSON object of string/unsigned-number values — the
/// only shape [`render_json`] emits. Not a general JSON parser.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonScalar>, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "expected a JSON object".to_string())?;
    let mut out = BTreeMap::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted key at '{rest}'"))?;
        let key_end = after_quote
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key '{key}'"))?
            .trim_start();
        let (value, tail) = if let Some(s) = after_key.strip_prefix('"') {
            let end = s
                .find('"')
                .ok_or_else(|| "unterminated string".to_string())?;
            (JsonScalar::Str(s[..end].to_string()), &s[end + 1..])
        } else {
            let end = after_key.find([',', '}']).unwrap_or(after_key.len());
            let digits = after_key[..end].trim();
            let n = digits
                .parse::<u64>()
                .map_err(|_| format!("bad number '{digits}' for key '{key}'"))?;
            (JsonScalar::Num(n), &after_key[end..])
        };
        out.insert(key.to_string(), value);
        rest = tail.trim_start();
        if let Some(t) = rest.strip_prefix(',') {
            rest = t.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("trailing garbage '{rest}'"));
        }
    }
    Ok(out)
}

/// Bridges the recorder stream back onto the legacy
/// [`TraceEvent`](crate::sim::TraceEvent) vector used by
/// [`Simulation::run_traced`](crate::Simulation::run_traced).
pub(crate) struct TraceAdapter<'a> {
    pub(crate) trace: &'a mut Vec<crate::sim::TraceEvent>,
}

impl Recorder for TraceAdapter<'_> {
    fn record(&mut self, event: &NetEvent) {
        use crate::sim::{TraceEvent, TraceKind};
        let (time, message, kind) = match event {
            NetEvent::Inject {
                time,
                message,
                source,
                ..
            } => (*time, *message, TraceKind::Injected { at: source.clone() }),
            NetEvent::Forward {
                time,
                message,
                from,
                to,
                departs,
                ..
            } => (
                *time,
                *message,
                TraceKind::Forwarded {
                    from: from.clone(),
                    to: to.clone(),
                    departs: *departs,
                },
            ),
            NetEvent::Deliver { time, message, .. } => (*time, *message, TraceKind::Delivered),
            NetEvent::Drop { time, message, .. } => (*time, *message, TraceKind::Dropped),
            // Wildcard resolutions and reroutes have no legacy
            // trace representation.
            NetEvent::WildcardResolved { .. } | NetEvent::Reroute { .. } => return,
        };
        self.trace.push(TraceEvent {
            time,
            message,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        Word::parse(2, s).unwrap()
    }

    fn sample_events() -> Vec<NetEvent> {
        vec![
            NetEvent::Inject {
                time: 0,
                message: 0,
                source: w("0110"),
                destination: w("1011"),
                route_len: 1,
                shortest: 1,
            },
            NetEvent::WildcardResolved {
                time: 2,
                message: 0,
                at: w("0110"),
                shift: ShiftKind::Right,
                digit: 1,
                policy: WildcardPolicy::LeastLoaded,
            },
            NetEvent::Forward {
                time: 2,
                message: 0,
                hop: 0,
                from: w("0110"),
                to: w("1011"),
                departs: 3,
                arrives: 5,
                queue_wait: 1,
                queue_depth: 1,
            },
            NetEvent::Reroute {
                time: 4,
                message: 1,
                at: w("0000"),
            },
            NetEvent::Deliver {
                time: 5,
                message: 0,
                hops: 1,
                latency: 5,
                shortest: 1,
            },
            NetEvent::Drop {
                time: 6,
                message: 1,
                reason: DropReason::DeadLink,
                at: w("0000"),
                upstream: Some(w("1000")),
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        for event in sample_events() {
            let line = render_json(&event);
            let back = parse_event(2, &line).unwrap();
            assert_eq!(back, event, "{line}");
        }
    }

    #[test]
    fn time_and_message_accessors_cover_every_variant() {
        let times: Vec<u64> = sample_events().iter().map(NetEvent::time).collect();
        assert_eq!(times, [0, 2, 2, 4, 5, 6]);
        let messages: Vec<usize> = sample_events().iter().map(NetEvent::message).collect();
        assert_eq!(messages, [0, 0, 0, 1, 0, 1]);
    }

    /// Exhaustive serializer/parser round-trip: every [`NetEvent`]
    /// variant, every [`DropReason`], every [`WildcardPolicy`], both
    /// shift kinds, digit-boundary addresses (digit `d−1`, including
    /// the dot-separated form for `d > 10`), and `u64::MAX` /
    /// `usize::MAX` numeric fields.
    #[test]
    fn jsonl_round_trips_exhaustively() {
        let radixes: [(u8, &str, &str); 3] = [
            (2, "0111", "1110"),
            (10, "0919", "9090"),
            (12, "11.0.3.11", "0.11.11.5"),
        ];
        for (d, a, b) in radixes {
            let x = Word::parse(d, a).unwrap();
            let y = Word::parse(d, b).unwrap();
            let mut events = vec![NetEvent::Inject {
                time: u64::MAX,
                message: usize::MAX,
                source: x.clone(),
                destination: y.clone(),
                route_len: usize::MAX,
                shortest: 0,
            }];
            for shift in [ShiftKind::Left, ShiftKind::Right] {
                for policy in WildcardPolicy::all() {
                    events.push(NetEvent::WildcardResolved {
                        time: 0,
                        message: 7,
                        at: x.clone(),
                        shift,
                        digit: d - 1,
                        policy,
                    });
                }
            }
            events.push(NetEvent::Forward {
                time: u64::MAX - 1,
                message: 0,
                hop: usize::MAX,
                from: x.clone(),
                to: y.clone(),
                departs: u64::MAX,
                arrives: u64::MAX,
                queue_wait: u64::MAX,
                queue_depth: usize::MAX,
            });
            events.push(NetEvent::Reroute {
                time: 1,
                message: 0,
                at: y.clone(),
            });
            events.push(NetEvent::Deliver {
                time: u64::MAX,
                message: usize::MAX,
                hops: usize::MAX,
                latency: u64::MAX,
                shortest: usize::MAX,
            });
            for (i, reason) in [
                DropReason::FaultySource,
                DropReason::NoRoute,
                DropReason::FaultyNode,
                DropReason::DeadLink,
                DropReason::Ttl,
            ]
            .into_iter()
            .enumerate()
            {
                events.push(NetEvent::Drop {
                    time: u64::MAX,
                    message: 3,
                    reason,
                    at: x.clone(),
                    // Exercise both the sourced (no upstream) and
                    // mid-flight serialized forms.
                    upstream: (i % 2 == 1).then(|| y.clone()),
                });
            }
            for event in events {
                let line = render_json(&event);
                let back = parse_event(d, &line).unwrap_or_else(|e| panic!("d={d}: {e} in {line}"));
                assert_eq!(back, event, "d={d}: {line}");
            }
        }
    }

    #[test]
    fn jsonl_recorder_writes_one_line_per_event() {
        let mut sink = JsonlRecorder::new(Vec::new());
        let events = sample_events();
        for e in &events {
            sink.record(e);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            assert_eq!(&parse_event(2, line).unwrap(), event);
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_event(2, "not json").is_err());
        assert!(parse_event(2, "{\"type\":\"warp\"}").is_err());
        assert!(parse_event(2, "{\"type\":\"drop\",\"time\":0}").is_err());
        assert!(parse_event(
            2,
            "{\"type\":\"drop\",\"time\":0,\"message\":1,\"reason\":\"gremlins\",\"at\":\"0110\"}"
        )
        .is_err());
        // A drop without its location is rejected.
        assert!(parse_event(
            2,
            "{\"type\":\"drop\",\"time\":0,\"message\":1,\"reason\":\"ttl\"}"
        )
        .is_err());
        // A word from the wrong radix fails to parse back.
        let line = render_json(&NetEvent::Reroute {
            time: 0,
            message: 0,
            at: w("0110"),
        });
        assert!(parse_event(2, &line).is_ok());
    }

    #[test]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder.enabled());
    }

    #[test]
    fn fanout_forwards_to_all_enabled_sinks() {
        let mut a = InMemoryRecorder::new();
        let mut b = InMemoryRecorder::new();
        let mut null = NullRecorder;
        {
            let mut fan = FanoutRecorder::new();
            assert!(!fan.enabled(), "empty fanout is disabled");
            fan.push(&mut a);
            fan.push(&mut null);
            fan.push(&mut b);
            assert!(fan.enabled());
            for e in sample_events() {
                fan.record(&e);
            }
        }
        assert_eq!(a, b);
        assert_eq!(a.injected, 1);
        assert_eq!(a.delivered, 1);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.reroutes, 1);
        assert_eq!(a.wildcards_resolved(), 1);
    }

    #[test]
    fn fanout_routes_events_by_class() {
        /// Accepts only drops; counts everything offered to it.
        struct DropOnly {
            seen: usize,
        }
        impl Recorder for DropOnly {
            fn wants(&self, class: EventClass) -> bool {
                class == EventClass::Drop
            }
            fn record(&mut self, event: &NetEvent) {
                assert_eq!(event.class(), EventClass::Drop);
                self.seen += 1;
            }
        }
        let mut drops = DropOnly { seen: 0 };
        let mut everything = InMemoryRecorder::new();
        let mut fan = FanoutRecorder::new();
        fan.push(&mut drops);
        assert!(fan.wants(EventClass::Drop));
        assert!(
            !fan.wants(EventClass::Forward),
            "fanout of a drop-only sink must not request forwards"
        );
        fan.push(&mut everything);
        for class in EventClass::ALL {
            assert!(fan.wants(class), "a default sink widens every class");
        }
        for e in sample_events() {
            fan.record(&e);
        }
        drop(fan);
        assert_eq!(drops.seen, 1);
        assert_eq!(everything.injected, 1);
        assert_eq!(everything.delivered, 1);
    }

    #[test]
    fn event_class_covers_every_variant() {
        let classes: Vec<EventClass> = sample_events().iter().map(NetEvent::class).collect();
        assert_eq!(
            classes,
            [
                EventClass::Inject,
                EventClass::Wildcard,
                EventClass::Forward,
                EventClass::Reroute,
                EventClass::Deliver,
                EventClass::Drop,
            ]
        );
        assert_eq!(EventClass::ALL.to_vec(), classes);
    }

    #[test]
    fn in_memory_recorder_aggregates_sample_stream() {
        let mut m = InMemoryRecorder::new();
        for e in sample_events() {
            m.record(&e);
        }
        assert_eq!(m.per_hop_latency.count(), 1);
        assert_eq!(m.per_hop_latency.max(), Some(3)); // arrives 5 − time 2
        assert_eq!(m.queue_wait.max(), Some(1));
        assert_eq!(m.queue_depth.max(), Some(1));
        assert_eq!(m.hops.mean(), 1.0);
        assert_eq!(m.stretch.max(), Some(0));
        assert_eq!(m.latency.max(), Some(5));
        assert_eq!(m.drops_by_reason.get("dead-link"), Some(&1));
        assert_eq!(m.wildcard_by_policy.get("least-loaded"), Some(&1));
        assert_eq!(m.wildcard_by_digit.get(&1), Some(&1));
        let report = m.to_string();
        assert!(report.contains("wildcard resolutions: 1"), "{report}");
        assert!(report.contains("queue depth"), "{report}");
    }

    #[test]
    fn sticky_write_errors_disable_the_sink() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlRecorder::new(Failing);
        assert!(sink.enabled());
        sink.record(&sample_events()[0]);
        assert!(!sink.enabled(), "first failure disables the sink");
        assert!(sink.finish().is_err());
    }
}
