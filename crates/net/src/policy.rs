//! Wildcard-resolution policies: the paper's traffic-balancing remark.
//!
//! §3: *"the site which transmits the message \[may\] select freely one of
//! the neighbors of the specified type, so that the traffic could be more
//! or less balanced."* The policy decides which digit a forwarding node
//! substitutes for a `*` step; experiment E7 measures how much the choice
//! flattens the link-load distribution.

/// How a forwarding node resolves a wildcard `(a, *)` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WildcardPolicy {
    /// Always insert digit 0 — the degenerate policy (no balancing).
    #[default]
    Zero,
    /// Pseudo-random digit, deterministic per (node, time) via the
    /// simulation seed.
    Random,
    /// Per-node round-robin over the `d` digits.
    RoundRobin,
    /// The digit whose outgoing link frees up earliest (join the shortest
    /// queue).
    LeastLoaded,
}

impl WildcardPolicy {
    /// All policies, in a stable order (used by the E7 sweep).
    pub fn all() -> [WildcardPolicy; 4] {
        [
            WildcardPolicy::Zero,
            WildcardPolicy::Random,
            WildcardPolicy::RoundRobin,
            WildcardPolicy::LeastLoaded,
        ]
    }

    /// Human-readable name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            WildcardPolicy::Zero => "zero",
            WildcardPolicy::Random => "random",
            WildcardPolicy::RoundRobin => "round-robin",
            WildcardPolicy::LeastLoaded => "least-loaded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_policy_once() {
        let all = WildcardPolicy::all();
        assert_eq!(all.len(), 4);
        let names: std::collections::HashSet<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn default_is_the_unbalanced_baseline() {
        assert_eq!(WildcardPolicy::default(), WildcardPolicy::Zero);
    }
}
