//! Source-routing strategies: which algorithm fills the routing-path
//! field.

use debruijn_core::distance::undirected::Engine;
use debruijn_core::routing::RoutingScratch;
use debruijn_core::{routing, RoutePath, Word};

/// The algorithm a source node uses to compute the routing-path field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouterKind {
    /// The always-`k`-hops left-shift route (baseline; works in both the
    /// uni- and bi-directional network).
    Trivial,
    /// The paper's Algorithm 1: optimal in the uni-directional network.
    Algorithm1,
    /// The paper's Algorithm 2: optimal in the bi-directional network,
    /// `O(k²)` route computation.
    #[default]
    Algorithm2,
    /// The paper's Algorithm 4: optimal in the bi-directional network,
    /// `O(k)` route computation via suffix trees.
    Algorithm4,
    /// Multipath: the source picks uniformly at random among *all*
    /// shortest routes (`routing::all_shortest_routes`) — path diversity
    /// on top of the wildcard freedom. Outside the simulator (where the
    /// seeded RNG lives), [`RouterKind::route`] deterministically returns
    /// the Algorithm 2 representative.
    Multipath,
}

impl RouterKind {
    /// Computes the routing path from `x` to `y`.
    ///
    /// # Panics
    ///
    /// Panics if the words are not in the same `DG(d,k)`.
    pub fn route(&self, x: &Word, y: &Word) -> RoutePath {
        let mut out = RoutePath::empty();
        self.route_into(x, y, &mut RoutingScratch::new(), &mut out);
        out
    }

    /// Allocation-free variant of [`RouterKind::route`]: rebuilds `out`
    /// in place, reusing the scratch's buffers. The simulator's hot loop
    /// and the batch drivers call this with one scratch per worker.
    ///
    /// # Panics
    ///
    /// Panics if the words are not in the same `DG(d,k)`.
    pub fn route_into(
        &self,
        x: &Word,
        y: &Word,
        scratch: &mut RoutingScratch,
        out: &mut RoutePath,
    ) {
        match self {
            RouterKind::Trivial => {
                if x == y {
                    out.clear();
                } else {
                    routing::trivial_route_into(y, out);
                }
            }
            RouterKind::Algorithm1 => routing::algorithm1_into(x, y, scratch, out),
            RouterKind::Algorithm2 | RouterKind::Multipath => {
                routing::route_with_engine_into(x, y, Engine::MorrisPratt, out)
            }
            RouterKind::Algorithm4 => {
                routing::route_with_engine_into(x, y, Engine::SuffixTree, out)
            }
        }
    }

    /// Whether the routes may use right shifts (requires the
    /// bi-directional network).
    pub fn needs_bidirectional(&self) -> bool {
        matches!(
            self,
            RouterKind::Algorithm2 | RouterKind::Algorithm4 | RouterKind::Multipath
        )
    }

    /// Human-readable name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::Trivial => "trivial",
            RouterKind::Algorithm1 => "algorithm-1",
            RouterKind::Algorithm2 => "algorithm-2",
            RouterKind::Algorithm4 => "algorithm-4",
            RouterKind::Multipath => "multipath",
        }
    }

    /// The four single-path strategies, in a stable order (used by the E6
    /// sweep); [`RouterKind::Multipath`] is compared separately in E7.
    pub fn all() -> [RouterKind; 4] {
        [
            RouterKind::Trivial,
            RouterKind::Algorithm1,
            RouterKind::Algorithm2,
            RouterKind::Algorithm4,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::{distance, DeBruijn};

    #[test]
    fn all_routers_produce_valid_routes() {
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                for r in RouterKind::all() {
                    let p = r.route(&x, &y);
                    assert!(p.leads_to(&x, &y), "{} failed {x}->{y}", r.name());
                }
            }
        }
    }

    #[test]
    fn optimal_routers_match_their_distances() {
        let g = DeBruijn::new(3, 3).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                assert_eq!(
                    RouterKind::Algorithm1.route(&x, &y).len(),
                    distance::directed::distance(&x, &y)
                );
                let und = distance::undirected::distance(&x, &y);
                assert_eq!(RouterKind::Algorithm2.route(&x, &y).len(), und);
                assert_eq!(RouterKind::Algorithm4.route(&x, &y).len(), und);
            }
        }
    }

    #[test]
    fn trivial_routes_are_k_hops_unless_self() {
        let g = DeBruijn::new(2, 5).unwrap();
        let x = g.word_from_rank(3).unwrap();
        let y = g.word_from_rank(17).unwrap();
        assert_eq!(RouterKind::Trivial.route(&x, &y).len(), 5);
        assert!(RouterKind::Trivial.route(&x, &x).is_empty());
    }

    #[test]
    fn bidirectional_flag_is_consistent() {
        assert!(!RouterKind::Trivial.needs_bidirectional());
        assert!(!RouterKind::Algorithm1.needs_bidirectional());
        assert!(RouterKind::Algorithm2.needs_bidirectional());
        assert!(RouterKind::Algorithm4.needs_bidirectional());
    }
}
