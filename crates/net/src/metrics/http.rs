//! Minimal std-only HTTP scrape endpoint.
//!
//! A [`ScrapeServer`] owns a `std::net::TcpListener` and one accept
//! thread; each connection gets a single GET request parsed, routed,
//! and answered with `Connection: close`. That is the entire protocol
//! surface Prometheus scraping needs, which is why the workspace's
//! no-external-dependencies rule costs nothing here — see
//! `docs/adr/0004-metrics-registry-and-flight-recorder.md` for the
//! trade-off against hyper/tokio.
//!
//! Built-in routes: `/metrics` (the registry, Prometheus text format)
//! and `/healthz`. Extra routes plug in via [`HttpHandler`] (the
//! `dbr serve` distance/route query endpoints).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use super::registry::MetricsRegistry;

/// The Prometheus text exposition content type served on `/metrics`.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// One HTTP response produced by a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` header value in seconds (load shedding).
    pub retry_after: Option<u64>,
}

impl HttpResponse {
    /// A `200 OK` plain-text response.
    pub fn ok(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into(),
            retry_after: None,
        }
    }

    /// A `400 Bad Request` plain-text response.
    pub fn bad_request(body: impl Into<String>) -> Self {
        Self {
            status: 400,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into(),
            retry_after: None,
        }
    }

    /// An arbitrary-status plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into(),
            retry_after: None,
        }
    }

    /// A machine-readable error: `{"error":"<kind>","detail":"<detail>"}`
    /// as `application/json`. The detail is JSON-escaped; the kind must
    /// already be a stable kebab-case identifier.
    pub fn json_error(status: u16, kind: &str, detail: &str) -> Self {
        let mut escaped = String::with_capacity(detail.len());
        for c in detail.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write as _;
                    let _ = write!(escaped, "\\u{:04x}", c as u32);
                }
                c => escaped.push(c),
            }
        }
        Self {
            status,
            content_type: "application/json; charset=utf-8".to_string(),
            body: format!("{{\"error\":\"{kind}\",\"detail\":\"{escaped}\"}}\n"),
            retry_after: None,
        }
    }

    /// A `503 Service Unavailable` shed response with `Retry-After`.
    pub fn overloaded(retry_after_secs: u64) -> Self {
        let mut response = Self::json_error(503, "overloaded", "queue full, retry later");
        response.retry_after = Some(retry_after_secs);
        response
    }
}

/// One parsed HTTP request line plus the connection-management headers
/// the servers here care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, ...).
    pub method: String,
    /// Request target: path plus optional query string.
    pub target: String,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection: close`; HTTP/1.0
    /// defaults to close unless `Connection: keep-alive`).
    pub keep_alive: bool,
}

/// Reads one request head from `reader`. `Ok(None)` means the peer
/// closed the connection cleanly between requests (keep-alive end).
///
/// Headers are drained (bounded at 8 KiB) so pipelined clients stay in
/// sync; only the `Connection` header is interpreted.
pub(crate) fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<HttpRequest>> {
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let http10 = parts.next().is_some_and(|v| v == "HTTP/1.0");
    let mut keep_alive = !http10;
    let mut drained = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        drained += n;
        if n == 0 || line == "\r\n" || line == "\n" || drained > 8192 {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    Ok(Some(HttpRequest {
        method,
        target,
        keep_alive,
    }))
}

/// Writes `response` to `stream` with an explicit `Connection` header
/// (`keep-alive` keeps the stream reusable for the next request).
pub(crate) fn write_response(
    stream: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> io::Result<()> {
    let retry = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    // One buffer, one write: `write!` straight into an unbuffered
    // TcpStream would issue a syscall (and, under TCP_NODELAY, a
    // packet) per format fragment.
    let message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n{}",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        retry,
        if keep_alive { "keep-alive" } else { "close" },
        response.body
    );
    stream.write_all(message.as_bytes())?;
    stream.flush()
}

/// A pluggable route: receives the request target (path plus query
/// string, e.g. `/distance?x=0110&y=1011`) and returns `Some` response
/// to claim it, `None` to fall through to `404`.
pub type HttpHandler = Arc<dyn Fn(&str) -> Option<HttpResponse> + Send + Sync>;

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// A background HTTP/1.1 server exposing a [`MetricsRegistry`].
///
/// Binding spawns one accept thread; [`ScrapeServer::shutdown`] (or
/// dropping the server) stops it. [`ScrapeServer::block`] parks the
/// caller on the accept thread for serve-forever CLI modes.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use debruijn_net::metrics::{MetricsRegistry, ScrapeServer};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// registry.counter("dbr_up", "Liveness.").inc();
/// let server = ScrapeServer::bind("127.0.0.1:0", Arc::clone(&registry))?;
/// let body = ScrapeServer::get(server.local_addr(), "/metrics")?;
/// assert!(body.contains("dbr_up 1"));
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `/metrics` and `/healthz`.
    ///
    /// # Errors
    ///
    /// Returns the bind or thread-spawn error.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<MetricsRegistry>) -> io::Result<Self> {
        Self::bind_with_handler(addr, registry, None)
    }

    /// Like [`ScrapeServer::bind`], with an extra route handler
    /// consulted for any target the built-in routes don't claim.
    ///
    /// # Errors
    ///
    /// Returns the bind or thread-spawn error.
    pub fn bind_with_handler(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        handler: Option<HttpHandler>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dbr-scrape".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    // Serve inline: scrape traffic is one request per
                    // connection and tiny; per-connection errors only
                    // affect that client.
                    let _ = serve_connection(&mut stream, &registry, handler.as_ref());
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    /// Parks the calling thread on the accept loop (serve-forever
    /// CLI modes); returns only if the accept thread exits.
    pub fn block(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept call with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }

    /// Convenience test/CLI client: one `GET target` against `addr`,
    /// returning the response body.
    ///
    /// # Errors
    ///
    /// Returns connect/read errors, or [`io::ErrorKind::Other`] on a
    /// non-200 status.
    pub fn get(addr: SocketAddr, target: &str) -> io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: dbr\r\nConnection: close\r\n\r\n"
        )?;
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response)?;
        let (head, body) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| io::Error::other("malformed HTTP response"))?;
        let status = head.split_whitespace().nth(1).unwrap_or("");
        if status != "200" {
            return Err(io::Error::other(format!("HTTP status {status}")));
        }
        Ok(body.to_string())
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Reads one request, routes it, writes one response.
///
/// Scrape traffic is one request per connection, so this server stays
/// close-per-request; the keep-alive query plane lives in
/// [`crate::service::QueryService`], which shares [`read_request`] /
/// [`write_response`].
fn serve_connection(
    stream: &mut TcpStream,
    registry: &Arc<MetricsRegistry>,
    handler: Option<&HttpHandler>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let Some(request) = read_request(&mut reader)? else {
        return Ok(());
    };
    let response = route(&request.method, &request.target, registry, handler);
    let endpoint = match request.target.split('?').next().unwrap_or("") {
        path @ ("/metrics" | "/healthz") => path.to_string(),
        path if response.status != 404 => path.to_string(),
        // Unknown paths share one label to keep cardinality bounded.
        _ => "other".to_string(),
    };
    registry
        .counter_with(
            "dbr_http_requests_total",
            "HTTP requests served, by endpoint and status.",
            &[
                ("endpoint", &endpoint),
                ("status", &response.status.to_string()),
            ],
        )
        .inc();
    write_response(stream, &response, false)
}

fn route(
    method: &str,
    target: &str,
    registry: &Arc<MetricsRegistry>,
    handler: Option<&HttpHandler>,
) -> HttpResponse {
    if method != "GET" {
        return HttpResponse::text(405, "only GET is supported\n");
    }
    match target.split('?').next().unwrap_or("") {
        "/metrics" => HttpResponse {
            status: 200,
            content_type: PROMETHEUS_CONTENT_TYPE.to_string(),
            body: registry.snapshot().render(),
            retry_after: None,
        },
        "/healthz" => HttpResponse::ok("ok\n"),
        _ => {
            if let Some(response) = handler.and_then(|h| h(target)) {
                return response;
            }
            HttpResponse::text(404, "not found\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn test_server() -> (ScrapeServer, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        registry
            .counter_with("dbr_demo_total", "Demo.", &[("kind", "x")])
            .add(5);
        let server = ScrapeServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        (server, registry)
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (server, _registry) = test_server();
        let response = raw_request(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains(PROMETHEUS_CONTENT_TYPE), "{response}");
        assert!(
            response.contains("dbr_demo_total{kind=\"x\"} 5\n"),
            "{response}"
        );
        // Content-Length matches the body exactly.
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        server.shutdown();
    }

    #[test]
    fn healthz_unknown_and_non_get_are_routed() {
        let (server, registry) = test_server();
        let addr = server.local_addr();
        assert_eq!(ScrapeServer::get(addr, "/healthz").unwrap(), "ok\n");
        assert!(ScrapeServer::get(addr, "/nope").is_err());
        let response = raw_request(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405 "), "{response}");
        server.shutdown();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(
                "dbr_http_requests_total",
                &[("endpoint", "/healthz"), ("status", "200")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "dbr_http_requests_total",
                &[("endpoint", "other"), ("status", "404")]
            ),
            Some(1)
        );
    }

    #[test]
    fn custom_handler_claims_unrouted_targets() {
        let registry = Arc::new(MetricsRegistry::new());
        let handler: HttpHandler = Arc::new(|target: &str| {
            target
                .strip_prefix("/echo?")
                .map(|q| HttpResponse::ok(format!("{q}\n")))
        });
        let server =
            ScrapeServer::bind_with_handler("127.0.0.1:0", Arc::clone(&registry), Some(handler))
                .unwrap();
        let addr = server.local_addr();
        assert_eq!(ScrapeServer::get(addr, "/echo?x=1").unwrap(), "x=1\n");
        assert!(ScrapeServer::get(addr, "/other").is_err());
        // Handler-claimed endpoints are counted under their path.
        assert_eq!(
            registry.snapshot().counter_value(
                "dbr_http_requests_total",
                &[("endpoint", "/echo"), ("status", "200")]
            ),
            Some(1)
        );
        server.shutdown();
    }

    #[test]
    fn scrapes_observe_live_updates() {
        let (server, registry) = test_server();
        let addr = server.local_addr();
        let before = ScrapeServer::get(addr, "/metrics").unwrap();
        assert!(
            before.contains("dbr_demo_total{kind=\"x\"} 5\n"),
            "{before}"
        );
        registry
            .counter_with("dbr_demo_total", "Demo.", &[("kind", "x")])
            .add(2);
        let after = ScrapeServer::get(addr, "/metrics").unwrap();
        assert!(after.contains("dbr_demo_total{kind=\"x\"} 7\n"), "{after}");
        server.shutdown();
    }

    #[test]
    fn drop_joins_the_accept_thread() {
        let (server, _registry) = test_server();
        // Dropping must stop the accept loop and join its thread
        // (a hang here fails the test via the harness timeout).
        drop(server);
    }
}
