//! The live metric store: named families of atomic counters, gauges,
//! and mutex-guarded [`LogHistogram`]s.
//!
//! Handles returned by the registry ([`Counter`], [`Gauge`],
//! [`Histogram`]) are cheap `Arc` clones of the underlying storage:
//! hot paths keep their handles and update them without touching the
//! registry again, so a counter increment is one relaxed atomic add
//! and a histogram observation one uncontended mutex lock. The
//! registry itself is only locked to create or enumerate series.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::telemetry::LogHistogram;

use super::export::{
    label_set, valid_metric_name, FamilySnapshot, GaugeMerge, LabelSet, MetricKind, MetricValue,
    MetricsSnapshot,
};

/// A monotone counter handle (clone to share).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: an instantaneous `i64` level (clone to share).
/// Negative values are legal (Prometheus gauges may go below zero,
/// and per-shard levels during sharded replay routinely do).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle backed by a mutex-guarded [`LogHistogram`]
/// (clone to share).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<LogHistogram>>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.lock().expect("histogram lock").record(v);
    }

    /// Copies out the current contents.
    pub fn snapshot(&self) -> LogHistogram {
        self.0.lock().expect("histogram lock").clone()
    }

    /// Folds an externally accumulated histogram into this series
    /// (bucket-wise, same guarantees as [`LogHistogram::merge`]).
    pub fn merge_from(&self, other: &LogHistogram) {
        self.0.lock().expect("histogram lock").merge(other);
    }
}

enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Mutex<LogHistogram>>),
}

impl Series {
    fn kind(&self) -> MetricKind {
        match self {
            Series::Counter(_) => MetricKind::Counter,
            Series::Gauge(_) => MetricKind::Gauge,
            Series::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Family {
    kind: MetricKind,
    help: String,
    gauge_merge: GaugeMerge,
    series: BTreeMap<LabelSet, Series>,
}

/// A collector contributes computed series to every snapshot — the
/// bridge for values that live outside the registry, like the
/// process-global `debruijn-core` profile counters.
type Collector = Box<dyn Fn(&mut MetricsSnapshot) + Send + Sync>;

/// A unified store of named metric families.
///
/// Get-or-create accessors ([`MetricsRegistry::counter_with`] and
/// friends) hand out shareable handles; [`MetricsRegistry::snapshot`]
/// freezes everything into a [`MetricsSnapshot`] for merging or
/// Prometheus rendering. All methods take `&self`, so one registry
/// behind an [`Arc`] serves the simulator, the scrape server, and
/// periodic file exports concurrently.
///
/// # Examples
///
/// ```
/// use debruijn_net::metrics::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let hits = registry.counter_with(
///     "dbr_cache_total",
///     "Cache lookups by outcome.",
///     &[("outcome", "hit")],
/// );
/// hits.inc();
/// let text = registry.snapshot().render();
/// assert!(text.contains("dbr_cache_total{outcome=\"hit\"} 1"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field(
                "families",
                &self.families.lock().expect("registry lock").len(),
            )
            .field(
                "collectors",
                &self.collectors.lock().expect("registry lock").len(),
            )
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        gauge_merge: GaugeMerge,
        make: impl FnOnce() -> Series,
    ) -> Series {
        assert!(
            valid_metric_name(name),
            "invalid Prometheus metric name '{name}'"
        );
        let set = label_set(labels);
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            gauge_merge,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind && family.gauge_merge == gauge_merge,
            "metric '{name}' already registered as a {} ({:?} merge)",
            family.kind.type_name(),
            family.gauge_merge
        );
        let series = family.series.entry(set).or_insert_with(make);
        match series {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        }
    }

    /// Get-or-create the unlabelled counter `name`.
    ///
    /// # Panics
    ///
    /// All accessors panic on an invalid metric or label name, or when
    /// `name` was already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create the counter series `name{labels}`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(
            name,
            help,
            labels,
            MetricKind::Counter,
            GaugeMerge::Sum,
            || Series::Counter(Arc::new(AtomicU64::new(0))),
        ) {
            Series::Counter(c) => Counter(c),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get-or-create the unlabelled gauge `name`, merging by sum
    /// across shards.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create the gauge series `name{labels}` (sum merge).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge_impl(name, help, labels, GaugeMerge::Sum)
    }

    /// Get-or-create the unlabelled gauge `name`, merging by maximum
    /// across shards (watermarks, clocks).
    pub fn max_gauge(&self, name: &str, help: &str) -> Gauge {
        self.max_gauge_with(name, help, &[])
    }

    /// Get-or-create the gauge series `name{labels}` (max merge).
    pub fn max_gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge_impl(name, help, labels, GaugeMerge::Max)
    }

    fn gauge_impl(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        merge: GaugeMerge,
    ) -> Gauge {
        match self.series(name, help, labels, MetricKind::Gauge, merge, || {
            Series::Gauge(Arc::new(AtomicI64::new(0)))
        }) {
            Series::Gauge(g) => Gauge(g),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get-or-create the unlabelled histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create the histogram series `name{labels}`.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(
            name,
            help,
            labels,
            MetricKind::Histogram,
            GaugeMerge::Sum,
            || Series::Histogram(Arc::new(Mutex::new(LogHistogram::new()))),
        ) {
            Series::Histogram(h) => Histogram(h),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers a collector: a hook run on every
    /// [`MetricsRegistry::snapshot`] that contributes computed series
    /// (see [`register_core_profile`](super::register_core_profile)).
    /// Collectors must not call back into this registry's collector
    /// registration.
    pub fn register_collector(
        &self,
        collector: impl Fn(&mut MetricsSnapshot) + Send + Sync + 'static,
    ) {
        self.collectors
            .lock()
            .expect("registry lock")
            .push(Box::new(collector));
    }

    /// Freezes every family (and runs the collectors) into a
    /// [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        {
            // Built directly rather than through the per-series
            // collector hooks (`set_counter` and friends): names and
            // labels were validated at registration, so freezing a
            // series is one label-set clone and one value copy — this
            // path runs on every scrape, concurrent with recording.
            let families = self.families.lock().expect("registry lock");
            for (name, family) in families.iter() {
                let frozen = snap
                    .families
                    .entry(name.clone())
                    .or_insert_with(|| FamilySnapshot {
                        kind: family.kind,
                        help: family.help.clone(),
                        gauge_merge: family.gauge_merge,
                        series: BTreeMap::new(),
                    });
                for (labels, series) in &family.series {
                    debug_assert_eq!(series.kind(), family.kind);
                    let value = match series {
                        Series::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        Series::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                        Series::Histogram(h) => {
                            MetricValue::Histogram(h.lock().expect("histogram lock").clone())
                        }
                    };
                    frozen.series.insert(labels.clone(), value);
                }
            }
        }
        for collector in self.collectors.lock().expect("registry lock").iter() {
            collector(&mut snap);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_series() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("dbr_shared_total", "Shared.");
        let b = registry.counter("dbr_shared_total", "Shared.");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are different series.
        let c = registry.counter_with("dbr_shared_total", "Shared.", &[("x", "1")]);
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_freezes_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("dbr_c_total", "C.").add(7);
        registry.gauge("dbr_g", "G.").set(-2);
        registry.max_gauge("dbr_m", "M.").set(99);
        registry.histogram("dbr_h", "H.").observe(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("dbr_c_total", &[]), Some(7));
        assert_eq!(snap.gauge_value("dbr_g", &[]), Some(-2));
        assert_eq!(snap.gauge_value("dbr_m", &[]), Some(99));
        assert_eq!(snap.histogram_value("dbr_h", &[]).unwrap().count(), 1);
        // Gauge merge modes survive into the snapshot.
        assert_eq!(snap.families["dbr_g"].gauge_merge, GaugeMerge::Sum);
        assert_eq!(snap.families["dbr_m"].gauge_merge, GaugeMerge::Max);
    }

    #[test]
    fn collectors_contribute_to_snapshots() {
        let registry = MetricsRegistry::new();
        registry.register_collector(|snap| {
            snap.set_counter("dbr_computed_total", "Computed.", &[], 5);
        });
        assert_eq!(
            registry.snapshot().counter_value("dbr_computed_total", &[]),
            Some(5)
        );
    }

    #[test]
    fn updates_from_threads_are_all_counted() {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let c = registry.counter("dbr_mt_total", "MT.");
                    let h = registry.histogram("dbr_mt_h", "MT.");
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("dbr_mt_total", &[]), Some(4000));
        assert_eq!(snap.histogram_value("dbr_mt_h", &[]).unwrap().count(), 4000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let registry = MetricsRegistry::new();
        registry.counter("dbr_conflict", "X.");
        registry.gauge("dbr_conflict", "X.");
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    fn invalid_names_panic() {
        MetricsRegistry::new().counter("not a name", "X.");
    }
}
