//! Feeding the registry: the simulator-event recorder, the
//! `debruijn-core` profile-counter collector, and deterministic
//! sharded trace replay.

use std::collections::HashMap;
use std::sync::Arc;

use crate::record::{NetEvent, Recorder};

use super::export::MetricsSnapshot;
use super::registry::{Counter, Gauge, Histogram, MetricsRegistry};

/// A [`Recorder`] that aggregates every [`NetEvent`] into a
/// [`MetricsRegistry`], under stable `dbr_`-prefixed names (see
/// `docs/OBSERVABILITY.md` for the catalog):
///
/// * counters: injections, deliveries, drops by reason, reroutes,
///   wildcard resolutions by policy and digit, and **per-link**
///   forwards (`dbr_link_forward_total{from,to}`);
/// * gauges: messages in flight (sum-merged across shards) and the
///   latest simulator tick seen (max-merged);
/// * histograms: hops, stretch, end-to-end latency, per-hop latency,
///   queue wait, and queue depth.
///
/// Handles are resolved once and cached (per-link and per-digit
/// handles in maps keyed off the hot registry path), so recording
/// costs atomic adds plus one mutex lock per histogram observation.
pub struct RegistryRecorder {
    registry: Arc<MetricsRegistry>,
    injected: Counter,
    delivered: Counter,
    reroutes: Counter,
    dropped: HashMap<&'static str, Counter>,
    wildcard: HashMap<(&'static str, u8), Counter>,
    forwards: HashMap<(u128, u128), Counter>,
    in_flight: Gauge,
    in_flight_level: i64,
    clock: Gauge,
    clock_level: u64,
    hops: Histogram,
    stretch: Histogram,
    latency: Histogram,
    per_hop_latency: Histogram,
    queue_wait: Histogram,
    queue_depth: Histogram,
}

impl RegistryRecorder {
    /// Wires a recorder onto `registry`, creating every fixed family
    /// up front (so `/metrics` shows them, zero-valued, before the
    /// first event).
    pub fn new(registry: &Arc<MetricsRegistry>) -> Self {
        let r = registry.as_ref();
        Self {
            injected: r.counter(
                "dbr_sim_injected_total",
                "Messages injected into the network.",
            ),
            delivered: r.counter(
                "dbr_sim_delivered_total",
                "Messages accepted at their destination.",
            ),
            reroutes: r.counter(
                "dbr_sim_reroutes_total",
                "Fault-avoiding route computations.",
            ),
            dropped: HashMap::new(),
            wildcard: HashMap::new(),
            forwards: HashMap::new(),
            in_flight: r.gauge("dbr_sim_in_flight", "Messages currently in flight."),
            in_flight_level: 0,
            clock: r.max_gauge("dbr_sim_clock_ticks", "Latest simulator tick observed."),
            clock_level: 0,
            hops: r.histogram("dbr_sim_hops", "Hops per delivered message."),
            stretch: r.histogram(
                "dbr_sim_stretch_hops",
                "Hops beyond the fault-free shortest distance, per delivered message.",
            ),
            latency: r.histogram(
                "dbr_sim_latency_ticks",
                "End-to-end delivery latency in ticks.",
            ),
            per_hop_latency: r.histogram(
                "dbr_sim_per_hop_latency_ticks",
                "Handover-to-arrival latency per forward, in ticks.",
            ),
            queue_wait: r.histogram(
                "dbr_sim_queue_wait_ticks",
                "Ticks each forward waited for a busy link.",
            ),
            queue_depth: r.histogram(
                "dbr_sim_queue_depth",
                "Messages queued ahead on the chosen link at handover.",
            ),
            registry: Arc::clone(registry),
        }
    }

    /// The registry this recorder feeds.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn observe_clock(&mut self, time: u64) {
        if time > self.clock_level || self.clock_level == 0 {
            self.clock_level = time;
            self.clock.set(time as i64);
        }
    }

    fn set_in_flight(&mut self, delta: i64) {
        self.in_flight_level += delta;
        self.in_flight.set(self.in_flight_level);
    }
}

impl Recorder for RegistryRecorder {
    fn record(&mut self, event: &NetEvent) {
        self.observe_clock(event.time());
        match event {
            NetEvent::Inject { .. } => {
                self.injected.inc();
                self.set_in_flight(1);
            }
            NetEvent::WildcardResolved { digit, policy, .. } => {
                let registry = &self.registry;
                self.wildcard
                    .entry((policy.name(), *digit))
                    .or_insert_with(|| {
                        registry.counter_with(
                            "dbr_sim_wildcard_resolutions_total",
                            "Wildcard steps resolved, by policy and digit.",
                            &[("policy", policy.name()), ("digit", &digit.to_string())],
                        )
                    })
                    .inc();
            }
            NetEvent::Forward {
                time,
                from,
                to,
                arrives,
                queue_wait,
                queue_depth,
                ..
            } => {
                let registry = &self.registry;
                self.forwards
                    .entry((from.rank(), to.rank()))
                    .or_insert_with(|| {
                        registry.counter_with(
                            "dbr_link_forward_total",
                            "Messages handed to each directed link.",
                            &[("from", &from.to_string()), ("to", &to.to_string())],
                        )
                    })
                    .inc();
                self.per_hop_latency.observe(arrives - time);
                self.queue_wait.observe(*queue_wait);
                self.queue_depth.observe(*queue_depth as u64);
            }
            NetEvent::Reroute { .. } => self.reroutes.inc(),
            NetEvent::Deliver {
                hops,
                latency,
                shortest,
                ..
            } => {
                self.delivered.inc();
                self.hops.observe(*hops as u64);
                self.stretch.observe(hops.saturating_sub(*shortest) as u64);
                self.latency.observe(*latency);
                self.set_in_flight(-1);
            }
            NetEvent::Drop { reason, .. } => {
                let registry = &self.registry;
                self.dropped
                    .entry(reason.name())
                    .or_insert_with(|| {
                        registry.counter_with(
                            "dbr_sim_dropped_total",
                            "Messages lost, by drop reason.",
                            &[("reason", reason.name())],
                        )
                    })
                    .inc();
                self.set_in_flight(-1);
            }
        }
    }
}

/// Registers a collector exposing the process-global `debruijn-core`
/// profile counters (engine dispatch, auto-crossover resolution,
/// convergecast builds/routes, route-cache hit/miss/eviction) on the
/// given registry, so one scrape covers the algorithmic layer and the
/// network layer.
///
/// The exported values come from [`debruijn_core::profile::snapshot`]
/// at scrape time: they are **process-wide and monotone**, covering
/// every thread and every simulation in the process since startup (or
/// the last [`debruijn_core::profile::reset`]) — not just the run
/// driving this registry. See the caveat in `docs/OBSERVABILITY.md`.
pub fn register_core_profile(registry: &MetricsRegistry) {
    registry.register_collector(|snap| {
        let p = debruijn_core::profile::snapshot();
        const ENGINE_HELP: &str = "Undirected distance queries solved, by engine.";
        for (engine, solves) in [
            ("naive", p.engine_naive),
            ("morris-pratt", p.engine_morris_pratt),
            ("suffix-tree", p.engine_suffix_tree),
            ("bit-parallel", p.engine_bit_parallel),
        ] {
            snap.set_counter(
                "dbr_core_engine_solves_total",
                ENGINE_HELP,
                &[("engine", engine)],
                solves,
            );
        }
        const AUTO_HELP: &str = "Engine::Auto dispatch decisions, by chosen engine.";
        for (engine, picks) in [
            ("suffix-tree", p.auto_to_suffix_tree),
            ("bit-parallel", p.auto_to_bit_parallel),
        ] {
            snap.set_counter(
                "dbr_core_auto_select_total",
                AUTO_HELP,
                &[("engine", engine)],
                picks,
            );
        }
        const CONVERGECAST_HELP: &str = "Convergecast router activity, by event.";
        for (event, n) in [
            ("build", p.convergecast_builds),
            ("route", p.convergecast_routes),
        ] {
            snap.set_counter(
                "dbr_core_convergecast_total",
                CONVERGECAST_HELP,
                &[("event", event)],
                n,
            );
        }
        const CACHE_HELP: &str = "Route-cache lookups and evictions, by outcome.";
        for (outcome, n) in [
            ("hit", p.route_cache_hits),
            ("miss", p.route_cache_misses),
            ("eviction", p.route_cache_evictions),
        ] {
            snap.set_counter(
                "dbr_core_route_cache_total",
                CACHE_HELP,
                &[("outcome", outcome)],
                n,
            );
        }
    });
}

/// Replays a recorded event stream into per-shard registries on up to
/// `threads` workers and merges the shards deterministically.
///
/// The stream is cut into fixed, thread-count-independent contiguous
/// chunks ([`debruijn_parallel::map_chunks`]); each chunk feeds a
/// fresh [`RegistryRecorder`], and the shard snapshots merge in chunk
/// order. Because counter/histogram merging is exact and gauge
/// families declare their merge mode, the result is **identical for
/// every thread count** — the sharded path is how `dbr trace prom`
/// turns a JSONL trace into a Prometheus snapshot offline. (The live
/// event loop is sequential, so live runs feed one recorder directly;
/// sharding serves replay and post-processing.)
pub fn replay_sharded(threads: usize, events: &[NetEvent]) -> MetricsSnapshot {
    // ~64k events per shard amortizes registry setup without starving
    // parallelism on real traces; the constant only affects speed,
    // never results (the partition is thread-count-independent).
    const CHUNK: usize = 1 << 16;
    let shards = debruijn_parallel::map_chunks(threads, events.len(), CHUNK, |range| {
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = RegistryRecorder::new(&registry);
        for event in &events[range] {
            recorder.record(event);
        }
        registry.snapshot()
    });
    let mut merged = MetricsSnapshot::new();
    for shard in &shards {
        merged.merge(shard);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InMemoryRecorder;
    use crate::sim::{SimConfig, Simulation};
    use crate::workload;
    use debruijn_core::DeBruijn;

    fn recorded_events(messages: usize, seed: u64) -> Vec<NetEvent> {
        struct Capture(Vec<NetEvent>);
        impl Recorder for Capture {
            fn record(&mut self, event: &NetEvent) {
                self.0.push(event.clone());
            }
        }
        let space = DeBruijn::new(2, 5).unwrap();
        let sim = Simulation::new(space, SimConfig::default()).unwrap();
        let traffic = workload::uniform_random(space, messages, seed);
        let mut capture = Capture(Vec::new());
        sim.run_recorded(&traffic, &mut capture);
        capture.0
    }

    #[test]
    fn recorder_agrees_with_in_memory_aggregation() {
        let events = recorded_events(300, 7);
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = RegistryRecorder::new(&registry);
        let mut memory = InMemoryRecorder::new();
        for event in &events {
            recorder.record(event);
            memory.record(event);
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("dbr_sim_injected_total", &[]),
            Some(memory.injected)
        );
        assert_eq!(
            snap.counter_value("dbr_sim_delivered_total", &[]),
            Some(memory.delivered)
        );
        let hops = snap.histogram_value("dbr_sim_hops", &[]).unwrap();
        assert_eq!(hops.count(), memory.hops.count());
        assert_eq!(hops.sum(), memory.hops.sum());
        let wait = snap
            .histogram_value("dbr_sim_queue_wait_ticks", &[])
            .unwrap();
        assert_eq!(wait.count(), memory.queue_wait.count());
        assert_eq!(wait.max(), memory.queue_wait.max());
        // Every message terminated, so the in-flight level returned to 0.
        assert_eq!(snap.gauge_value("dbr_sim_in_flight", &[]), Some(0));
        // The clock watermark is the last event's time.
        let last = events.iter().map(NetEvent::time).max().unwrap();
        assert_eq!(
            snap.gauge_value("dbr_sim_clock_ticks", &[]),
            Some(last as i64)
        );
    }

    #[test]
    fn per_link_forward_counters_sum_to_total_hops() {
        let events = recorded_events(200, 13);
        let forwards = events
            .iter()
            .filter(|e| matches!(e, NetEvent::Forward { .. }))
            .count() as u64;
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = RegistryRecorder::new(&registry);
        for event in &events {
            recorder.record(event);
        }
        let snap = registry.snapshot();
        let family = &snap.families["dbr_link_forward_total"];
        let total: u64 = family
            .series
            .values()
            .map(|v| match v {
                super::super::export::MetricValue::Counter(n) => *n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, forwards);
        assert!(family.series.len() > 1, "traffic spans several links");
    }

    #[test]
    fn sharded_replay_is_thread_count_invariant() {
        let events = recorded_events(400, 99);
        let serial = replay_sharded(1, &events);
        for threads in [2, 4, 8] {
            let parallel = replay_sharded(threads, &events);
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(serial.render(), parallel.render());
        }
        // And the sharded result equals the single-recorder result.
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = RegistryRecorder::new(&registry);
        for event in &events {
            recorder.record(event);
        }
        assert_eq!(serial, registry.snapshot());
    }

    #[test]
    fn core_profile_collector_exports_cache_and_engine_counters() {
        let registry = MetricsRegistry::new();
        register_core_profile(&registry);
        // Drive the profiled layers: an undirected distance query and a
        // cached route computation.
        let x = debruijn_core::Word::parse(2, "010011").unwrap();
        let y = debruijn_core::Word::parse(2, "110100").unwrap();
        debruijn_core::distance::undirected::distance(&x, &y);
        let before = registry.snapshot();
        debruijn_core::distance::undirected::distance(&x, &y);
        let after = registry.snapshot();
        let total = |snap: &MetricsSnapshot| -> u64 {
            [
                ("engine", "naive"),
                ("engine", "morris-pratt"),
                ("engine", "suffix-tree"),
                ("engine", "bit-parallel"),
            ]
            .iter()
            .filter_map(|l| snap.counter_value("dbr_core_engine_solves_total", &[*l]))
            .sum()
        };
        // Counters are process-wide and monotone: concurrent tests may
        // add more, but at least our query is in the delta.
        assert!(total(&after) > total(&before));
        for outcome in ["hit", "miss", "eviction"] {
            assert!(after
                .counter_value("dbr_core_route_cache_total", &[("outcome", outcome)])
                .is_some());
        }
        assert!(after.render().contains("dbr_core_engine_solves_total"));
    }
}
