//! Unified metrics registry, Prometheus-style exporter, and
//! anomaly-triggered flight recorder.
//!
//! The module is organised as three layers that compose but do not
//! require each other:
//!
//! 1. **Collection** — [`MetricsRegistry`] hands out cheap shared
//!    handles ([`Counter`], [`Gauge`], [`Histogram`]) keyed by metric
//!    name and label set, and accepts [collector
//!    closures](MetricsRegistry::register_collector) for values owned
//!    elsewhere (e.g. the process-wide `debruijn-core` profile
//!    counters, wired by [`register_core_profile`]).
//!    [`RegistryRecorder`] is a [`Recorder`](crate::Recorder) that
//!    folds the simulator's event stream into a registry, and
//!    [`replay_sharded`] folds a recorded trace in parallel with a
//!    thread-count-independent result.
//! 2. **Snapshot** — [`MetricsRegistry::snapshot`] freezes everything
//!    into a [`MetricsSnapshot`]: plain sorted data that can be
//!    [merged](MetricsSnapshot::merge) across shards and
//!    [rendered](MetricsSnapshot::render) as Prometheus/OpenMetrics
//!    text.
//! 3. **Exposure** — [`ScrapeServer`] serves `/metrics` and
//!    `/healthz` over a minimal std-only HTTP/1.1 listener, and
//!    [`FlightRecorder`] captures the pre-anomaly event window for
//!    post-mortems when an [`AnomalyTriggers`] condition fires.
//!
//! Design rationale (std-only HTTP, naming conventions, merge
//! semantics) is recorded in
//! `docs/adr/0004-metrics-registry-and-flight-recorder.md`, and the
//! operator-facing walkthrough lives in `docs/OBSERVABILITY.md`.
//!
//! # Examples
//!
//! ```
//! use debruijn_net::metrics::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let hits = registry.counter_with(
//!     "dbr_cache_total",
//!     "Cache lookups by outcome.",
//!     &[("outcome", "hit")],
//! );
//! hits.add(3);
//! let text = registry.snapshot().render();
//! assert!(text.contains("dbr_cache_total{outcome=\"hit\"} 3"));
//! ```

mod export;
mod flight;
mod http;
mod recorder;
mod registry;

pub use export::{FamilySnapshot, GaugeMerge, LabelSet, MetricKind, MetricValue, MetricsSnapshot};
pub use flight::{numbered_path, Anomaly, AnomalyTriggers, Burst, FlightRecorder, MAX_CAPTURES};
pub(crate) use http::{read_request, write_response};
pub use http::{HttpHandler, HttpRequest, HttpResponse, ScrapeServer, PROMETHEUS_CONTENT_TYPE};
pub use recorder::{register_core_profile, replay_sharded, RegistryRecorder};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
