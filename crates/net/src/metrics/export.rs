//! Point-in-time metric snapshots and Prometheus text rendering.
//!
//! A [`MetricsSnapshot`] is the frozen, order-stable view of a
//! [`MetricsRegistry`](super::MetricsRegistry): families sorted by
//! name, series sorted by label set, every value copied out of its
//! atomic or mutex. Snapshots are plain data — they [`merge`] shard-
//! wise (counters add, gauges combine per their declared
//! [`GaugeMerge`] mode, histograms fold via
//! [`LogHistogram::merge`]) and [`render`] into the Prometheus text
//! exposition format, version 0.0.4.
//!
//! [`merge`]: MetricsSnapshot::merge
//! [`render`]: MetricsSnapshot::render

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::telemetry::LogHistogram;

/// A sorted label set: `name → value`. The `BTreeMap` ordering makes
/// series iteration (and therefore rendering and merging) stable.
pub type LabelSet = BTreeMap<String, String>;

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone `u64` counter.
    Counter,
    /// Instantaneous `i64` level.
    Gauge,
    /// Log-bucketed distribution ([`LogHistogram`]).
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` keyword for this kind.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// How a gauge family combines across shards in
/// [`MetricsSnapshot::merge`].
///
/// Counters and histograms merge one way (addition); gauges do not: a
/// per-shard "messages in flight" level sums, while a per-shard
/// "latest tick seen" watermark takes the maximum. The mode is
/// declared once, at registration, so sharded replay stays
/// deterministic without per-call-site decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GaugeMerge {
    /// Shard values add (levels, balances).
    #[default]
    Sum,
    /// The largest shard value wins (watermarks, clocks).
    Max,
}

/// One series' frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram contents.
    Histogram(LogHistogram),
}

/// One family's frozen series.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Exposition type.
    pub kind: MetricKind,
    /// `# HELP` text.
    pub help: String,
    /// Shard-merge mode (meaningful only for gauges).
    pub gauge_merge: GaugeMerge,
    /// Series by label set.
    pub series: BTreeMap<LabelSet, MetricValue>,
}

/// A frozen, mergeable, renderable view of a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Families by metric name.
    pub families: BTreeMap<String, FamilySnapshot>,
}

/// Whether `name` is a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub(crate) fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a legal Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
pub(crate) fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

pub(crate) fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set = LabelSet::new();
    for (name, value) in labels {
        assert!(
            valid_label_name(name),
            "invalid Prometheus label name '{name}'"
        );
        set.insert((*name).to_string(), (*value).to_string());
    }
    set
}

/// Escapes a `# HELP` string: backslashes and newlines.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslashes, double quotes and newlines.
fn escape_label_value(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// The `k="v",...` body of a label set, without braces (empty sets
/// render as the empty string). Rendering computes this once per
/// series and splices in the histogram `le` label per bucket, rather
/// than re-escaping every label on every line.
fn label_body(labels: &LabelSet) -> String {
    let mut body = String::new();
    for (k, v) in labels {
        if !body.is_empty() {
            body.push(',');
        }
        let _ = write!(body, "{k}=\"{}\"", escape_label_value(v));
    }
    body
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the snapshot holds no families.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family_mut(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        gauge_merge: GaugeMerge,
    ) -> &mut FamilySnapshot {
        assert!(
            valid_metric_name(name),
            "invalid Prometheus metric name '{name}'"
        );
        let family = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| FamilySnapshot {
                kind,
                help: help.to_string(),
                gauge_merge,
                series: BTreeMap::new(),
            });
        assert!(
            family.kind == kind,
            "metric '{name}' already registered as a {}",
            family.kind.type_name()
        );
        family
    }

    /// Sets a counter series (collector hook: overwrites any previous
    /// value for the same name and labels).
    pub fn set_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let set = label_set(labels);
        self.family_mut(name, help, MetricKind::Counter, GaugeMerge::Sum)
            .series
            .insert(set, MetricValue::Counter(value));
    }

    /// Sets a gauge series (collector hook), with its shard-merge mode.
    pub fn set_gauge(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        merge: GaugeMerge,
        value: i64,
    ) {
        let set = label_set(labels);
        self.family_mut(name, help, MetricKind::Gauge, merge)
            .series
            .insert(set, MetricValue::Gauge(value));
    }

    /// Sets a histogram series (collector hook).
    pub fn set_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: LogHistogram,
    ) {
        let set = label_set(labels);
        self.family_mut(name, help, MetricKind::Histogram, GaugeMerge::Sum)
            .series
            .insert(set, MetricValue::Histogram(value));
    }

    fn lookup(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.families.get(name)?.series.get(&label_set(labels))
    }

    /// Reads a counter series, `None` if absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.lookup(name, labels)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a gauge series, `None` if absent.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.lookup(name, labels)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a histogram series, `None` if absent.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LogHistogram> {
        match self.lookup(name, labels)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Folds another snapshot into this one, shard-wise: counters add,
    /// gauges combine per their [`GaugeMerge`] mode, histograms fold
    /// via [`LogHistogram::merge`]. Merging is commutative and
    /// associative, so any merge order over a set of shards yields the
    /// same result.
    ///
    /// # Panics
    ///
    /// Panics if the same metric name appears with different kinds.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, family) in &other.families {
            let mine = self
                .families
                .entry(name.clone())
                .or_insert_with(|| FamilySnapshot {
                    kind: family.kind,
                    help: family.help.clone(),
                    gauge_merge: family.gauge_merge,
                    series: BTreeMap::new(),
                });
            assert!(
                mine.kind == family.kind,
                "metric '{name}' merged with conflicting kinds"
            );
            for (labels, value) in &family.series {
                match mine.series.entry(labels.clone()) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(value.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        match (slot.get_mut(), value) {
                            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                                *a = match mine.gauge_merge {
                                    GaugeMerge::Sum => *a + b,
                                    GaugeMerge::Max => (*a).max(*b),
                                };
                            }
                            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                            _ => panic!("metric '{name}' merged with conflicting value types"),
                        }
                    }
                }
            }
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` and `# TYPE` headers per family, one
    /// line per series, histograms as cumulative `_bucket` series plus
    /// `_sum` and `_count`.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1 << 14);
        for (name, family) in &self.families {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.type_name());
            for (labels, value) in &family.series {
                let body = label_body(labels);
                let plain = if body.is_empty() {
                    String::new()
                } else {
                    format!("{{{body}}}")
                };
                match value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(out, "{name}{plain} {v}");
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(out, "{name}{plain} {v}");
                    }
                    MetricValue::Histogram(h) => {
                        let le = |le: &str| {
                            if body.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{{{body},le=\"{le}\"}}")
                            }
                        };
                        let mut cumulative = 0u64;
                        for (_, hi, n) in h.iter() {
                            cumulative += n;
                            let _ =
                                writeln!(out, "{name}_bucket{} {cumulative}", le(&hi.to_string()));
                        }
                        let _ = writeln!(out, "{name}_bucket{} {}", le("+Inf"), h.count());
                        let _ = writeln!(out, "{name}_sum{plain} {}", h.sum());
                        let _ = writeln!(out, "{name}_count{plain} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation_follows_prometheus_rules() {
        for good in ["dbr_sim_injected_total", "a", "_x", "ns:name"] {
            assert!(valid_metric_name(good), "{good}");
        }
        for bad in ["", "9lives", "has space", "dash-ed"] {
            assert!(!valid_metric_name(bad), "{bad}");
        }
        assert!(valid_label_name("reason"));
        assert!(!valid_label_name("le:gal"));
    }

    #[test]
    fn render_emits_help_type_and_series_lines() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("dbr_test_total", "A test counter.", &[], 3);
        snap.set_counter(
            "dbr_drop_total",
            "Drops by reason.",
            &[("reason", "no-route")],
            2,
        );
        snap.set_gauge("dbr_level", "A level.", &[], GaugeMerge::Sum, -4);
        let text = snap.render();
        assert!(
            text.contains("# HELP dbr_test_total A test counter.\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE dbr_test_total counter\n"), "{text}");
        assert!(text.contains("dbr_test_total 3\n"), "{text}");
        assert!(
            text.contains("dbr_drop_total{reason=\"no-route\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE dbr_level gauge\n"), "{text}");
        assert!(text.contains("dbr_level -4\n"), "{text}");
        // Families render in name order.
        assert!(text.find("dbr_drop_total").unwrap() < text.find("dbr_level").unwrap());
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 2, 100] {
            h.record(v);
        }
        let mut snap = MetricsSnapshot::new();
        snap.set_histogram("dbr_lat_ticks", "Latency.", &[("link", "a")], h);
        let text = snap.render();
        assert!(text.contains("# TYPE dbr_lat_ticks histogram\n"), "{text}");
        assert!(
            text.contains("dbr_lat_ticks_bucket{link=\"a\",le=\"1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("dbr_lat_ticks_bucket{link=\"a\",le=\"2\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("dbr_lat_ticks_bucket{link=\"a\",le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("dbr_lat_ticks_sum{link=\"a\"} 104\n"),
            "{text}"
        );
        assert!(
            text.contains("dbr_lat_ticks_count{link=\"a\"} 4\n"),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter(
            "dbr_esc_total",
            "Help with \\ and\nnewline.",
            &[("v", "a\"b\\c")],
            1,
        );
        let text = snap.render();
        assert!(
            text.contains("# HELP dbr_esc_total Help with \\\\ and\\nnewline.\n"),
            "{text}"
        );
        assert!(
            text.contains("dbr_esc_total{v=\"a\\\"b\\\\c\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn merge_adds_counters_and_respects_gauge_modes() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("dbr_c_total", "", &[], 3);
        a.set_gauge("dbr_level", "", &[], GaugeMerge::Sum, 5);
        a.set_gauge("dbr_clock", "", &[], GaugeMerge::Max, 40);
        let mut b = MetricsSnapshot::new();
        b.set_counter("dbr_c_total", "", &[], 4);
        b.set_counter("dbr_other_total", "", &[], 1);
        b.set_gauge("dbr_level", "", &[], GaugeMerge::Sum, -2);
        b.set_gauge("dbr_clock", "", &[], GaugeMerge::Max, 17);
        a.merge(&b);
        assert_eq!(a.counter_value("dbr_c_total", &[]), Some(7));
        assert_eq!(a.counter_value("dbr_other_total", &[]), Some(1));
        assert_eq!(a.gauge_value("dbr_level", &[]), Some(3));
        assert_eq!(a.gauge_value("dbr_clock", &[]), Some(40));
    }

    #[test]
    fn merge_folds_histograms_exactly() {
        let mut one = LogHistogram::new();
        let mut two = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in [1u64, 5, 900] {
            one.record(v);
            whole.record(v);
        }
        for v in [0u64, 70] {
            two.record(v);
            whole.record(v);
        }
        let mut a = MetricsSnapshot::new();
        a.set_histogram("dbr_h", "", &[], one);
        let mut b = MetricsSnapshot::new();
        b.set_histogram("dbr_h", "", &[], two);
        a.merge(&b);
        assert_eq!(a.histogram_value("dbr_h", &[]), Some(&whole));
    }

    #[test]
    fn merge_is_order_independent() {
        let shard = |seed: u64| {
            let mut s = MetricsSnapshot::new();
            s.set_counter("dbr_c_total", "", &[("shard", "x")], seed);
            s.set_gauge("dbr_clock", "", &[], GaugeMerge::Max, seed as i64);
            let mut h = LogHistogram::new();
            h.record(seed * 11);
            s.set_histogram("dbr_h", "", &[], h);
            s
        };
        let shards = [shard(1), shard(2), shard(3)];
        let mut forward = MetricsSnapshot::new();
        for s in &shards {
            forward.merge(s);
        }
        let mut backward = MetricsSnapshot::new();
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.render(), backward.render());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn conflicting_kinds_panic() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("dbr_x", "", &[], 1);
        snap.set_gauge("dbr_x", "", &[], GaugeMerge::Sum, 1);
    }
}
