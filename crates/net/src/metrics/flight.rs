//! Anomaly-triggered post-mortem capture.
//!
//! Aggregate metrics tell you *that* a drop-rate spike or a queue
//! blow-up happened; diagnosing *why* needs the events leading up to
//! it. A [`FlightRecorder`] keeps the last `capacity` [`NetEvent`]s in
//! a ring buffer and watches a set of [`AnomalyTriggers`]; when one
//! fires, the buffered window (ending with the triggering event) is
//! frozen and — if a dump path is configured — written as JSONL via
//! [`render_json`], so the existing `dbr trace summary/links/hist`
//! toolkit works unchanged on the post-mortem dump.
//!
//! The recorder re-arms after each capture: the ring and the burst
//! windows reset so the next capture is again a window *around an
//! onset*, not the tail of the previous one. Dump files are
//! sequence-numbered (`path`, `path.2`, `path.3`, …) so firings never
//! overwrite each other, and [`MAX_CAPTURES`] bounds the total so a
//! sustained breach cannot hoard memory or flood the filesystem.
//! [`FlightRecorder::anomaly`]/[`FlightRecorder::window`] keep their
//! original meaning — the *first* capture, the onset of trouble.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::record::{render_json, DropReason, NetEvent, Recorder};

/// Hard cap on captures per run: a sustained breach (every forward
/// over the queue limit, say) re-fires on each qualifying event, and
/// without a ceiling would buffer an unbounded capture list and write
/// an unbounded dump series.
pub const MAX_CAPTURES: usize = 16;

/// The dump path for capture number `seq` (1-based): capture 1 keeps
/// `path` itself, later captures append the sequence (`path.2`,
/// `path.3`, …), so every file from one run survives side by side and
/// each still ends in a `tail`-able, `dbr trace`-able JSONL name.
pub fn numbered_path(path: &Path, seq: usize) -> PathBuf {
    if seq <= 1 {
        return path.to_path_buf();
    }
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{seq}"));
    path.with_file_name(name)
}

/// A sliding-window rate trigger: fires when `count` qualifying
/// events land within `window` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Qualifying events needed inside the window.
    pub count: usize,
    /// Window length in simulator ticks.
    pub window: u64,
}

/// What the flight recorder watches for.
///
/// Every trigger is optional; [`AnomalyTriggers::default`] enables all
/// four with thresholds loose enough that healthy light traffic never
/// trips them. `AnomalyTriggers { drop_burst: None,
/// ..Default::default() }` style selective disabling is supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyTriggers {
    /// Drop-rate spike: any-reason drops within a sliding window.
    pub drop_burst: Option<Burst>,
    /// Routing-failure burst: `no-route`/`ttl` drops within a sliding
    /// window (the "destination unreachable" signature).
    pub no_route_burst: Option<Burst>,
    /// Queue high-water breach: a forward observing at least this many
    /// messages ahead of it.
    pub queue_depth_limit: Option<usize>,
    /// Stalled link: a forward waiting at least this many ticks.
    pub queue_wait_limit: Option<u64>,
}

impl Default for AnomalyTriggers {
    fn default() -> Self {
        Self {
            drop_burst: Some(Burst {
                count: 8,
                window: 128,
            }),
            no_route_burst: Some(Burst {
                count: 4,
                window: 128,
            }),
            queue_depth_limit: Some(1024),
            queue_wait_limit: Some(4096),
        }
    }
}

/// The anomaly that tripped a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Anomaly {
    /// [`AnomalyTriggers::drop_burst`] fired at tick `at`.
    DropBurst {
        /// Drops observed inside the window.
        count: usize,
        /// Window length in ticks.
        window: u64,
        /// Tick of the triggering drop.
        at: u64,
    },
    /// [`AnomalyTriggers::no_route_burst`] fired at tick `at`.
    NoRouteBurst {
        /// `no-route`/`ttl` drops observed inside the window.
        count: usize,
        /// Window length in ticks.
        window: u64,
        /// Tick of the triggering drop.
        at: u64,
    },
    /// [`AnomalyTriggers::queue_depth_limit`] breached.
    QueueDepthBreach {
        /// Observed queue depth.
        depth: usize,
        /// Configured limit.
        limit: usize,
        /// Tick of the triggering forward.
        at: u64,
    },
    /// [`AnomalyTriggers::queue_wait_limit`] breached.
    StalledLink {
        /// Observed queue wait in ticks.
        queue_wait: u64,
        /// Configured limit.
        limit: u64,
        /// Tick of the triggering forward.
        at: u64,
    },
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::DropBurst { count, window, at } => {
                write!(
                    f,
                    "drop burst: {count} drops within {window} ticks (at tick {at})"
                )
            }
            Anomaly::NoRouteBurst { count, window, at } => write!(
                f,
                "no-route/ttl burst: {count} routing failures within {window} ticks (at tick {at})"
            ),
            Anomaly::QueueDepthBreach { depth, limit, at } => write!(
                f,
                "queue high-water breach: depth {depth} >= limit {limit} (at tick {at})"
            ),
            Anomaly::StalledLink {
                queue_wait,
                limit,
                at,
            } => write!(
                f,
                "stalled link: queue wait {queue_wait} >= limit {limit} ticks (at tick {at})"
            ),
        }
    }
}

/// Fixed-capacity ring buffer of recent events with anomaly triggers.
///
/// Use as a [`Recorder`] sink (typically inside a fanout next to the
/// metrics recorder). After a trigger fires, [`FlightRecorder::anomaly`]
/// reports what happened, [`FlightRecorder::window`] holds the captured
/// pre-anomaly window, and the recorder re-arms for the next onset
/// (up to [`MAX_CAPTURES`], with dump files numbered per
/// [`numbered_path`]). [`FlightRecorder::finish`] surfaces any
/// dump-file write error.
///
/// # Examples
///
/// ```
/// use debruijn_core::Word;
/// use debruijn_net::metrics::{AnomalyTriggers, Burst, FlightRecorder};
/// use debruijn_net::{DropReason, NetEvent, Recorder};
///
/// let triggers = AnomalyTriggers {
///     drop_burst: Some(Burst { count: 2, window: 10 }),
///     ..AnomalyTriggers::default()
/// };
/// let mut flight = FlightRecorder::new(64, triggers);
/// let at = Word::parse(2, "0110")?;
/// for time in [3, 5] {
///     flight.record(&NetEvent::Drop {
///         time,
///         message: 0,
///         reason: DropReason::NoRoute,
///         at: at.clone(),
///         upstream: None,
///     });
/// }
/// assert!(flight.anomaly().is_some());
/// assert_eq!(flight.window().unwrap().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct FlightRecorder {
    capacity: usize,
    triggers: AnomalyTriggers,
    ring: VecDeque<NetEvent>,
    /// Recent drop ticks (any reason), oldest first.
    drop_times: VecDeque<u64>,
    /// Recent `no-route`/`ttl` drop ticks, oldest first.
    no_route_times: VecDeque<u64>,
    /// The frozen windows, one per firing, oldest first.
    captures: Vec<(Anomaly, Vec<NetEvent>)>,
    dump_path: Option<PathBuf>,
    error: Option<io::Error>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize, triggers: AnomalyTriggers) -> Self {
        Self {
            capacity: capacity.max(1),
            triggers,
            ring: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            drop_times: VecDeque::new(),
            no_route_times: VecDeque::new(),
            captures: Vec::new(),
            dump_path: None,
            error: None,
        }
    }

    /// Writes each captured window as JSONL the moment its trigger
    /// fires: the first to `path` itself, later firings to the
    /// sequence-numbered `path.2`, `path.3`, … (see [`numbered_path`]),
    /// so no firing overwrites an earlier one. Files are only created
    /// on an anomaly.
    pub fn with_dump_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump_path = Some(path.into());
        self
    }

    /// The first anomaly that fired — the onset of trouble — if any.
    pub fn anomaly(&self) -> Option<&Anomaly> {
        self.captures.first().map(|(a, _)| a)
    }

    /// The window captured around the *first* anomaly (oldest event
    /// first, ending with the triggering event), if a trigger fired.
    pub fn window(&self) -> Option<&[NetEvent]> {
        self.captures.first().map(|(_, w)| w.as_slice())
    }

    /// How many captures have fired so far (bounded by
    /// [`MAX_CAPTURES`]).
    pub fn capture_count(&self) -> usize {
        self.captures.len()
    }

    /// Every anomaly that fired, in firing order. Capture `i`
    /// (0-based) was dumped to `numbered_path(path, i + 1)`.
    pub fn anomalies(&self) -> impl Iterator<Item = &Anomaly> {
        self.captures.iter().map(|(a, _)| a)
    }

    /// Consumes the recorder: `Ok(Some(anomaly))` with the *first*
    /// anomaly if any trigger fired and every dump was written
    /// cleanly, `Ok(None)` if nothing happened.
    ///
    /// # Errors
    ///
    /// Returns the first dump-file write error.
    pub fn finish(self) -> io::Result<Option<Anomaly>> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(self.captures.into_iter().next().map(|(a, _)| a))
    }

    /// Slides `times` to `[now − window, now]`, pushes `now`, and
    /// reports whether the window now holds `count` entries.
    fn burst_fired(times: &mut VecDeque<u64>, burst: Burst, now: u64) -> bool {
        times.push_back(now);
        let cutoff = now.saturating_sub(burst.window);
        while times.front().is_some_and(|&t| t < cutoff) {
            times.pop_front();
        }
        times.len() >= burst.count
    }

    fn check_triggers(&mut self, event: &NetEvent) -> Option<Anomaly> {
        match event {
            NetEvent::Drop { time, reason, .. } => {
                if matches!(reason, DropReason::NoRoute | DropReason::Ttl) {
                    if let Some(burst) = self.triggers.no_route_burst {
                        if Self::burst_fired(&mut self.no_route_times, burst, *time) {
                            return Some(Anomaly::NoRouteBurst {
                                count: self.no_route_times.len(),
                                window: burst.window,
                                at: *time,
                            });
                        }
                    }
                }
                if let Some(burst) = self.triggers.drop_burst {
                    if Self::burst_fired(&mut self.drop_times, burst, *time) {
                        return Some(Anomaly::DropBurst {
                            count: self.drop_times.len(),
                            window: burst.window,
                            at: *time,
                        });
                    }
                }
                None
            }
            NetEvent::Forward {
                time,
                queue_wait,
                queue_depth,
                ..
            } => {
                if let Some(limit) = self.triggers.queue_depth_limit {
                    if *queue_depth >= limit {
                        return Some(Anomaly::QueueDepthBreach {
                            depth: *queue_depth,
                            limit,
                            at: *time,
                        });
                    }
                }
                if let Some(limit) = self.triggers.queue_wait_limit {
                    if *queue_wait >= limit {
                        return Some(Anomaly::StalledLink {
                            queue_wait: *queue_wait,
                            limit,
                            at: *time,
                        });
                    }
                }
                None
            }
            _ => None,
        }
    }

    fn dump(&mut self, window: &[NetEvent], seq: usize) {
        let Some(path) = &self.dump_path else { return };
        let path = numbered_path(path, seq);
        let result = (|| -> io::Result<()> {
            let mut out = BufWriter::new(File::create(path)?);
            for event in window {
                writeln!(out, "{}", render_json(event))?;
            }
            out.flush()
        })();
        if let Err(e) = result {
            self.error.get_or_insert(e);
        }
    }
}

impl Recorder for FlightRecorder {
    /// Armed until [`MAX_CAPTURES`] windows have fired; afterwards the
    /// recorder stops consuming events.
    fn enabled(&self) -> bool {
        self.captures.len() < MAX_CAPTURES
    }

    fn record(&mut self, event: &NetEvent) {
        if self.captures.len() >= MAX_CAPTURES {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event.clone());
        if let Some(anomaly) = self.check_triggers(event) {
            // Freeze the window, then re-arm fresh: the ring and the
            // burst counters restart so the next capture documents a
            // new onset rather than the fading edge of this one.
            let window: Vec<NetEvent> = self.ring.drain(..).collect();
            self.drop_times.clear();
            self.no_route_times.clear();
            let seq = self.captures.len() + 1;
            self.dump(&window, seq);
            self.captures.push((anomaly, window));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::Word;

    fn drop_at(time: u64, reason: DropReason) -> NetEvent {
        NetEvent::Drop {
            time,
            message: 0,
            reason,
            at: Word::parse(2, "0110").unwrap(),
            upstream: None,
        }
    }

    fn forward_at(time: u64, queue_wait: u64, queue_depth: usize) -> NetEvent {
        let w = Word::parse(2, "0110").unwrap();
        NetEvent::Forward {
            time,
            message: 0,
            hop: 0,
            from: w.clone(),
            to: w.shift_left(1),
            departs: time + queue_wait,
            arrives: time + queue_wait + 1,
            queue_wait,
            queue_depth,
        }
    }

    fn only_drop_burst(count: usize, window: u64) -> AnomalyTriggers {
        AnomalyTriggers {
            drop_burst: Some(Burst { count, window }),
            no_route_burst: None,
            queue_depth_limit: None,
            queue_wait_limit: None,
        }
    }

    #[test]
    fn drop_burst_fires_only_within_the_window() {
        // Three drops spread wider than the window: no anomaly.
        let mut calm = FlightRecorder::new(16, only_drop_burst(3, 10));
        for t in [0, 20, 40, 60] {
            calm.record(&drop_at(t, DropReason::DeadLink));
        }
        assert!(calm.anomaly().is_none());
        assert!(calm.finish().unwrap().is_none());
        // Three drops inside one window: anomaly, window captured.
        let mut hot = FlightRecorder::new(16, only_drop_burst(3, 10));
        hot.record(&forward_at(0, 0, 0));
        for t in [5, 8, 11] {
            hot.record(&drop_at(t, DropReason::DeadLink));
        }
        assert_eq!(
            hot.anomaly(),
            Some(&Anomaly::DropBurst {
                count: 3,
                window: 10,
                at: 11
            })
        );
        // The window ends with the triggering event and includes the
        // preceding context.
        let window = hot.window().unwrap();
        assert_eq!(window.len(), 4);
        assert_eq!(window.last().unwrap().time(), 11);
    }

    #[test]
    fn numbered_paths_keep_the_first_and_suffix_the_rest() {
        let base = Path::new("/tmp/flight.jsonl");
        assert_eq!(numbered_path(base, 1), PathBuf::from("/tmp/flight.jsonl"));
        assert_eq!(numbered_path(base, 2), PathBuf::from("/tmp/flight.jsonl.2"));
        assert_eq!(
            numbered_path(base, 12),
            PathBuf::from("/tmp/flight.jsonl.12")
        );
    }

    #[test]
    fn recorder_rearms_and_numbers_each_capture() {
        let dir = std::env::temp_dir().join("dbr-flight-rearm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dump-{}.jsonl", std::process::id()));
        let mut flight = FlightRecorder::new(16, only_drop_burst(2, 5)).with_dump_path(&path);
        // Firing 1: two drops inside one window.
        flight.record(&drop_at(0, DropReason::NoRoute));
        flight.record(&drop_at(1, DropReason::NoRoute));
        assert_eq!(flight.capture_count(), 1);
        // One drop alone after the reset must NOT fire: the burst
        // counter restarted with the capture.
        flight.record(&forward_at(90, 0, 0));
        flight.record(&drop_at(100, DropReason::DeadLink));
        assert_eq!(flight.capture_count(), 1);
        // Firing 2: a second drop lands inside the fresh window.
        flight.record(&drop_at(101, DropReason::DeadLink));
        assert_eq!(flight.capture_count(), 2);
        // `anomaly()`/`window()` keep meaning the onset capture.
        assert!(matches!(
            flight.anomaly(),
            Some(Anomaly::DropBurst { at: 1, .. })
        ));
        assert_eq!(flight.window().unwrap().len(), 2);
        let second = flight.anomalies().nth(1).unwrap().clone();
        assert!(matches!(second, Anomaly::DropBurst { at: 101, .. }));
        flight.finish().unwrap();
        // Both dumps survive side by side and re-parse as traces.
        let first = std::fs::read_to_string(&path).unwrap();
        let rearmed = std::fs::read_to_string(numbered_path(&path, 2)).unwrap();
        assert_eq!(first.lines().count(), 2, "the onset burst");
        assert_eq!(rearmed.lines().count(), 3, "forward context + the burst");
        for line in first.lines().chain(rearmed.lines()) {
            crate::record::parse_event(2, line).expect("dump line parses");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(numbered_path(&path, 2)).ok();
    }

    #[test]
    fn capture_cap_disarms_the_recorder() {
        let mut flight = FlightRecorder::new(4, only_drop_burst(1, 1));
        for t in 0..(MAX_CAPTURES as u64 + 8) {
            if flight.enabled() {
                flight.record(&drop_at(t, DropReason::DeadLink));
            }
        }
        assert!(!flight.enabled());
        assert_eq!(flight.capture_count(), MAX_CAPTURES);
    }

    #[test]
    fn no_route_burst_counts_ttl_and_no_route_only() {
        let triggers = AnomalyTriggers {
            drop_burst: None,
            no_route_burst: Some(Burst {
                count: 2,
                window: 50,
            }),
            queue_depth_limit: None,
            queue_wait_limit: None,
        };
        let mut flight = FlightRecorder::new(16, triggers);
        // Dead-link drops never qualify.
        for t in [0, 1, 2, 3] {
            flight.record(&drop_at(t, DropReason::DeadLink));
        }
        assert!(flight.anomaly().is_none());
        flight.record(&drop_at(4, DropReason::Ttl));
        flight.record(&drop_at(5, DropReason::NoRoute));
        assert!(matches!(
            flight.anomaly(),
            Some(Anomaly::NoRouteBurst {
                count: 2,
                at: 5,
                ..
            })
        ));
    }

    #[test]
    fn queue_triggers_fire_on_breach() {
        let triggers = AnomalyTriggers {
            drop_burst: None,
            no_route_burst: None,
            queue_depth_limit: Some(4),
            queue_wait_limit: None,
        };
        let mut flight = FlightRecorder::new(16, triggers);
        flight.record(&forward_at(0, 3, 3));
        assert!(flight.anomaly().is_none());
        flight.record(&forward_at(1, 4, 4));
        assert!(matches!(
            flight.anomaly(),
            Some(Anomaly::QueueDepthBreach {
                depth: 4,
                limit: 4,
                ..
            })
        ));
        let triggers = AnomalyTriggers {
            drop_burst: None,
            no_route_burst: None,
            queue_depth_limit: None,
            queue_wait_limit: Some(10),
        };
        let mut flight = FlightRecorder::new(16, triggers);
        flight.record(&forward_at(0, 10, 2));
        assert!(matches!(
            flight.anomaly(),
            Some(Anomaly::StalledLink {
                queue_wait: 10,
                limit: 10,
                ..
            })
        ));
    }

    #[test]
    fn ring_capacity_bounds_the_window() {
        let mut flight = FlightRecorder::new(3, only_drop_burst(2, 5));
        for t in 0..10 {
            flight.record(&forward_at(t, 0, 0));
        }
        flight.record(&drop_at(100, DropReason::NoRoute));
        flight.record(&drop_at(101, DropReason::NoRoute));
        let window = flight.window().unwrap();
        assert_eq!(window.len(), 3, "ring keeps only the last `capacity`");
        assert_eq!(window.last().unwrap().time(), 101);
    }

    #[test]
    fn dump_round_trips_through_the_trace_parser() {
        let dir = std::env::temp_dir().join("dbr-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("dump-{}.jsonl", std::process::id()));
        let mut flight = FlightRecorder::new(16, only_drop_burst(2, 50)).with_dump_path(&path);
        flight.record(&forward_at(0, 1, 1));
        flight.record(&drop_at(2, DropReason::DeadLink));
        flight.record(&drop_at(3, DropReason::DeadLink));
        let anomaly = flight.finish().unwrap().expect("anomaly fired");
        assert!(matches!(anomaly, Anomaly::DropBurst { .. }));
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<NetEvent> = text
            .lines()
            .map(|l| crate::record::parse_event(2, l).unwrap())
            .collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events.last().unwrap().time(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dump_write_errors_surface_in_finish() {
        let mut flight = FlightRecorder::new(4, only_drop_burst(1, 1))
            .with_dump_path("/nonexistent-dir/flight.jsonl");
        flight.record(&drop_at(0, DropReason::NoRoute));
        assert!(flight.anomaly().is_some(), "capture succeeds regardless");
        assert!(flight.finish().is_err());
    }

    /// Skewed (`--workload zipf`) load funnels a large fraction of a
    /// tick-0 burst into the rank-0 destination, so its in-links build
    /// queues far beyond anything uniform traffic produces: the
    /// queue-depth trigger fires from real simulator events, not
    /// synthetic ones.
    #[test]
    fn zipf_skew_trips_the_queue_depth_trigger_in_the_sharded_sim() {
        let space = debruijn_core::DeBruijn::new(2, 6).unwrap();
        let traffic = crate::workload::zipf(space, 3000, 1.2, 21);
        let triggers = AnomalyTriggers {
            drop_burst: None,
            no_route_burst: None,
            queue_depth_limit: Some(64),
            queue_wait_limit: None,
        };
        let mut flight = FlightRecorder::new(256, triggers);
        let sim = crate::shard::ShardedSimulation::new(space, crate::sim::SimConfig::default(), 4)
            .unwrap();
        let report = sim.run_recorded(&traffic, &mut flight);
        assert_eq!(report.delivered, 3000, "healthy network delivers");
        match flight.anomaly() {
            Some(Anomaly::QueueDepthBreach { depth, limit, .. }) => {
                assert!(depth >= limit, "{depth} < {limit}");
            }
            other => panic!("expected a queue-depth breach, got {other:?}"),
        }
        assert!(!flight.window().unwrap().is_empty());
    }

    /// Faulting the zipf-hottest node (rank 0) sheds a burst of
    /// dead-link drops dense enough for the default drop-burst
    /// threshold, and the dump stays a regular trace: every line
    /// re-parses through the `dbr trace` event parser.
    #[test]
    fn zipf_hotspot_fault_trips_the_drop_burst_and_dumps_a_parseable_trace() {
        let space = debruijn_core::DeBruijn::new(2, 6).unwrap();
        let hot = space.word_from_rank(0).unwrap();
        let traffic = crate::workload::zipf(space, 1000, 1.2, 33);
        let to_hot = traffic.iter().filter(|i| i.destination == hot).count();
        assert!(to_hot > 100, "rank 0 draws the skew ({to_hot}/1000)");
        let path =
            std::env::temp_dir().join(format!("dbr-flight-zipf-{}.jsonl", std::process::id()));
        let mut flight = FlightRecorder::new(128, only_drop_burst(8, 128)).with_dump_path(&path);
        let sim = crate::shard::ShardedSimulation::new(space, crate::sim::SimConfig::default(), 4)
            .unwrap()
            .with_faults(vec![hot])
            .unwrap();
        let report = sim.run_recorded(&traffic, &mut flight);
        assert!(report.dropped >= 8, "the faulted hotspot sheds drops");
        assert!(matches!(
            flight.window().unwrap().last(),
            Some(NetEvent::Drop { .. })
        ));
        let anomaly = flight.finish().unwrap().expect("anomaly fired");
        assert!(matches!(anomaly, Anomaly::DropBurst { .. }), "{anomaly:?}");
        let text = std::fs::read_to_string(&path).unwrap();
        for seq in 1..=MAX_CAPTURES {
            std::fs::remove_file(numbered_path(&path, seq)).ok();
        }
        let events: Vec<NetEvent> = text
            .lines()
            .map(|l| crate::record::parse_event(2, l).expect("dump line parses"))
            .collect();
        assert!(events.len() >= 8, "window holds the burst");
    }

    #[test]
    fn anomalies_render_human_readably() {
        let text = Anomaly::DropBurst {
            count: 9,
            window: 128,
            at: 77,
        }
        .to_string();
        assert!(text.contains("9 drops within 128 ticks"), "{text}");
        let text = Anomaly::StalledLink {
            queue_wait: 5000,
            limit: 4096,
            at: 1,
        }
        .to_string();
        assert!(text.contains("stalled link"), "{text}");
    }
}
