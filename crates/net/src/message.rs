//! The paper's five-field message format.
//!
//! §3: *"when a message is generated, it is composed of five fields:
//! control code, source address, destination address, routing path, and
//! the message content."* A forwarding site pops the first `(a, b)` pair
//! from the routing-path field and transmits to the selected neighbor; a
//! site receiving a message with an empty routing path accepts it.

use debruijn_core::{Digit, RoutePath, ShiftKind, Word};

/// The control-code field. The paper leaves its values open; the simulator
/// uses [`ControlCode::Data`] for payload traffic and keeps the other
/// variants for protocol extensions (they are exercised in tests and by
/// the examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ControlCode {
    /// Ordinary payload-bearing message.
    #[default]
    Data,
    /// Network-management ping used by fault detection examples.
    Probe,
    /// Acknowledgement traveling back to a source.
    Ack,
}

/// A message in flight, carrying the paper's five fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Field 1: the control code.
    pub control: ControlCode,
    /// Field 2: the source address.
    pub source: Word,
    /// Field 3: the destination address.
    pub destination: Word,
    /// Field 4: the routing path — remaining `(a, b)` pairs.
    pub route: RoutePath,
    /// Field 5: the message content.
    pub payload: Vec<u8>,
}

impl Message {
    /// Creates a data message with the given route.
    pub fn data(source: Word, destination: Word, route: RoutePath) -> Self {
        Self {
            control: ControlCode::Data,
            source,
            destination,
            route,
            payload: Vec::new(),
        }
    }

    /// Whether the routing-path field is exhausted (message is at its
    /// destination per the paper's acceptance rule).
    pub fn is_arrived(&self) -> bool {
        self.route.is_empty()
    }

    /// Pops the first routing step, returning it and the shortened
    /// message; `None` if the route is empty.
    ///
    /// This is the paper's forwarding rule: *"the site removes the first
    /// element (pair) from the field and transmits the message to the
    /// neighbor"*.
    pub fn pop_step(mut self) -> Option<(PoppedStep, Message)> {
        if self.route.is_empty() {
            return None;
        }
        let mut steps = self.route.steps().to_vec();
        let first = steps.remove(0);
        self.route = RoutePath::new(steps);
        Some((
            PoppedStep {
                shift: first.shift,
                digit: first.digit,
            },
            self,
        ))
    }
}

/// The `(a, b)` pair removed from a message's routing-path field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoppedStep {
    /// Neighbor type (`a`): left or right shift.
    pub shift: ShiftKind,
    /// Neighbor selector (`b`): exact digit or wildcard.
    pub digit: Digit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use debruijn_core::Step;

    fn w(s: &str) -> Word {
        Word::parse(2, s).unwrap()
    }

    #[test]
    fn empty_route_means_arrived() {
        let m = Message::data(w("00"), w("00"), RoutePath::empty());
        assert!(m.is_arrived());
        assert!(m.pop_step().is_none());
    }

    #[test]
    fn pop_step_consumes_in_order() {
        let route = RoutePath::new(vec![Step::left(1), Step::right(0)]);
        let m = Message::data(w("00"), w("10"), route);
        let (s1, m) = m.pop_step().unwrap();
        assert_eq!(s1.shift, ShiftKind::Left);
        let (s2, m) = m.pop_step().unwrap();
        assert_eq!(s2.shift, ShiftKind::Right);
        assert!(m.is_arrived());
    }

    #[test]
    fn popping_preserves_other_fields() {
        let route = RoutePath::new(vec![Step::left(1)]);
        let mut m = Message::data(w("01"), w("11"), route);
        m.payload = vec![1, 2, 3];
        m.control = ControlCode::Probe;
        let (_, m2) = m.clone().pop_step().unwrap();
        assert_eq!(m2.payload, m.payload);
        assert_eq!(m2.control, m.control);
        assert_eq!(m2.source, m.source);
        assert_eq!(m2.destination, m.destination);
    }
}
