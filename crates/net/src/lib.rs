//! Deterministic discrete-event simulator for de Bruijn networks.
//!
//! The paper describes the *protocol* of a de Bruijn multiprocessor
//! network — five-field messages whose routing-path field is a list of
//! `(a, b)` shift steps, popped one per hop (§3) — but contains no system
//! evaluation. This crate supplies the missing substrate: a deterministic
//! store-and-forward simulator that executes exactly that protocol, so the
//! routing algorithms can be evaluated end-to-end (experiments E6–E8):
//!
//! * [`Message`] — the paper's five fields: control code, source,
//!   destination, routing path, content;
//! * [`RouterKind`] — which algorithm the source uses to fill the
//!   routing-path field (trivial `k`-hop, Algorithm 1, 2 or 4);
//! * [`WildcardPolicy`] — how forwarding nodes resolve the paper's `*`
//!   steps (fixed digit, random, round-robin, or least-loaded link — the
//!   traffic balancing the paper's §3 remark anticipates);
//! * [`Simulation`] — event-driven execution with per-link FIFO queues,
//!   configurable latency/service times, node fault injection and
//!   source-level rerouting;
//! * [`workload`] — reproducible traffic patterns (uniform random,
//!   permutation, hotspot, all-pairs);
//! * [`record`] — pluggable observability: a [`Recorder`] sink trait fed
//!   span-style [`NetEvent`]s by [`Simulation::run_recorded`], with
//!   in-memory histogram/counter aggregation ([`InMemoryRecorder`]) and
//!   line-delimited JSON export ([`record::JsonlRecorder`]);
//! * [`telemetry`] — bounded-memory aggregation for production-scale
//!   runs: `O(1)`-record log-bucketed histograms ([`LogHistogram`]),
//!   per-link/per-node accumulators ([`Telemetry`]), periodic progress
//!   snapshots ([`SnapshotRecorder`]), and Chrome trace-event export
//!   ([`ChromeTraceRecorder`]);
//! * [`metrics`] — a unified [`MetricsRegistry`](metrics::MetricsRegistry)
//!   of named counters/gauges/histograms with Prometheus text export, a
//!   std-only HTTP scrape server ([`metrics::ScrapeServer`]), and an
//!   anomaly-triggered [`metrics::FlightRecorder`] for post-mortem event
//!   capture;
//! * [`service`] — a thread-per-core query service over the routing
//!   engines ([`QueryService`]): HTTP/1.1 keep-alive, per-worker
//!   sharded route caches, request batching, and bounded admission
//!   queues that shed overload with `503` + `Retry-After` — answers
//!   byte-identical to the direct engine at any thread count.
//!
//! Everything is deterministic given the seed in [`SimConfig`].
//!
//! # Example
//!
//! ```
//! use debruijn_core::DeBruijn;
//! use debruijn_net::{RouterKind, SimConfig, Simulation, workload};
//!
//! let space = DeBruijn::new(2, 4)?;
//! let config = SimConfig { router: RouterKind::Algorithm2, ..SimConfig::default() };
//! let sim = Simulation::new(space, config)?;
//! let traffic = workload::uniform_random(space, 200, 7);
//! let report = sim.run(&traffic);
//! assert_eq!(report.delivered, 200);
//! // Optimal routing averages well below the k-hop trivial baseline.
//! assert!(report.mean_hops() < 4.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod message;
pub mod metrics;
pub mod monitor;
pub mod policy;
pub mod profiler;
pub mod record;
pub mod router;
pub mod service;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod telemetry;
pub mod workload;

pub use message::{ControlCode, Message};
pub use monitor::{Localizer, MonitorConfig, MonitorSet, Placement, Verdict};
pub use policy::WildcardPolicy;
pub use profiler::{
    CriticalPath, EngineProfile, HopSpan, Phase, ProfileConfig, SampledDelivery, SpanSampler,
};
pub use record::{DropReason, EventClass, InMemoryRecorder, NetEvent, NullRecorder, Recorder};
pub use router::RouterKind;
pub use service::{QueryService, ServiceConfig};
pub use shard::{NextHopMode, ShardedSimulation};
pub use sim::{
    FaultHandling, ForwardingMode, Injection, LinkParams, NetError, SimConfig, Simulation,
    TraceEvent, TraceKind,
};
pub use stats::{Histogram, SimReport};
pub use telemetry::{ChromeTraceRecorder, LogHistogram, SnapshotRecorder, Telemetry};
