//! Reproducible traffic patterns for the simulator.

use debruijn_core::rng::SplitMix64;
use debruijn_core::{DeBruijn, Word};

use crate::sim::Injection;

fn word_at(space: DeBruijn, rank: usize) -> Word {
    space
        .word_from_rank(rank as u128)
        .expect("rank drawn below order")
}

fn order(space: DeBruijn) -> usize {
    space
        .order_usize()
        .expect("workload generation requires an enumerable space")
}

/// `n` messages with uniformly random distinct endpoints, injected one per
/// tick. Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if the space has fewer than two vertices or is too large to
/// enumerate.
pub fn uniform_random(space: DeBruijn, n: usize, seed: u64) -> Vec<Injection> {
    let order = order(space);
    assert!(order >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let s = rng.below_usize(order);
            let mut t = rng.below_usize(order - 1);
            if t >= s {
                t += 1;
            }
            Injection {
                time: i as u64,
                source: word_at(space, s),
                destination: word_at(space, t),
            }
        })
        .collect()
}

/// Like [`uniform_random`], but all `n` messages are injected at tick 0
/// — a saturating burst that keeps every node busy from the first tick.
/// This is the workload the scaling benchmarks use: one message per tick
/// leaves parallel shards idle, a burst exposes the real per-tick
/// parallelism. Deterministic for a fixed seed, and endpoint-identical
/// to [`uniform_random`] with the same seed.
///
/// # Panics
///
/// Panics if the space has fewer than two vertices or is too large to
/// enumerate.
pub fn uniform_burst(space: DeBruijn, n: usize, seed: u64) -> Vec<Injection> {
    let mut traffic = uniform_random(space, n, seed);
    for inj in &mut traffic {
        inj.time = 0;
    }
    traffic
}

/// A random derangement workload: every node sends exactly one message to
/// its image under a fixed-point-free random permutation, all injected at
/// tick 0. The classical stress pattern for interconnection networks.
///
/// # Panics
///
/// Panics if the space has fewer than two vertices or is too large to
/// enumerate.
pub fn permutation(space: DeBruijn, seed: u64) -> Vec<Injection> {
    let order = order(space);
    assert!(order >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(seed);
    let mut image: Vec<usize> = (0..order).collect();
    // Fisher–Yates, then remove fixed points by cycling them among
    // themselves (or with a neighbor when only one remains).
    rng.shuffle(&mut image);
    let fixed: Vec<usize> = (0..order).filter(|&i| image[i] == i).collect();
    match fixed.len() {
        0 => {}
        1 => {
            let i = fixed[0];
            let j = (i + 1) % order;
            image.swap(i, j);
        }
        _ => {
            for m in 0..fixed.len() {
                image[fixed[m]] = fixed[(m + 1) % fixed.len()];
            }
        }
    }
    (0..order)
        .map(|i| Injection {
            time: 0,
            source: word_at(space, i),
            destination: word_at(space, image[i]),
        })
        .collect()
}

/// Hotspot traffic: each of `n` messages goes to `hot` with probability
/// `hot_fraction`, otherwise to a uniform destination. Sources are
/// uniform. Injected one per tick.
///
/// # Panics
///
/// Panics if `hot` is not a vertex of `space`, `hot_fraction` is outside
/// `[0, 1]`, or the space is too small/large.
pub fn hotspot(
    space: DeBruijn,
    n: usize,
    hot: &Word,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Injection> {
    assert!(space.contains(hot), "hotspot must be a vertex of the space");
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot_fraction must lie in [0, 1]"
    );
    let order = order(space);
    assert!(order >= 2, "need at least two vertices");
    let hot_rank = hot.rank() as usize;
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let dst_rank = if rng.next_bool(hot_fraction) {
                hot_rank
            } else {
                rng.below_usize(order)
            };
            let mut src = rng.below_usize(order - 1);
            if src >= dst_rank {
                src += 1;
            }
            Injection {
                time: i as u64,
                source: word_at(space, src),
                destination: word_at(space, dst_rank),
            }
        })
        .collect()
}

/// Zipf-skewed burst traffic: all `n` messages are injected at tick 0,
/// destinations drawn with probability proportional to
/// `1 / (rank + 1)^exponent`, sources uniform among the other nodes.
///
/// `exponent = 0` degenerates to [`uniform_burst`]-style uniformity;
/// `exponent ≈ 1` is the classic web/content skew. Because ranks are
/// hot in *numeric* order, the hottest destinations are contiguous —
/// they pile into the lowest shard of the sharded simulator, which is
/// exactly the mailbox/cache skew this workload exists to exercise
/// (see `docs/SCALING.md`). Deterministic for a fixed seed via
/// [`SplitMix64`]; `O(d^k)` memory for the cumulative weight table.
///
/// # Panics
///
/// Panics if the space has fewer than two vertices or is too large to
/// enumerate, or if `exponent` is negative or non-finite.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::workload;
///
/// let space = DeBruijn::new(2, 6)?;
/// let traffic = workload::zipf(space, 1000, 1.0, 7);
/// assert_eq!(traffic.len(), 1000);
/// // Rank 0 is the hottest destination by construction.
/// let hot = traffic
///     .iter()
///     .filter(|inj| inj.destination.rank() == 0)
///     .count();
/// assert!(hot > 1000 / 64, "skewed well above the uniform share");
/// # Ok::<(), debruijn_core::Error>(())
/// ```
pub fn zipf(space: DeBruijn, n: usize, exponent: f64, seed: u64) -> Vec<Injection> {
    assert!(
        exponent >= 0.0 && exponent.is_finite(),
        "exponent must be finite and non-negative"
    );
    let order = order(space);
    assert!(order >= 2, "need at least two vertices");
    // Cumulative weights once, then one binary search per draw.
    let mut cumulative = Vec::with_capacity(order);
    let mut total = 0.0f64;
    for rank in 0..order {
        total += 1.0 / ((rank + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let u = rng.next_f64() * total;
            let dst = cumulative.partition_point(|&c| c <= u).min(order - 1);
            let mut src = rng.below_usize(order - 1);
            if src >= dst {
                src += 1;
            }
            Injection {
                time: 0,
                source: word_at(space, src),
                destination: word_at(space, dst),
            }
        })
        .collect()
}

/// Every ordered pair `(x, y)` with `x != y`, all injected at tick 0.
/// Used to measure exact hop-count averages (experiment E6).
///
/// # Panics
///
/// Panics if the space is too large to enumerate.
pub fn all_pairs(space: DeBruijn) -> Vec<Injection> {
    let mut out = Vec::new();
    for x in space.vertices() {
        for y in space.vertices() {
            if x != y {
                out.push(Injection {
                    time: 0,
                    source: x.clone(),
                    destination: y,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(d: u8, k: usize) -> DeBruijn {
        DeBruijn::new(d, k).unwrap()
    }

    #[test]
    fn uniform_random_has_distinct_endpoints() {
        let t = uniform_random(space(2, 3), 500, 1);
        assert_eq!(t.len(), 500);
        for inj in &t {
            assert_ne!(inj.source, inj.destination);
        }
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        assert_eq!(
            uniform_random(space(2, 4), 50, 7),
            uniform_random(space(2, 4), 50, 7)
        );
        assert_ne!(
            uniform_random(space(2, 4), 50, 7),
            uniform_random(space(2, 4), 50, 8)
        );
    }

    #[test]
    fn permutation_is_a_derangement() {
        for seed in 0..20u64 {
            let t = permutation(space(2, 4), seed);
            assert_eq!(t.len(), 16, "every node sends exactly once");
            let mut sources: Vec<u128> = t.iter().map(|i| i.source.rank()).collect();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), 16, "duplicate sources (seed {seed})");
            let mut dests: Vec<u128> = t.iter().map(|i| i.destination.rank()).collect();
            dests.sort_unstable();
            dests.dedup();
            assert_eq!(dests.len(), 16, "not a permutation (seed {seed})");
            for inj in &t {
                assert_ne!(inj.source, inj.destination, "fixed point (seed {seed})");
                assert_eq!(inj.time, 0);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let sp = space(2, 4);
        let hot = sp.word_from_rank(6).unwrap();
        let t = hotspot(sp, 1000, &hot, 0.8, 5);
        let to_hot = t.iter().filter(|i| i.destination == hot).count();
        assert!(to_hot > 700, "only {to_hot} of 1000 went to the hotspot");
        for inj in &t {
            assert_ne!(inj.source, inj.destination);
        }
    }

    #[test]
    fn hotspot_validates_arguments() {
        let sp = space(2, 3);
        let hot = sp.word_from_rank(0).unwrap();
        let result = std::panic::catch_unwind(|| hotspot(sp, 10, &hot, 1.5, 0));
        assert!(result.is_err());
    }

    #[test]
    fn zipf_is_deterministic_and_shaped_like_a_power_law() {
        let sp = space(2, 5);
        let a = zipf(sp, 20_000, 1.0, 11);
        assert_eq!(a, zipf(sp, 20_000, 1.0, 11));
        assert_ne!(a, zipf(sp, 20_000, 1.0, 12));
        for inj in &a {
            assert_ne!(inj.source, inj.destination);
            assert_eq!(inj.time, 0, "zipf is a burst workload");
        }
        // Frequency of rank r should scale like 1/(r+1): rank 0 roughly
        // twice as popular as rank 1, four times rank 3. Wide tolerances
        // keep the check statistical rather than exact.
        let count = |r: u128| a.iter().filter(|i| i.destination.rank() == r).count() as f64;
        let (c0, c1, c3) = (count(0), count(1), count(3));
        assert!(c0 / c1 > 1.5 && c0 / c1 < 2.5, "c0/c1 = {}", c0 / c1);
        assert!(c0 / c3 > 3.0 && c0 / c3 < 5.0, "c0/c3 = {}", c0 / c3);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform_and_bad_exponents_panic() {
        let sp = space(2, 4);
        let t = zipf(sp, 16_000, 0.0, 3);
        for rank in 0..16u128 {
            let c = t.iter().filter(|i| i.destination.rank() == rank).count();
            assert!((700..1300).contains(&c), "rank {rank} drew {c} of 16000");
        }
        assert!(std::panic::catch_unwind(|| zipf(sp, 10, -1.0, 0)).is_err());
        assert!(std::panic::catch_unwind(|| zipf(sp, 10, f64::NAN, 0)).is_err());
    }

    #[test]
    fn all_pairs_counts_n_times_n_minus_one() {
        let t = all_pairs(space(3, 2));
        assert_eq!(t.len(), 9 * 8);
    }
}
