//! Reproducible traffic patterns for the simulator.

use debruijn_core::rng::SplitMix64;
use debruijn_core::{DeBruijn, Word};

use crate::sim::Injection;

fn word_at(space: DeBruijn, rank: usize) -> Word {
    space
        .word_from_rank(rank as u128)
        .expect("rank drawn below order")
}

fn order(space: DeBruijn) -> usize {
    space
        .order_usize()
        .expect("workload generation requires an enumerable space")
}

/// `n` messages with uniformly random distinct endpoints, injected one per
/// tick. Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if the space has fewer than two vertices or is too large to
/// enumerate.
pub fn uniform_random(space: DeBruijn, n: usize, seed: u64) -> Vec<Injection> {
    let order = order(space);
    assert!(order >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let s = rng.below_usize(order);
            let mut t = rng.below_usize(order - 1);
            if t >= s {
                t += 1;
            }
            Injection {
                time: i as u64,
                source: word_at(space, s),
                destination: word_at(space, t),
            }
        })
        .collect()
}

/// Like [`uniform_random`], but all `n` messages are injected at tick 0
/// — a saturating burst that keeps every node busy from the first tick.
/// This is the workload the scaling benchmarks use: one message per tick
/// leaves parallel shards idle, a burst exposes the real per-tick
/// parallelism. Deterministic for a fixed seed, and endpoint-identical
/// to [`uniform_random`] with the same seed.
///
/// # Panics
///
/// Panics if the space has fewer than two vertices or is too large to
/// enumerate.
pub fn uniform_burst(space: DeBruijn, n: usize, seed: u64) -> Vec<Injection> {
    let mut traffic = uniform_random(space, n, seed);
    for inj in &mut traffic {
        inj.time = 0;
    }
    traffic
}

/// A random derangement workload: every node sends exactly one message to
/// its image under a fixed-point-free random permutation, all injected at
/// tick 0. The classical stress pattern for interconnection networks.
///
/// # Panics
///
/// Panics if the space has fewer than two vertices or is too large to
/// enumerate.
pub fn permutation(space: DeBruijn, seed: u64) -> Vec<Injection> {
    let order = order(space);
    assert!(order >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(seed);
    let mut image: Vec<usize> = (0..order).collect();
    // Fisher–Yates, then remove fixed points by cycling them among
    // themselves (or with a neighbor when only one remains).
    rng.shuffle(&mut image);
    let fixed: Vec<usize> = (0..order).filter(|&i| image[i] == i).collect();
    match fixed.len() {
        0 => {}
        1 => {
            let i = fixed[0];
            let j = (i + 1) % order;
            image.swap(i, j);
        }
        _ => {
            for m in 0..fixed.len() {
                image[fixed[m]] = fixed[(m + 1) % fixed.len()];
            }
        }
    }
    (0..order)
        .map(|i| Injection {
            time: 0,
            source: word_at(space, i),
            destination: word_at(space, image[i]),
        })
        .collect()
}

/// Hotspot traffic: each of `n` messages goes to `hot` with probability
/// `hot_fraction`, otherwise to a uniform destination. Sources are
/// uniform. Injected one per tick.
///
/// # Panics
///
/// Panics if `hot` is not a vertex of `space`, `hot_fraction` is outside
/// `[0, 1]`, or the space is too small/large.
pub fn hotspot(
    space: DeBruijn,
    n: usize,
    hot: &Word,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Injection> {
    assert!(space.contains(hot), "hotspot must be a vertex of the space");
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot_fraction must lie in [0, 1]"
    );
    let order = order(space);
    assert!(order >= 2, "need at least two vertices");
    let hot_rank = hot.rank() as usize;
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let dst_rank = if rng.next_bool(hot_fraction) {
                hot_rank
            } else {
                rng.below_usize(order)
            };
            let mut src = rng.below_usize(order - 1);
            if src >= dst_rank {
                src += 1;
            }
            Injection {
                time: i as u64,
                source: word_at(space, src),
                destination: word_at(space, dst_rank),
            }
        })
        .collect()
}

/// Every ordered pair `(x, y)` with `x != y`, all injected at tick 0.
/// Used to measure exact hop-count averages (experiment E6).
///
/// # Panics
///
/// Panics if the space is too large to enumerate.
pub fn all_pairs(space: DeBruijn) -> Vec<Injection> {
    let mut out = Vec::new();
    for x in space.vertices() {
        for y in space.vertices() {
            if x != y {
                out.push(Injection {
                    time: 0,
                    source: x.clone(),
                    destination: y,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(d: u8, k: usize) -> DeBruijn {
        DeBruijn::new(d, k).unwrap()
    }

    #[test]
    fn uniform_random_has_distinct_endpoints() {
        let t = uniform_random(space(2, 3), 500, 1);
        assert_eq!(t.len(), 500);
        for inj in &t {
            assert_ne!(inj.source, inj.destination);
        }
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        assert_eq!(
            uniform_random(space(2, 4), 50, 7),
            uniform_random(space(2, 4), 50, 7)
        );
        assert_ne!(
            uniform_random(space(2, 4), 50, 7),
            uniform_random(space(2, 4), 50, 8)
        );
    }

    #[test]
    fn permutation_is_a_derangement() {
        for seed in 0..20u64 {
            let t = permutation(space(2, 4), seed);
            assert_eq!(t.len(), 16, "every node sends exactly once");
            let mut sources: Vec<u128> = t.iter().map(|i| i.source.rank()).collect();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), 16, "duplicate sources (seed {seed})");
            let mut dests: Vec<u128> = t.iter().map(|i| i.destination.rank()).collect();
            dests.sort_unstable();
            dests.dedup();
            assert_eq!(dests.len(), 16, "not a permutation (seed {seed})");
            for inj in &t {
                assert_ne!(inj.source, inj.destination, "fixed point (seed {seed})");
                assert_eq!(inj.time, 0);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let sp = space(2, 4);
        let hot = sp.word_from_rank(6).unwrap();
        let t = hotspot(sp, 1000, &hot, 0.8, 5);
        let to_hot = t.iter().filter(|i| i.destination == hot).count();
        assert!(to_hot > 700, "only {to_hot} of 1000 went to the hotspot");
        for inj in &t {
            assert_ne!(inj.source, inj.destination);
        }
    }

    #[test]
    fn hotspot_validates_arguments() {
        let sp = space(2, 3);
        let hot = sp.word_from_rank(0).unwrap();
        let result = std::panic::catch_unwind(|| hotspot(sp, 10, &hot, 1.5, 0));
        assert!(result.is_err());
    }

    #[test]
    fn all_pairs_counts_n_times_n_minus_one() {
        let t = all_pairs(space(3, 2));
        assert_eq!(t.len(), 9 * 8);
    }
}
