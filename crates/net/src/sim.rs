//! The discrete-event simulation engine.
//!
//! Store-and-forward semantics: each directed link is a FIFO server with a
//! `service` time (occupancy per message) and a `latency` (propagation).
//! A forwarding node pops the first routing step, resolves any wildcard
//! under the configured [`WildcardPolicy`], and hands the message to the
//! selected link; the message arrives at the neighbor when the link has
//! served it. Everything is deterministic given [`SimConfig::seed`].
//!
//! Every run drives a [`Recorder`] (see [`crate::record`]): [`Simulation::run`]
//! uses the free [`NullRecorder`], [`Simulation::run_recorded`] accepts any
//! sink, and [`Simulation::run_traced`] adapts the event stream back onto
//! the legacy [`TraceEvent`] vector.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::error::Error as StdError;
use std::fmt;

use debruijn_core::rng::SplitMix64;
use debruijn_core::routing::{RouteCache, RoutingScratch};
use debruijn_core::{DeBruijn, Digit, RoutePath, ShiftKind, Word};
use debruijn_graph::{fault, DebruijnGraph, GraphError};

use crate::message::Message;
use crate::policy::WildcardPolicy;
use crate::record::{DropReason, NetEvent, NullRecorder, Observe, Recorder, TraceAdapter};
use crate::router::RouterKind;
use crate::stats::SimReport;

/// Timing parameters of every link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Propagation delay added after service, in ticks.
    pub latency: u64,
    /// Occupancy per message: the link serves one message per `service`
    /// ticks.
    pub service: u64,
}

impl Default for LinkParams {
    fn default() -> Self {
        Self {
            latency: 1,
            service: 1,
        }
    }
}

/// What happens when a route runs into a faulty node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultHandling {
    /// The message is lost at the hop into the faulty node (no global
    /// fault knowledge).
    #[default]
    Drop,
    /// Sources know the fault set and compute fault-avoiding shortest
    /// routes (BFS on the surviving graph); messages are only lost if the
    /// destination itself is faulty or the fault set cuts the network.
    SourceReroute,
}

/// Where routes are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ForwardingMode {
    /// §3's protocol: the source computes the whole routing path; each
    /// hop pops one `(a, b)` pair.
    #[default]
    SourceRouted,
    /// Distributed self-routing: the message carries only its
    /// destination; every node recomputes a shortest route *from itself*
    /// and takes its first step. Hop counts are identical to source
    /// routing (the first step of a shortest path reduces the distance by
    /// one), but the route computation burden moves into the network —
    /// an ablation of the paper's source-routed design. Combined with
    /// [`FaultHandling::SourceReroute`] the recomputation happens per hop,
    /// giving distributed fault avoidance.
    HopByHop,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Which algorithm sources use to fill the routing-path field.
    pub router: RouterKind,
    /// How forwarding nodes resolve wildcard steps.
    pub policy: WildcardPolicy,
    /// Link timing.
    pub link: LinkParams,
    /// Fault-handling mode.
    pub fault_handling: FaultHandling,
    /// Where routes are computed.
    pub forwarding: ForwardingMode,
    /// Seed for the (deterministic) random wildcard policy.
    pub seed: u64,
    /// Capacity of the per-run `(source, destination) → route` cache
    /// (clock eviction; 0 disables). Repeated traffic between the same
    /// endpoints skips the route computation; cached routes are identical
    /// to computed ones, so results never depend on this knob.
    pub route_cache: usize,
    /// Worker threads for the source-route precomputation pass (1 =
    /// inline, 0 = available parallelism). Only deterministic routers are
    /// fanned out ([`RouterKind::Multipath`] draws from the seeded RNG and
    /// always computes inline); reports are byte-identical for every
    /// thread count.
    pub threads: usize,
    /// Hop budget per message: a message still in flight after `ttl`
    /// hops is dropped with [`DropReason::Ttl`]. `0` (the default)
    /// disables the budget. Optimal routes need at most `k` hops, so a
    /// `ttl >= k` never fires on healthy source-routed traffic.
    pub ttl: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            router: RouterKind::default(),
            policy: WildcardPolicy::default(),
            link: LinkParams::default(),
            fault_handling: FaultHandling::default(),
            forwarding: ForwardingMode::default(),
            seed: 0xDEB1,
            route_cache: 1024,
            threads: 1,
            ttl: 0,
        }
    }
}

/// One traffic demand: inject a message at `time` from `source` to
/// `destination`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Injection tick.
    pub time: u64,
    /// Source address.
    pub source: Word,
    /// Destination address.
    pub destination: Word,
}

/// Errors configuring a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A word does not belong to the simulated space.
    ForeignWord {
        /// Display form of the offending word.
        word: String,
    },
    /// Source rerouting requires the explicit graph, which is too large.
    Graph(GraphError),
    /// The requested configuration is outside what this engine supports
    /// (e.g. the sharded simulator with a non-optimal router).
    Unsupported {
        /// Human-readable description of the unsupported combination.
        what: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ForeignWord { word } => {
                write!(f, "word {word} is not a vertex of the simulated network")
            }
            NetError::Graph(e) => write!(f, "cannot materialize reroute graph: {e}"),
            NetError::Unsupported { what } => {
                write!(f, "unsupported configuration: {what}")
            }
        }
    }
}

impl StdError for NetError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            NetError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for NetError {
    fn from(e: GraphError) -> Self {
        NetError::Graph(e)
    }
}

/// One entry of a simulation trace (see [`Simulation::run_traced`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulator time of the event.
    pub time: u64,
    /// Index of the message in the injected traffic.
    pub message: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// The kind of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// The message entered the network at its source.
    Injected {
        /// Source address.
        at: Word,
    },
    /// The message was handed to the link `from → to`; it departs the
    /// link at `departs` (after any queueing) and arrives `latency`
    /// later.
    Forwarded {
        /// Transmitting node.
        from: Word,
        /// Receiving node.
        to: Word,
        /// Time the link starts serving the message.
        departs: u64,
    },
    /// The message was accepted at its destination.
    Delivered,
    /// The message was lost (fault on the path or unreachable).
    Dropped,
}

/// A configured de Bruijn network simulation.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Simulation {
    space: DeBruijn,
    config: SimConfig,
    faults: HashSet<Word>,
    /// Faulty directed links, by endpoint ranks.
    link_faults: HashSet<(u128, u128)>,
    /// The same faulty links as words (for reroute queries).
    link_fault_words: Vec<(Word, Word)>,
    /// Materialized graph for source rerouting (built only when needed).
    reroute_graph: Option<DebruijnGraph>,
}

impl Simulation {
    /// Creates a fault-free simulation of `DN(d,k)`.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` so configurations that
    /// need materialized state (see [`Simulation::with_faults`]) share the
    /// signature.
    pub fn new(space: DeBruijn, config: SimConfig) -> Result<Self, NetError> {
        Ok(Self {
            space,
            config,
            faults: HashSet::new(),
            link_faults: HashSet::new(),
            link_fault_words: Vec::new(),
            reroute_graph: None,
        })
    }

    /// Declares the given nodes faulty.
    ///
    /// Under [`FaultHandling::SourceReroute`] this materializes the
    /// explicit graph for BFS rerouting.
    ///
    /// # Errors
    ///
    /// Returns an error if a fault word is not in the simulated space, or
    /// if rerouting is requested and the graph cannot be materialized.
    pub fn with_faults(mut self, faults: Vec<Word>) -> Result<Self, NetError> {
        for f in &faults {
            if !self.space.contains(f) {
                return Err(NetError::ForeignWord {
                    word: f.to_string(),
                });
            }
        }
        self.faults = faults.into_iter().collect();
        self.materialize_if_rerouting()?;
        Ok(self)
    }

    /// Declares the given **directed links** faulty: a message handed to
    /// a dead link is lost (under [`FaultHandling::Drop`]) or routed
    /// around at the source (under [`FaultHandling::SourceReroute`]).
    /// For a fully dead bidirectional link, list both directions.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is not in the simulated space, or
    /// if rerouting is requested and the graph cannot be materialized.
    pub fn with_link_faults(mut self, links: Vec<(Word, Word)>) -> Result<Self, NetError> {
        for (a, b) in &links {
            if !self.space.contains(a) {
                return Err(NetError::ForeignWord {
                    word: a.to_string(),
                });
            }
            if !self.space.contains(b) {
                return Err(NetError::ForeignWord {
                    word: b.to_string(),
                });
            }
        }
        self.link_faults = links.iter().map(|(a, b)| (a.rank(), b.rank())).collect();
        self.link_fault_words = links;
        self.materialize_if_rerouting()?;
        Ok(self)
    }

    fn materialize_if_rerouting(&mut self) -> Result<(), NetError> {
        if self.config.fault_handling == FaultHandling::SourceReroute
            && (!self.faults.is_empty() || !self.link_faults.is_empty())
            && self.reroute_graph.is_none()
        {
            let graph = if self.config.router.needs_bidirectional() {
                DebruijnGraph::undirected(self.space)?
            } else {
                DebruijnGraph::directed(self.space)?
            };
            self.reroute_graph = Some(graph);
        }
        Ok(())
    }

    /// The simulated parameter space.
    pub fn space(&self) -> DeBruijn {
        self.space
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation over the given traffic, returning aggregate
    /// statistics. Deterministic for a fixed config and traffic.
    ///
    /// # Panics
    ///
    /// Panics if an injection references a word outside the simulated
    /// space.
    pub fn run(&self, traffic: &[Injection]) -> SimReport {
        self.run_recorded(traffic, &mut NullRecorder)
    }

    /// Like [`Simulation::run`], but streams every [`NetEvent`] into the
    /// given [`Recorder`] as it happens. With the default
    /// [`NullRecorder`] this is exactly [`Simulation::run`]; pass an
    /// [`InMemoryRecorder`](crate::record::InMemoryRecorder) for
    /// histograms and counters or a
    /// [`JsonlRecorder`](crate::record::JsonlRecorder) for an event log.
    ///
    /// # Panics
    ///
    /// Panics if an injection references a word outside the simulated
    /// space.
    pub fn run_recorded(&self, traffic: &[Injection], recorder: &mut dyn Recorder) -> SimReport {
        self.run_impl(traffic, recorder)
    }

    /// Like [`Simulation::run`], but also records a full event trace
    /// (injections, per-link forwards with departure times, deliveries,
    /// drops). Used by debugging tools and the FIFO-invariant tests;
    /// traces grow with total hop count, so prefer [`Simulation::run`]
    /// for large workloads.
    ///
    /// # Panics
    ///
    /// Panics if an injection references a word outside the simulated
    /// space.
    pub fn run_traced(&self, traffic: &[Injection]) -> (SimReport, Vec<TraceEvent>) {
        let mut trace = Vec::new();
        let report = self.run_impl(traffic, &mut TraceAdapter { trace: &mut trace });
        (report, trace)
    }

    fn run_impl(&self, traffic: &[Injection], recorder: &mut dyn Recorder) -> SimReport {
        let mut report = SimReport {
            total_links: self.count_links(),
            ..SimReport::default()
        };
        let mut rng = SplitMix64::new(self.config.seed);
        let observed = Observe::of(recorder);

        // Per-link FIFO state: next time the link is free.
        let mut link_free: HashMap<(u128, u128), u64> = HashMap::new();
        // Round-robin counters per node.
        let mut rr: HashMap<u128, u8> = HashMap::new();

        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut pending: HashMap<u64, Flight> = HashMap::new();
        let mut seq: u64 = 0;

        // Route-computation state for the serial path: a bounded cache for
        // repeated (source, destination) pairs and reusable kernel buffers.
        let mut cache = RouteCache::new(self.config.route_cache);
        let mut scratch = RoutingScratch::new();
        let fault_free = self.faults.is_empty() && self.link_faults.is_empty();
        let reroute_mode =
            !fault_free && self.config.fault_handling == FaultHandling::SourceReroute;

        // With several worker threads and a deterministic router, compute
        // all source routes up front in parallel. Routes are pure functions
        // of the endpoints (the RNG is untouched here), so the merge-in-
        // injection-order output is byte-identical to the serial path.
        let mut precomputed: Option<Vec<Option<RoutePath>>> = if self.config.threads != 1
            && self.config.forwarding == ForwardingMode::SourceRouted
            && self.config.router != RouterKind::Multipath
        {
            Some(debruijn_parallel::map_range_with(
                self.config.threads,
                traffic.len(),
                RoutingScratch::new,
                |scratch, i| {
                    self.deterministic_route(&traffic[i].source, &traffic[i].destination, scratch)
                },
            ))
        } else {
            None
        };

        for (index, inj) in traffic.iter().enumerate() {
            assert!(
                self.space.contains(&inj.source) && self.space.contains(&inj.destination),
                "injection endpoints must be vertices of the simulated space"
            );
            report.injected += 1;
            if self.faults.contains(&inj.source) {
                drop_message(
                    &mut report,
                    recorder,
                    observed,
                    inj.time,
                    index,
                    DropReason::FaultySource,
                    &inj.source,
                    None,
                );
                continue;
            }
            let mut rerouted = false;
            let route = match self.config.forwarding {
                ForwardingMode::HopByHop => RoutePath::empty(),
                ForwardingMode::SourceRouted => {
                    let r = match precomputed.as_mut() {
                        Some(routes) => {
                            rerouted = reroute_mode;
                            routes[index].take()
                        }
                        None => self.initial_route(
                            &inj.source,
                            &inj.destination,
                            &mut rng,
                            &mut rerouted,
                            &mut cache,
                            &mut scratch,
                        ),
                    };
                    match r {
                        Some(r) => r,
                        None => {
                            drop_message(
                                &mut report,
                                recorder,
                                observed,
                                inj.time,
                                index,
                                DropReason::NoRoute,
                                &inj.source,
                                None,
                            );
                            continue;
                        }
                    }
                }
            };
            // The fault-free shortest distance is only needed for
            // observability (the stretch histogram of inject/deliver
            // events); skip the distance computation when nobody
            // listens to either class.
            let shortest = if observed.inject || observed.deliver {
                if self.config.router.needs_bidirectional() {
                    debruijn_core::distance::undirected::distance(&inj.source, &inj.destination)
                } else {
                    debruijn_core::distance::directed::distance(&inj.source, &inj.destination)
                }
            } else {
                0
            };
            if observed.inject {
                recorder.record(&NetEvent::Inject {
                    time: inj.time,
                    message: index,
                    source: inj.source.clone(),
                    destination: inj.destination.clone(),
                    route_len: route.steps().len(),
                    shortest,
                });
            }
            if rerouted && observed.reroute {
                recorder.record(&NetEvent::Reroute {
                    time: inj.time,
                    message: index,
                    at: inj.source.clone(),
                });
            }
            let msg = Message::data(inj.source.clone(), inj.destination.clone(), route);
            let flight = Flight {
                index,
                at: inj.source.clone(),
                prev: None,
                msg,
                injected_at: inj.time,
                hops: 0,
                shortest,
            };
            pending.insert(seq, flight);
            heap.push(Reverse((inj.time, seq)));
            seq += 1;
        }

        while let Some(Reverse((now, id))) = heap.pop() {
            let flight = pending.remove(&id).expect("event for live flight");
            let Flight {
                index,
                at,
                prev,
                msg,
                injected_at,
                hops,
                shortest,
            } = flight;

            if self.faults.contains(&at) {
                drop_message(
                    &mut report,
                    recorder,
                    observed,
                    now,
                    index,
                    DropReason::FaultyNode,
                    &at,
                    prev.as_ref(),
                );
                continue;
            }
            let arrived = match self.config.forwarding {
                ForwardingMode::SourceRouted => msg.is_arrived(),
                ForwardingMode::HopByHop => at == msg.destination,
            };
            if arrived {
                debug_assert_eq!(at, msg.destination, "route must end at destination");
                report.delivered += 1;
                report.total_hops += hops as u64;
                *report.hop_histogram.entry(hops).or_insert(0) += 1;
                let latency = now - injected_at;
                report.latency_total += latency;
                report.latency_max = report.latency_max.max(latency);
                report.makespan = report.makespan.max(now);
                if observed.deliver {
                    recorder.record(&NetEvent::Deliver {
                        time: now,
                        message: index,
                        hops,
                        latency,
                        shortest,
                    });
                }
                continue;
            }
            if self.config.ttl > 0 && hops >= self.config.ttl {
                drop_message(
                    &mut report,
                    recorder,
                    observed,
                    now,
                    index,
                    DropReason::Ttl,
                    &at,
                    prev.as_ref(),
                );
                continue;
            }

            let (step, msg) = match self.config.forwarding {
                ForwardingMode::SourceRouted => {
                    let (popped, rest) = msg.pop_step().expect("non-empty route");
                    (popped, rest)
                }
                ForwardingMode::HopByHop => {
                    // Recompute a shortest (possibly fault-avoiding) route
                    // from here and take only its first step.
                    let mut rerouted = false;
                    match self.initial_route(
                        &at,
                        &msg.destination,
                        &mut rng,
                        &mut rerouted,
                        &mut cache,
                        &mut scratch,
                    ) {
                        Some(route) if !route.is_empty() => {
                            if rerouted && observed.reroute {
                                recorder.record(&NetEvent::Reroute {
                                    time: now,
                                    message: index,
                                    at: at.clone(),
                                });
                            }
                            let first = route.steps()[0];
                            (
                                crate::message::PoppedStep {
                                    shift: first.shift,
                                    digit: first.digit,
                                },
                                msg,
                            )
                        }
                        _ => {
                            // Destination unreachable from here.
                            drop_message(
                                &mut report,
                                recorder,
                                observed,
                                now,
                                index,
                                DropReason::NoRoute,
                                &at,
                                prev.as_ref(),
                            );
                            continue;
                        }
                    }
                }
            };
            let was_wildcard = matches!(step.digit, Digit::Any);
            let digit =
                self.resolve_digit(&at, step.shift, step.digit, &link_free, &mut rr, &mut rng);
            if was_wildcard && observed.wildcard {
                recorder.record(&NetEvent::WildcardResolved {
                    time: now,
                    message: index,
                    at: at.clone(),
                    shift: step.shift,
                    digit,
                    policy: self.config.policy,
                });
            }
            let next = match step.shift {
                ShiftKind::Left => at.shift_left(digit),
                ShiftKind::Right => at.shift_right(digit),
            };

            let key = (at.rank(), next.rank());
            if self.link_faults.contains(&key) {
                // The selected link is down: the message is lost in
                // transit (no retransmission model).
                drop_message(
                    &mut report,
                    recorder,
                    observed,
                    now,
                    index,
                    DropReason::DeadLink,
                    &at,
                    prev.as_ref(),
                );
                continue;
            }
            let free = link_free.entry(key).or_insert(0);
            let depart = now.max(*free);
            *free = depart + self.config.link.service;
            let arrive = depart + self.config.link.service + self.config.link.latency;
            *report.link_loads.entry(key).or_insert(0) += 1;
            let wait = depart - now;
            report.total_queue_wait += wait;
            report.max_queue_wait = report.max_queue_wait.max(wait);
            if observed.forward {
                recorder.record(&NetEvent::Forward {
                    time: now,
                    message: index,
                    hop: hops,
                    from: at.clone(),
                    to: next.clone(),
                    departs: depart,
                    arrives: arrive,
                    queue_wait: wait,
                    // Each queued message occupies the link for one
                    // service interval, so the wait divided by the
                    // service time counts the messages ahead.
                    queue_depth: wait.div_ceil(self.config.link.service.max(1)) as usize,
                });
            }

            let flight = Flight {
                index,
                at: next,
                // Only drop events consume the upstream pointer; keep
                // the flight lean for everyone else.
                prev: observed.drop.then_some(at),
                msg,
                injected_at,
                hops: hops + 1,
                shortest,
            };
            pending.insert(seq, flight);
            heap.push(Reverse((arrive, seq)));
            seq += 1;
        }

        report
    }

    /// Computes the route placed in a fresh message's routing-path field.
    /// Sets `rerouted` when the route came from fault-avoiding BFS rather
    /// than a label algorithm. Label-algorithm routes go through the
    /// bounded cache; the multipath RNG draw and the fault-avoiding BFS
    /// bypass it.
    fn initial_route(
        &self,
        x: &Word,
        y: &Word,
        rng: &mut SplitMix64,
        rerouted: &mut bool,
        cache: &mut RouteCache,
        scratch: &mut RoutingScratch,
    ) -> Option<RoutePath> {
        let fault_free = self.faults.is_empty() && self.link_faults.is_empty();
        if fault_free || self.config.fault_handling == FaultHandling::Drop {
            if self.config.router == RouterKind::Multipath && x != y {
                let routes = debruijn_core::routing::all_shortest_routes(x, y);
                let pick = rng.below_usize(routes.len());
                return Some(routes[pick].clone());
            }
            return Some(cache.get_or_compute(x, y, |x, y| {
                let mut out = RoutePath::empty();
                self.config.router.route_into(x, y, scratch, &mut out);
                out
            }));
        }
        *rerouted = true;
        self.reroute(x, y)
    }

    /// The route an RNG-free router computes for `(x, y)` — the per-pair
    /// work of the parallel precomputation pass. Matches
    /// [`Simulation::initial_route`] exactly for every non-multipath
    /// configuration.
    fn deterministic_route(
        &self,
        x: &Word,
        y: &Word,
        scratch: &mut RoutingScratch,
    ) -> Option<RoutePath> {
        let fault_free = self.faults.is_empty() && self.link_faults.is_empty();
        if fault_free || self.config.fault_handling == FaultHandling::Drop {
            let mut out = RoutePath::empty();
            self.config.router.route_into(x, y, scratch, &mut out);
            return Some(out);
        }
        self.reroute(x, y)
    }

    /// Fault-avoiding BFS route on the surviving graph.
    fn reroute(&self, x: &Word, y: &Word) -> Option<RoutePath> {
        let graph = self
            .reroute_graph
            .as_ref()
            .expect("reroute graph materialized by with_faults/with_link_faults");
        let faults: Vec<Word> = self.faults.iter().cloned().collect();
        if self.link_fault_words.is_empty() {
            fault::route_avoiding(graph, x, y, &faults)
        } else {
            fault::route_avoiding_full(graph, x, y, &faults, &self.link_fault_words)
        }
    }

    /// Resolves the digit of one step under the wildcard policy.
    fn resolve_digit(
        &self,
        at: &Word,
        shift: ShiftKind,
        digit: Digit,
        link_free: &HashMap<(u128, u128), u64>,
        rr: &mut HashMap<u128, u8>,
        rng: &mut SplitMix64,
    ) -> u8 {
        let d = self.space.d();
        match digit {
            Digit::Exact(b) => b,
            Digit::Any => match self.config.policy {
                WildcardPolicy::Zero => 0,
                WildcardPolicy::Random => rng.digit(d),
                WildcardPolicy::RoundRobin => {
                    let counter = rr.entry(at.rank()).or_insert(0);
                    let b = *counter % d;
                    *counter = (*counter + 1) % d;
                    b
                }
                WildcardPolicy::LeastLoaded => {
                    // Pick the digit whose outgoing link frees earliest;
                    // ties break toward the smaller digit.
                    (0..d)
                        .min_by_key(|&b| {
                            let next = match shift {
                                ShiftKind::Left => at.shift_left(b),
                                ShiftKind::Right => at.shift_right(b),
                            };
                            link_free
                                .get(&(at.rank(), next.rank()))
                                .copied()
                                .unwrap_or(0)
                        })
                        .expect("d >= 2")
                }
            },
        }
    }

    /// Total number of directed links the configured network offers, or 0
    /// if the space is too large to enumerate cheaply.
    fn count_links(&self) -> usize {
        const ENUMERATION_LIMIT: usize = 1 << 16;
        let Some(n) = self.space.order_usize() else {
            return 0;
        };
        if n > ENUMERATION_LIMIT {
            return 0;
        }
        let bidir = self.config.router.needs_bidirectional();
        self.space
            .vertices()
            .map(|w| {
                if bidir {
                    // Full-duplex: each undirected edge counts once per
                    // direction.
                    self.space.undirected_neighbors(&w).len()
                } else {
                    self.space.directed_out_neighbors(&w).len()
                }
            })
            .sum()
    }
}

/// Books one message loss: the aggregate counters, the per-reason
/// breakdown, and (when observed) the [`NetEvent::Drop`] record with
/// the holding node `at` and the `upstream` node that forwarded there
/// (`None` for drops at the source).
#[allow(clippy::too_many_arguments)]
fn drop_message(
    report: &mut SimReport,
    recorder: &mut dyn Recorder,
    observed: Observe,
    time: u64,
    message: usize,
    reason: DropReason,
    at: &Word,
    upstream: Option<&Word>,
) {
    report.dropped += 1;
    *report.dropped_by_reason.entry(reason.name()).or_insert(0) += 1;
    if observed.drop {
        recorder.record(&NetEvent::Drop {
            time,
            message,
            reason,
            at: at.clone(),
            upstream: upstream.cloned(),
        });
    }
}

#[derive(Debug)]
struct Flight {
    /// Index of the message in the injected traffic (for tracing).
    index: usize,
    at: Word,
    /// The node that forwarded the message to `at` — the `upstream` of
    /// a drop event. Tracked only when drops are observed; `None` at
    /// the source.
    prev: Option<Word>,
    msg: Message,
    injected_at: u64,
    hops: usize,
    /// Fault-free shortest distance recorded at injection (0 when the
    /// run is unobserved).
    shortest: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InMemoryRecorder;
    use crate::workload;
    use debruijn_core::directed_average_distance;

    fn space(d: u8, k: usize) -> DeBruijn {
        DeBruijn::new(d, k).unwrap()
    }

    fn sim(d: u8, k: usize, config: SimConfig) -> Simulation {
        Simulation::new(space(d, k), config).unwrap()
    }

    #[test]
    fn every_message_is_delivered_without_faults() {
        for router in RouterKind::all() {
            let s = sim(
                2,
                4,
                SimConfig {
                    router,
                    ..SimConfig::default()
                },
            );
            let traffic = workload::uniform_random(space(2, 4), 300, 42);
            let r = s.run(&traffic);
            assert_eq!(r.delivered, 300, "{}", router.name());
            assert_eq!(r.dropped, 0);
            assert_eq!(r.injected, 300);
        }
    }

    #[test]
    fn hop_counts_match_exact_distances() {
        // Under all-pairs traffic, mean hops must equal the exact average
        // distance over ordered pairs with x != y.
        let sp = space(2, 4);
        let traffic = workload::all_pairs(sp);
        let s = sim(
            2,
            4,
            SimConfig {
                router: RouterKind::Algorithm2,
                ..Default::default()
            },
        );
        let r = s.run(&traffic);
        let mut want_total = 0usize;
        let mut count = 0usize;
        for x in sp.vertices() {
            for y in sp.vertices() {
                if x != y {
                    want_total += debruijn_core::distance::undirected::distance(&x, &y);
                    count += 1;
                }
            }
        }
        assert_eq!(r.delivered, count);
        assert_eq!(r.total_hops, want_total as u64);
    }

    #[test]
    fn directed_router_matches_exact_average_and_approximates_eq5() {
        // All-pairs traffic with Algorithm 1: total hops equal the exact
        // sum of directed distances. The paper's Eq. (5) closed form
        // treats the overlap as geometric and is only an upper-bound
        // approximation (see EXPERIMENTS.md E1); check it is close.
        let sp = space(2, 5);
        let n = sp.order_usize().unwrap() as f64;
        let traffic = workload::all_pairs(sp);
        let s = sim(
            2,
            5,
            SimConfig {
                router: RouterKind::Algorithm1,
                ..Default::default()
            },
        );
        let r = s.run(&traffic);
        let mut exact_total = 0usize;
        for x in sp.vertices() {
            for y in sp.vertices() {
                exact_total += debruijn_core::distance::directed::distance(&x, &y);
            }
        }
        assert_eq!(r.total_hops, exact_total as u64);
        let exact_avg = exact_total as f64 / (n * n);
        let eq5 = directed_average_distance(2, 5);
        assert!(eq5 >= exact_avg, "Eq. 5 over-counts overlaps, never under");
        // For d = 2 the gap converges to ≈ 0.53 hops (see E1).
        assert!(
            eq5 - exact_avg < 0.6,
            "Eq. 5 gap too large: {eq5} vs {exact_avg}"
        );
    }

    #[test]
    fn trivial_router_always_takes_k_hops() {
        let sp = space(3, 3);
        let traffic = workload::uniform_random(sp, 100, 9);
        let s = sim(
            3,
            3,
            SimConfig {
                router: RouterKind::Trivial,
                ..Default::default()
            },
        );
        let r = s.run(&traffic);
        assert_eq!(r.delivered, 100);
        assert_eq!(r.hop_histogram.keys().copied().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn latency_reflects_link_parameters_in_light_traffic() {
        // One message at a time: latency = hops * (service + latency).
        let sp = space(2, 4);
        let link = LinkParams {
            latency: 3,
            service: 2,
        };
        let s = sim(
            2,
            4,
            SimConfig {
                link,
                router: RouterKind::Algorithm4,
                ..Default::default()
            },
        );
        let mut traffic = workload::uniform_random(sp, 50, 5);
        for (i, inj) in traffic.iter_mut().enumerate() {
            inj.time = (i as u64) * 1000; // no queueing
        }
        let r = s.run(&traffic);
        assert_eq!(r.delivered, 50);
        assert_eq!(r.latency_total, r.total_hops * 5);
    }

    #[test]
    fn reports_are_identical_for_any_thread_count() {
        // The parallel route-precompute pass must be invisible in the
        // results, for every router and even under faults (the BFS
        // reroutes are deterministic too).
        let sp = space(2, 5);
        let traffic = workload::uniform_random(sp, 400, 13);
        for router in RouterKind::all() {
            let mk = |threads| SimConfig {
                router,
                threads,
                ..Default::default()
            };
            let serial = sim(2, 5, mk(1)).run(&traffic);
            for threads in [0, 2, 8] {
                assert_eq!(serial, sim(2, 5, mk(threads)).run(&traffic), "{router:?}");
            }
        }
        let fault = sp.word_from_rank(9).unwrap();
        let mk = |threads| SimConfig {
            fault_handling: FaultHandling::SourceReroute,
            threads,
            ..Default::default()
        };
        let serial = sim(2, 5, mk(1))
            .with_faults(vec![fault.clone()])
            .unwrap()
            .run(&traffic);
        let parallel = sim(2, 5, mk(8))
            .with_faults(vec![fault])
            .unwrap()
            .run(&traffic);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn route_cache_capacity_does_not_change_results() {
        let sp = space(2, 5);
        let traffic = workload::uniform_random(sp, 400, 29);
        for forwarding in [ForwardingMode::SourceRouted, ForwardingMode::HopByHop] {
            let mk = |route_cache| SimConfig {
                forwarding,
                route_cache,
                ..Default::default()
            };
            let uncached = sim(2, 5, mk(0)).run(&traffic);
            for capacity in [1, 7, 4096] {
                assert_eq!(
                    uncached,
                    sim(2, 5, mk(capacity)).run(&traffic),
                    "{forwarding:?} capacity {capacity}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sp = space(2, 5);
        let traffic = workload::uniform_random(sp, 200, 11);
        let config = SimConfig {
            policy: WildcardPolicy::Random,
            router: RouterKind::Algorithm2,
            ..Default::default()
        };
        let a = sim(2, 5, config).run(&traffic);
        let b = sim(2, 5, config).run(&traffic);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_can_differ_under_random_policy() {
        let sp = space(2, 5);
        let traffic = workload::uniform_random(sp, 200, 11);
        let mk = |seed| SimConfig {
            policy: WildcardPolicy::Random,
            router: RouterKind::Algorithm2,
            seed,
            ..Default::default()
        };
        let a = sim(2, 5, mk(1)).run(&traffic);
        let b = sim(2, 5, mk(2)).run(&traffic);
        // Hop counts are identical (routes are the same length); link
        // loads will almost surely differ.
        assert_eq!(a.total_hops, b.total_hops);
        assert_ne!(a.link_loads, b.link_loads);
    }

    #[test]
    fn traced_run_matches_untraced_and_is_complete() {
        let sp = space(2, 4);
        let traffic = workload::uniform_random(sp, 150, 4);
        let s = sim(2, 4, SimConfig::default());
        let plain = s.run(&traffic);
        let (traced, trace) = s.run_traced(&traffic);
        assert_eq!(plain, traced);
        // Every message gets exactly one terminal event.
        let mut terminal = vec![0usize; traffic.len()];
        for ev in &trace {
            if matches!(ev.kind, TraceKind::Delivered | TraceKind::Dropped) {
                terminal[ev.message] += 1;
            }
        }
        assert!(
            terminal.iter().all(|&c| c == 1),
            "terminal events: {terminal:?}"
        );
        // Forward counts match the reported hop total.
        let forwards = trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Forwarded { .. }))
            .count();
        assert_eq!(forwards as u64, traced.total_hops);
    }

    #[test]
    fn recorded_run_matches_unrecorded_report() {
        // The recorder must observe, never perturb: identical reports
        // with and without a sink, including under the random policy.
        let sp = space(2, 5);
        let traffic = workload::uniform_random(sp, 200, 21);
        let config = SimConfig {
            policy: WildcardPolicy::Random,
            router: RouterKind::Algorithm4,
            ..Default::default()
        };
        let s = sim(2, 5, config);
        let plain = s.run(&traffic);
        let mut metrics = InMemoryRecorder::new();
        let recorded = s.run_recorded(&traffic, &mut metrics);
        assert_eq!(plain, recorded);
        assert_eq!(metrics.delivered, recorded.delivered as u64);
        assert_eq!(metrics.hops.sum(), u128::from(recorded.total_hops));
        assert_eq!(metrics.latency.sum(), u128::from(recorded.latency_total));
        assert_eq!(
            metrics.queue_wait.sum(),
            u128::from(recorded.total_queue_wait)
        );
        assert_eq!(
            metrics.queue_wait.max().unwrap_or(0),
            recorded.max_queue_wait
        );
        assert_eq!(metrics.per_hop_latency.count(), recorded.total_hops);
    }

    #[test]
    fn recorded_hops_equal_distance_per_message() {
        // End to end: with an optimal router and no contention effects on
        // hop counts, every recorded delivery takes exactly
        // `distance::undirected::distance(source, destination)` hops —
        // the stretch histogram is identically zero.
        let sp = space(2, 5);
        let traffic = workload::uniform_random(sp, 300, 17);
        let s = sim(
            2,
            5,
            SimConfig {
                router: RouterKind::Algorithm4,
                ..Default::default()
            },
        );
        let mut metrics = InMemoryRecorder::new();
        let report = s.run_recorded(&traffic, &mut metrics);
        assert_eq!(report.delivered, 300);
        assert_eq!(metrics.stretch.count(), 300);
        assert_eq!(
            metrics.stretch.max(),
            Some(0),
            "optimal routes have zero stretch"
        );
        // And the trivial router pays the difference: stretch = k − D.
        let s = sim(
            2,
            5,
            SimConfig {
                router: RouterKind::Trivial,
                ..Default::default()
            },
        );
        let mut trivial = InMemoryRecorder::new();
        s.run_recorded(&traffic, &mut trivial);
        assert_eq!(trivial.hops.min(), Some(5), "trivial always walks k hops");
        assert!(trivial.stretch.max().unwrap() > 0);
    }

    #[test]
    fn wildcard_resolutions_are_recorded_per_policy_and_digit() {
        // Algorithm 4 emits wildcard steps whenever |route| < k; the
        // recorder must attribute each resolution to the configured
        // policy, and least-loaded must use every digit under symmetric
        // load.
        let sp = space(2, 4);
        let traffic = workload::all_pairs(sp);
        for policy in WildcardPolicy::all() {
            let s = sim(
                2,
                4,
                SimConfig {
                    router: RouterKind::Algorithm4,
                    policy,
                    ..Default::default()
                },
            );
            let mut metrics = InMemoryRecorder::new();
            s.run_recorded(&traffic, &mut metrics);
            assert!(metrics.wildcards_resolved() > 0, "{}", policy.name());
            assert_eq!(
                metrics.wildcard_by_policy.get(policy.name()),
                Some(&metrics.wildcards_resolved()),
                "{}",
                policy.name()
            );
            let digits_used = metrics.wildcard_by_digit.len();
            match policy {
                WildcardPolicy::Zero => assert_eq!(digits_used, 1),
                _ => assert_eq!(
                    digits_used,
                    2,
                    "{} must spread over both digits",
                    policy.name()
                ),
            }
        }
    }

    #[test]
    fn drops_are_recorded_with_reasons() {
        let sp = space(2, 4);
        let fault = sp.word_from_rank(9).unwrap();
        let s = sim(2, 4, SimConfig::default())
            .with_faults(vec![fault])
            .unwrap();
        let traffic = workload::all_pairs(sp);
        let mut metrics = InMemoryRecorder::new();
        let report = s.run_recorded(&traffic, &mut metrics);
        assert_eq!(metrics.dropped(), report.dropped as u64);
        // All-pairs traffic hits the fault as source, as destination
        // midpoint (in transit), and the recorder distinguishes them.
        assert!(metrics.drops_by_reason.contains_key("faulty-source"));
        assert!(metrics.drops_by_reason.contains_key("faulty-node"));
    }

    #[test]
    fn reroutes_are_recorded_under_source_reroute() {
        let sp = space(2, 4);
        let fault = sp.word_from_rank(9).unwrap();
        let config = SimConfig {
            fault_handling: FaultHandling::SourceReroute,
            ..Default::default()
        };
        let s = Simulation::new(sp, config)
            .unwrap()
            .with_faults(vec![fault])
            .unwrap();
        let traffic = workload::all_pairs(sp);
        let mut metrics = InMemoryRecorder::new();
        let report = s.run_recorded(&traffic, &mut metrics);
        // Every message whose source survives goes through the BFS
        // rerouter (sources know the fault set), but a Reroute event is
        // only recorded when BFS actually finds a detour: pairs aimed at
        // the dead node drop with NoRoute instead.
        let n = sp.order_usize().unwrap();
        assert_eq!(metrics.reroutes, (report.injected - 2 * (n - 1)) as u64);
        assert_eq!(metrics.drops_by_reason["no-route"], (n - 1) as u64);
        assert_eq!(metrics.drops_by_reason["faulty-source"], (n - 1) as u64);
    }

    #[test]
    fn links_serve_fifo_with_service_spacing() {
        // Saturate the network and check, per link, that departure times
        // are spaced at least one service apart (no double-booking) and
        // never precede the handover.
        use std::collections::HashMap;
        let sp = space(2, 4);
        let traffic = workload::permutation(sp, 1)
            .into_iter()
            .chain(workload::permutation(sp, 2))
            .collect::<Vec<_>>();
        let s = sim(2, 4, SimConfig::default());
        let (_, trace) = s.run_traced(&traffic);
        let mut last_depart: HashMap<(u128, u128), u64> = HashMap::new();
        let mut events: Vec<(&Word, &Word, u64, u64)> = Vec::new();
        for ev in &trace {
            if let TraceKind::Forwarded { from, to, departs } = &ev.kind {
                events.push((from, to, ev.time, *departs));
            }
        }
        // The trace is produced in event order, which is handover order.
        for (from, to, time, departs) in events {
            assert!(departs >= time, "link serves before handover");
            let key = (from.rank(), to.rank());
            if let Some(&prev) = last_depart.get(&key) {
                assert!(
                    departs > prev,
                    "link {from}->{to} double-booked: {prev} then {departs}"
                );
            }
            last_depart.insert(key, departs);
        }
    }

    #[test]
    fn queue_wait_is_zero_in_unloaded_network() {
        let sp = space(2, 4);
        let mut traffic = workload::uniform_random(sp, 40, 8);
        for (i, inj) in traffic.iter_mut().enumerate() {
            inj.time = (i as u64) * 100;
        }
        let r = sim(2, 4, SimConfig::default()).run(&traffic);
        assert_eq!(r.total_queue_wait, 0);
        assert_eq!(r.max_queue_wait, 0);
    }

    #[test]
    fn queue_wait_appears_under_contention() {
        let sp = space(2, 4);
        let x = sp.word_from_rank(2).unwrap();
        let y = sp.word_from_rank(11).unwrap();
        let traffic: Vec<Injection> = (0..8)
            .map(|_| Injection {
                time: 0,
                source: x.clone(),
                destination: y.clone(),
            })
            .collect();
        let r = sim(2, 4, SimConfig::default()).run(&traffic);
        assert!(
            r.max_queue_wait >= 7,
            "8 simultaneous messages share the first link"
        );
    }

    #[test]
    fn queue_depth_counts_messages_ahead() {
        // 8 identical messages at t = 0 share the first link: the i-th
        // handover sees exactly i messages ahead of it.
        let sp = space(2, 4);
        let x = sp.word_from_rank(2).unwrap();
        let y = sp.word_from_rank(11).unwrap();
        let traffic: Vec<Injection> = (0..8)
            .map(|_| Injection {
                time: 0,
                source: x.clone(),
                destination: y.clone(),
            })
            .collect();
        let mut metrics = InMemoryRecorder::new();
        sim(2, 4, SimConfig::default()).run_recorded(&traffic, &mut metrics);
        assert_eq!(metrics.queue_depth.max(), Some(7));
        assert_eq!(metrics.queue_depth.min(), Some(0));
    }

    #[test]
    fn multipath_router_keeps_routes_shortest() {
        let sp = space(2, 5);
        let traffic = workload::all_pairs(sp);
        let single = sim(
            2,
            5,
            SimConfig {
                router: RouterKind::Algorithm2,
                ..Default::default()
            },
        )
        .run(&traffic);
        let multi = sim(
            2,
            5,
            SimConfig {
                router: RouterKind::Multipath,
                ..Default::default()
            },
        )
        .run(&traffic);
        // Same hop distribution (all routes are shortest) …
        assert_eq!(single.hop_histogram, multi.hop_histogram);
        // … but spread over strictly more links than the deterministic
        // single-path choice under this all-pairs load.
        assert!(
            multi.link_load_summary().links_used >= single.link_load_summary().links_used,
            "multipath should never use fewer links"
        );
    }

    #[test]
    fn hop_by_hop_matches_source_routing_hop_counts() {
        let sp = space(2, 5);
        let traffic = workload::all_pairs(sp);
        for router in [RouterKind::Algorithm1, RouterKind::Algorithm2] {
            let src_routed = sim(
                2,
                5,
                SimConfig {
                    router,
                    ..Default::default()
                },
            )
            .run(&traffic);
            let hop_by_hop = sim(
                2,
                5,
                SimConfig {
                    router,
                    forwarding: ForwardingMode::HopByHop,
                    ..Default::default()
                },
            )
            .run(&traffic);
            assert_eq!(
                src_routed.hop_histogram,
                hop_by_hop.hop_histogram,
                "{}",
                router.name()
            );
            assert_eq!(hop_by_hop.delivered, traffic.len());
        }
    }

    #[test]
    fn hop_by_hop_with_per_hop_reroute_avoids_faults() {
        let sp = space(3, 3);
        let fault = sp.word_from_rank(11).unwrap();
        let traffic = workload::all_pairs(sp);
        let config = SimConfig {
            forwarding: ForwardingMode::HopByHop,
            fault_handling: FaultHandling::SourceReroute,
            ..Default::default()
        };
        let s = Simulation::new(sp, config)
            .unwrap()
            .with_faults(vec![fault])
            .unwrap();
        let r = s.run(&traffic);
        // d = 3 tolerates 2 faults; only the 2(N−1) endpoint-faulty
        // messages are lost.
        let n = sp.order_usize().unwrap();
        assert_eq!(r.dropped, 2 * (n - 1));
        assert_eq!(r.delivered + r.dropped, r.injected);
    }

    #[test]
    fn ttl_exhaustion_drops_and_is_attributed() {
        // The trivial router always walks k hops, so ttl < k kills every
        // message with reason "ttl"; ttl >= k changes nothing.
        let sp = space(2, 4);
        let traffic = workload::uniform_random(sp, 120, 6);
        let mk = |ttl| SimConfig {
            router: RouterKind::Trivial,
            ttl,
            ..Default::default()
        };
        let starved = sim(2, 4, mk(3)).run(&traffic);
        assert_eq!(starved.delivered, 0);
        assert_eq!(starved.dropped, 120);
        assert_eq!(starved.dropped_by_reason.get("ttl"), Some(&120));
        let generous = sim(2, 4, mk(4)).run(&traffic);
        assert_eq!(generous.delivered, 120);
        assert!(generous.dropped_by_reason.is_empty());
        assert_eq!(sim(2, 4, mk(0)).run(&traffic).delivered, 120);
    }

    #[test]
    fn dropped_by_reason_sums_to_dropped() {
        let sp = space(2, 4);
        let fault = sp.word_from_rank(9).unwrap();
        let s = sim(2, 4, SimConfig::default())
            .with_faults(vec![fault])
            .unwrap();
        let traffic = workload::all_pairs(sp);
        let mut metrics = InMemoryRecorder::new();
        let r = s.run_recorded(&traffic, &mut metrics);
        assert!(r.dropped > 0);
        assert_eq!(r.dropped_by_reason.values().sum::<u64>(), r.dropped as u64);
        // The report's breakdown is exactly the recorder's view.
        assert_eq!(r.dropped_by_reason, metrics.drops_by_reason);
    }

    #[test]
    fn conservation_messages_are_delivered_or_dropped_once() {
        let sp = space(2, 4);
        let faults = vec![sp.word_from_rank(5).unwrap()];
        let s = sim(2, 4, SimConfig::default()).with_faults(faults).unwrap();
        let traffic = workload::uniform_random(sp, 400, 3);
        let r = s.run(&traffic);
        assert_eq!(r.delivered + r.dropped, r.injected);
    }

    #[test]
    fn drop_mode_loses_messages_crossing_the_fault() {
        let sp = space(2, 4);
        let fault = sp.word_from_rank(9).unwrap();
        let s = sim(2, 4, SimConfig::default())
            .with_faults(vec![fault.clone()])
            .unwrap();
        let traffic = workload::all_pairs(sp);
        let r = s.run(&traffic);
        assert!(r.dropped > 0, "some route must cross rank 9");
        assert_eq!(r.delivered + r.dropped, r.injected);
    }

    #[test]
    fn source_reroute_only_loses_faulty_endpoints() {
        let sp = space(2, 4);
        let fault = sp.word_from_rank(9).unwrap();
        let config = SimConfig {
            fault_handling: FaultHandling::SourceReroute,
            ..Default::default()
        };
        let s = Simulation::new(sp, config)
            .unwrap()
            .with_faults(vec![fault.clone()])
            .unwrap();
        let traffic = workload::all_pairs(sp);
        let r = s.run(&traffic);
        // Exactly the pairs touching the fault are lost: 2·(N−1) of them
        // (fault as source, fault as destination).
        let n = sp.order_usize().unwrap();
        assert_eq!(r.dropped, 2 * (n - 1));
        assert_eq!(r.delivered, r.injected - 2 * (n - 1));
    }

    #[test]
    fn dead_links_drop_messages_in_drop_mode() {
        let sp = space(2, 4);
        let a = sp.word_from_rank(3).unwrap();
        let b = a.shift_left(1);
        let s = sim(2, 4, SimConfig::default())
            .with_link_faults(vec![(a.clone(), b.clone())])
            .unwrap();
        let traffic = workload::all_pairs(sp);
        let r = s.run(&traffic);
        assert!(r.dropped > 0, "some route must use the dead link");
        assert_eq!(r.delivered + r.dropped, r.injected);
        // The dead link never appears in the load map.
        assert!(!r.link_loads.contains_key(&(a.rank(), b.rank())));
    }

    #[test]
    fn dead_links_are_routed_around_with_source_reroute() {
        let sp = space(2, 4);
        let a = sp.word_from_rank(3).unwrap();
        let b = a.shift_left(1);
        let config = SimConfig {
            fault_handling: FaultHandling::SourceReroute,
            ..Default::default()
        };
        let s = Simulation::new(sp, config)
            .unwrap()
            .with_link_faults(vec![(a.clone(), b.clone()), (b.clone(), a.clone())])
            .unwrap();
        let traffic = workload::all_pairs(sp);
        let r = s.run(&traffic);
        // One dead link never cuts a graph of minimum degree >= 2.
        assert_eq!(r.dropped, 0);
        assert_eq!(r.delivered, traffic.len());
        assert!(!r.link_loads.contains_key(&(a.rank(), b.rank())));
        assert!(!r.link_loads.contains_key(&(b.rank(), a.rank())));
    }

    #[test]
    fn with_link_faults_rejects_foreign_words() {
        let s = sim(2, 4, SimConfig::default());
        let a = Word::parse(2, "0000").unwrap();
        let foreign = Word::parse(3, "0000").unwrap();
        assert!(matches!(
            s.with_link_faults(vec![(a, foreign)]),
            Err(NetError::ForeignWord { .. })
        ));
    }

    #[test]
    fn with_faults_rejects_foreign_words() {
        let s = sim(2, 4, SimConfig::default());
        let foreign = Word::parse(3, "0120").unwrap();
        let err = s.with_faults(vec![foreign]).unwrap_err();
        assert!(matches!(err, NetError::ForeignWord { .. }));
    }

    #[test]
    fn total_links_matches_census() {
        // Bidirectional: sum of undirected degrees = 2 · |E|.
        let s = sim(
            2,
            3,
            SimConfig {
                router: RouterKind::Algorithm2,
                ..Default::default()
            },
        );
        let r = s.run(&[]);
        let g = DebruijnGraph::undirected(space(2, 3)).unwrap();
        assert_eq!(r.total_links, g.adjacency_count());
    }

    #[test]
    fn congestion_delays_messages_on_shared_links() {
        // Many messages between the same pair at time 0 must serialize on
        // the first link.
        let sp = space(2, 4);
        let x = sp.word_from_rank(1).unwrap();
        let y = sp.word_from_rank(14).unwrap();
        let traffic: Vec<Injection> = (0..10)
            .map(|_| Injection {
                time: 0,
                source: x.clone(),
                destination: y.clone(),
            })
            .collect();
        let s = sim(
            2,
            4,
            SimConfig {
                router: RouterKind::Algorithm2,
                ..Default::default()
            },
        );
        let r = s.run(&traffic);
        assert_eq!(r.delivered, 10);
        // With service 1, the 10th message leaves the first link 9 ticks
        // late: max latency strictly exceeds the uncongested latency.
        let uncongested = (r.total_hops / 10) * 2;
        assert!(r.latency_max > uncongested);
    }
}
