//! Shard-aware engine profiler: where does the sharded simulator's
//! wall clock actually go?
//!
//! The metrics layer counts *simulation* events (hops, drops, queue
//! waits in simulated ticks); nothing in it can say whether a flat
//! `speedup_vs_1_thread` is barrier wait, mailbox overflow, or genuine
//! compute imbalance. This module is the engine-side observatory:
//!
//! * **Phase timers** — each worker accumulates wall-clock nanoseconds
//!   per shard into the phases of the windowed loop ([`Phase`]):
//!   mailbox drain, batch merge, compute (the flight steps), barrier
//!   wait (via [`debruijn_parallel::TickBarrier`]`::sync_min_timed` —
//!   spins and yields included),
//!   and the end-of-run report merge. Slots are per-worker and
//!   mutex-held for the whole run, so the hot path adds only
//!   `Instant::now` calls.
//! * **Deterministic sampled causal tracing** — a [`SpanSampler`] tags
//!   ~1/N messages by hashing `(seed, message id)` exactly like the
//!   shard-invariant Random wildcard policy, so *which* messages are
//!   sampled is a pure function of the run, identical for every
//!   `--shards`/`--threads` combination. Sampled messages record one
//!   [`HopSpan`] per hop (enqueue tick, link FIFO residency, transit,
//!   and the shard crossing) stitched into end-to-end
//!   [`critical paths`](EngineProfile::critical_paths).
//! * **Exports** — a human table ([`EngineProfile::render`]), a JSON
//!   document for tooling ([`EngineProfile::to_json`]), a Chrome trace
//!   with one lane per shard ([`EngineProfile::chrome_trace`]), and
//!   registry families ([`EngineProfile::export_to`]).
//!
//! Profiling is branch-on-`Option`: the unprofiled
//! [`ShardedSimulation::run_recorded`](crate::ShardedSimulation::run_recorded)
//! path never constructs a timer or hashes a message, and the profiled
//! path never touches the report, trace, or metrics byte streams — the
//! determinism contract of `docs/SCALING.md` is preserved with
//! profiling on or off (tested on the shard/thread grid).

use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use debruijn_core::rng::SplitMix64;
use debruijn_parallel::BarrierWait;

use crate::metrics::MetricsRegistry;
use crate::telemetry::LogHistogram;

/// One phase of the sharded engine's windowed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Draining inbound SPSC mailboxes into the shard queue.
    Mailbox,
    /// Restoring a tick batch to message-id order (natural-run merge).
    Merge,
    /// Processing flights: forwarding, link booking, event recording.
    Compute,
    /// Waiting at the window barrier (spin + yield + min-fold).
    Barrier,
    /// The end-of-run single-threaded merge and event replay.
    Report,
}

impl Phase {
    /// The phases timed per shard inside the worker loop.
    pub(crate) const MEASURED: [Phase; 3] = [Phase::Mailbox, Phase::Merge, Phase::Compute];

    /// Every phase, in display order.
    pub const ALL: [Phase; 5] = [
        Phase::Compute,
        Phase::Barrier,
        Phase::Mailbox,
        Phase::Merge,
        Phase::Report,
    ];

    /// Stable kebab-free label (used as a metric label value).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mailbox => "mailbox",
            Phase::Merge => "merge",
            Phase::Compute => "compute",
            Phase::Barrier => "barrier",
            Phase::Report => "report",
        }
    }

    fn lap_index(self) -> usize {
        match self {
            Phase::Mailbox => 0,
            Phase::Merge => 1,
            Phase::Compute => 2,
            Phase::Barrier | Phase::Report => unreachable!("not a per-lap phase"),
        }
    }
}

/// Configuration for a profiled run
/// ([`ShardedSimulation::run_profiled`](crate::ShardedSimulation::run_profiled)).
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Sample one message in `sample_every` for causal span tracing;
    /// `0` disables sampling, `1` samples everything.
    pub sample_every: u32,
    /// Record per-lap Chrome-trace slices (adds memory proportional to
    /// windows × shards; keep off for quick breakdowns).
    pub slices: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            sample_every: 64,
            slices: false,
        }
    }
}

/// Decides which messages carry causal spans: a pure function of
/// `(seed, message id)`, hashed exactly like the shard-invariant
/// Random wildcard policy — so the sampled set is identical for every
/// shard count, thread count, and next-hop tier.
///
/// # Examples
///
/// ```
/// use debruijn_net::profiler::SpanSampler;
///
/// let sampler = SpanSampler::new(0xDB, 64).unwrap();
/// // Pure: the same message answers the same everywhere.
/// assert_eq!(sampler.sampled(17), sampler.sampled(17));
/// // Rate 0 disables sampling entirely.
/// assert!(SpanSampler::new(0xDB, 0).is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpanSampler {
    seed: u64,
    every: u32,
}

impl SpanSampler {
    /// A sampler tagging ~1 in `every` messages; `None` when `every`
    /// is 0 (sampling off).
    pub fn new(seed: u64, every: u32) -> Option<Self> {
        (every > 0).then_some(Self { seed, every })
    }

    /// The sampling rate denominator.
    pub fn every(&self) -> u32 {
        self.every
    }

    /// Whether `message` is in the sampled set.
    #[inline]
    pub fn sampled(&self, message: u32) -> bool {
        if self.every <= 1 {
            return true;
        }
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(message) << 16);
        SplitMix64::new(mix)
            .next_u64()
            .is_multiple_of(u64::from(self.every))
    }
}

/// One hop of a sampled message's causal path. All times are simulated
/// ticks (deterministic); the shard endpoints expose mailbox crossings
/// for the configured shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSpan {
    /// Message id (the injection index).
    pub message: u32,
    /// 0-based hop.
    pub hop: u32,
    /// Tick the hop was processed (enqueue at the outgoing link).
    pub start: u64,
    /// Tick the message left the link head — `departs - start` is the
    /// FIFO residency (queue wait).
    pub departs: u64,
    /// Arrival tick at the next node — `arrives - departs` is service
    /// plus latency.
    pub arrives: u64,
    /// Shard that processed the hop.
    pub from_shard: u32,
    /// Shard owning the next node (`!= from_shard` ⇒ a mailbox
    /// crossing).
    pub to_shard: u32,
}

/// Terminal record of a sampled message that reached its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledDelivery {
    /// Message id (the injection index).
    pub message: u32,
    /// Injection tick.
    pub injected_at: u64,
    /// Delivery tick.
    pub delivered_at: u64,
    /// Hops taken.
    pub hops: u32,
}

/// One sampled message's spans stitched end to end
/// ([`EngineProfile::critical_paths`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPath {
    /// Message id.
    pub message: u32,
    /// Hops spanned.
    pub hops: u32,
    /// End-to-end simulated ticks (delivery latency when delivered,
    /// first-enqueue → last-arrival otherwise).
    pub ticks: u64,
    /// Total link FIFO residency along the path.
    pub queue_wait: u64,
    /// Total service + latency along the path.
    pub transit: u64,
    /// Hops that crossed a shard boundary (mailbox crossings).
    pub crossings: u32,
    /// Whether the message reached its destination.
    pub delivered: bool,
}

/// One timed lap, for the Chrome-trace export (a slice on the shard's
/// lane). Times are wall-clock nanoseconds from the run's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSlice {
    /// Which phase the lap measured.
    pub phase: Phase,
    /// The shard whose lane carries the slice.
    pub sid: u32,
    /// Nanoseconds from the profiled run's start.
    pub start_nanos: u64,
    /// Lap duration in nanoseconds.
    pub dur_nanos: u64,
}

/// Per-shard wall-clock and work accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardProf {
    /// Shard id.
    pub sid: usize,
    /// Worker that owned the shard (`sid % workers`).
    pub worker: usize,
    /// Nanoseconds draining this shard's inbound mailboxes.
    pub mailbox_nanos: u64,
    /// Nanoseconds restoring this shard's batches to id order.
    pub merge_nanos: u64,
    /// Nanoseconds processing this shard's flights.
    pub compute_nanos: u64,
    /// Flight steps processed (deterministic — a pure function of the
    /// workload and shard count, unlike the timers).
    pub steps: u64,
    /// Outbound mailbox pushes that spilled to the overflow sidecar.
    pub overflows: u64,
}

/// What one shard hands the profiler at end of run (deterministic
/// counters plus the sampled spans it witnessed).
#[derive(Debug, Default)]
pub(crate) struct ShardMeta {
    pub(crate) sid: usize,
    pub(crate) steps: u64,
    pub(crate) overflows: u64,
    pub(crate) spans: Vec<HopSpan>,
    pub(crate) deliveries: Vec<SampledDelivery>,
}

/// Cap on recorded Chrome slices per worker — enough for hundreds of
/// thousands of windows, bounded against degenerate runs.
const MAX_SLICES_PER_WORKER: usize = 1 << 18;

/// One worker's accumulation slots. Each worker locks its own entry
/// for the whole run (the same ownership discipline as the shard
/// states), so there is no cross-thread traffic until the final merge.
#[derive(Debug)]
struct WorkerProf {
    /// Nanos per `(measured phase, sid)`, sid-indexed.
    lap_nanos: [Vec<u64>; 3],
    /// Lap-duration histograms per measured phase.
    lap_hist: [LogHistogram; 3],
    barrier: BarrierWait,
    windows: u64,
    slices: Vec<PhaseSlice>,
    truncated: bool,
}

impl WorkerProf {
    fn new(shards: usize) -> Self {
        Self {
            lap_nanos: std::array::from_fn(|_| vec![0; shards]),
            lap_hist: std::array::from_fn(|_| LogHistogram::new()),
            barrier: BarrierWait::default(),
            windows: 0,
            slices: Vec::new(),
            truncated: false,
        }
    }
}

/// The shared profiling state for one profiled run: an epoch, the
/// sampler, and one mutex-held slot per worker.
#[derive(Debug)]
pub(crate) struct ProfShared {
    shards: usize,
    epoch: Instant,
    slices: bool,
    sampler: Option<SpanSampler>,
    workers: Vec<Mutex<WorkerProf>>,
}

impl ProfShared {
    pub(crate) fn new(workers: usize, shards: usize, seed: u64, config: &ProfileConfig) -> Self {
        Self {
            shards,
            epoch: Instant::now(),
            slices: config.slices,
            sampler: SpanSampler::new(seed, config.sample_every),
            workers: (0..workers)
                .map(|_| Mutex::new(WorkerProf::new(shards)))
                .collect(),
        }
    }

    pub(crate) fn sampler(&self) -> Option<SpanSampler> {
        self.sampler
    }

    /// Locks worker `w`'s slot for the run and starts its lap clock.
    pub(crate) fn begin(&self, w: usize) -> WorkerTimer<'_> {
        WorkerTimer {
            prof: self.workers[w]
                .lock()
                .expect("worker owns its profile slot"),
            epoch: self.epoch,
            slices: self.slices,
            last: Instant::now(),
        }
    }

    /// Assembles the final [`EngineProfile`].
    pub(crate) fn finish(
        self,
        wall_nanos: u64,
        report_nanos: u64,
        metas: Vec<ShardMeta>,
    ) -> EngineProfile {
        let worker_count = self.workers.len();
        let mut shard_profs: Vec<ShardProf> = (0..self.shards)
            .map(|sid| ShardProf {
                sid,
                worker: sid % worker_count,
                ..ShardProf::default()
            })
            .collect();
        let mut barrier = Vec::with_capacity(worker_count);
        let mut phase_hist: Vec<(Phase, LogHistogram)> = Phase::MEASURED
            .iter()
            .map(|&p| (p, LogHistogram::new()))
            .collect();
        let mut windows = 0;
        let mut slices = Vec::new();
        let mut truncated = false;
        for slot in self.workers {
            let wp = slot.into_inner().expect("workers done");
            for (pi, per_sid) in wp.lap_nanos.iter().enumerate() {
                for (sid, &ns) in per_sid.iter().enumerate() {
                    let sp = &mut shard_profs[sid];
                    match pi {
                        0 => sp.mailbox_nanos += ns,
                        1 => sp.merge_nanos += ns,
                        _ => sp.compute_nanos += ns,
                    }
                }
            }
            for (pi, hist) in wp.lap_hist.iter().enumerate() {
                phase_hist[pi].1.merge(hist);
            }
            barrier.push(wp.barrier);
            windows = windows.max(wp.windows);
            slices.extend(wp.slices);
            truncated |= wp.truncated;
        }
        let mut spans = Vec::new();
        let mut deliveries = Vec::new();
        for meta in metas {
            if let Some(sp) = shard_profs.get_mut(meta.sid) {
                sp.steps = meta.steps;
                sp.overflows = meta.overflows;
            }
            spans.extend(meta.spans);
            deliveries.extend(meta.deliveries);
        }
        // Canonical orders, independent of shard/thread interleaving.
        spans.sort_by_key(|s| (s.message, s.hop));
        deliveries.sort_by_key(|d| d.message);
        slices.sort_by_key(|s| (s.start_nanos, s.sid));
        EngineProfile {
            shards: self.shards,
            workers: worker_count,
            wall_nanos,
            report_nanos,
            windows,
            shard_profs,
            barrier,
            phase_hist,
            sample_every: self.sampler.map_or(0, |s| s.every),
            spans,
            deliveries,
            slices,
            slices_truncated: truncated,
        }
    }
}

/// The per-worker lap clock held for the duration of a profiled run.
pub(crate) struct WorkerTimer<'a> {
    prof: MutexGuard<'a, WorkerProf>,
    epoch: Instant,
    slices: bool,
    last: Instant,
}

impl WorkerTimer<'_> {
    /// Restarts the lap clock (call after a barrier so its wait is not
    /// charged to the next phase — the barrier accounts for itself).
    pub(crate) fn reset(&mut self) {
        self.last = Instant::now();
    }

    /// Charges the time since the last lap to `(phase, sid)`.
    pub(crate) fn lap(&mut self, phase: Phase, sid: usize) {
        let now = Instant::now();
        let ns = u64::try_from((now - self.last).as_nanos()).unwrap_or(u64::MAX);
        let pi = phase.lap_index();
        self.prof.lap_nanos[pi][sid] += ns;
        self.prof.lap_hist[pi].record(ns);
        if self.slices {
            if self.prof.slices.len() < MAX_SLICES_PER_WORKER {
                let start = u64::try_from((self.last - self.epoch).as_nanos()).unwrap_or(u64::MAX);
                self.prof.slices.push(PhaseSlice {
                    phase,
                    sid: sid as u32,
                    start_nanos: start,
                    dur_nanos: ns,
                });
            } else {
                self.prof.truncated = true;
            }
        }
        self.last = now;
    }

    /// Counts one window crossing.
    pub(crate) fn window(&mut self) {
        self.prof.windows += 1;
    }

    /// The worker's barrier-wait accumulator, for
    /// [`TickBarrier::sync_min_timed`](debruijn_parallel::TickBarrier::sync_min_timed).
    pub(crate) fn barrier_mut(&mut self) -> &mut BarrierWait {
        &mut self.prof.barrier
    }
}

/// The result of a profiled run: phase breakdown, per-shard balance,
/// barrier accounting, and the sampled causal paths. Produced by
/// [`ShardedSimulation::run_profiled`](crate::ShardedSimulation::run_profiled);
/// rendered by `dbr profile`.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Shard count of the run.
    pub shards: usize,
    /// Worker (thread) count of the run.
    pub workers: usize,
    /// Wall clock of the whole run, nanoseconds.
    pub wall_nanos: u64,
    /// Wall clock of the end-of-run merge + event replay.
    pub report_nanos: u64,
    /// Barrier windows crossed.
    pub windows: u64,
    /// Per-shard accounting, sid order.
    pub shard_profs: Vec<ShardProf>,
    /// Per-worker barrier-wait accounting.
    pub barrier: Vec<BarrierWait>,
    /// Lap-duration histograms (nanoseconds) for the measured phases.
    pub phase_hist: Vec<(Phase, LogHistogram)>,
    /// The sampling denominator (0 = sampling was off).
    pub sample_every: u32,
    /// Sampled per-hop spans, `(message, hop)` order.
    pub spans: Vec<HopSpan>,
    /// Sampled deliveries, message order.
    pub deliveries: Vec<SampledDelivery>,
    /// Chrome-trace lap slices (empty unless [`ProfileConfig::slices`]).
    pub slices: Vec<PhaseSlice>,
    /// Whether the slice cap truncated recording.
    pub slices_truncated: bool,
}

impl EngineProfile {
    /// Total nanoseconds per phase, [`Phase::ALL`] order.
    pub fn phase_totals(&self) -> Vec<(Phase, u64)> {
        Phase::ALL
            .iter()
            .map(|&p| {
                let total = match p {
                    Phase::Mailbox => self.shard_profs.iter().map(|s| s.mailbox_nanos).sum(),
                    Phase::Merge => self.shard_profs.iter().map(|s| s.merge_nanos).sum(),
                    Phase::Compute => self.shard_profs.iter().map(|s| s.compute_nanos).sum(),
                    Phase::Barrier => self.barrier.iter().map(|b| b.nanos).sum(),
                    Phase::Report => self.report_nanos,
                };
                (p, total)
            })
            .collect()
    }

    /// Mailbox pushes that spilled to the overflow sidecar, all shards.
    pub fn mailbox_overflows(&self) -> u64 {
        self.shard_profs.iter().map(|s| s.overflows).sum()
    }

    /// Flight steps processed, all shards.
    pub fn total_steps(&self) -> u64 {
        self.shard_profs.iter().map(|s| s.steps).sum()
    }

    /// Distinct sampled messages (with spans or a sampled delivery).
    pub fn sampled_messages(&self) -> usize {
        let mut n = 0;
        let mut last = None;
        for s in &self.spans {
            if last != Some(s.message) {
                n += 1;
                last = Some(s.message);
            }
        }
        for d in &self.deliveries {
            if self
                .spans
                .binary_search_by_key(&d.message, |s| s.message)
                .is_err()
            {
                n += 1;
            }
        }
        n
    }

    /// `max/mean` of per-shard flight steps — the deterministic load
    /// imbalance (1.0 = perfectly balanced).
    pub fn step_imbalance(&self) -> f64 {
        Self::imbalance_of(self.shard_profs.iter().map(|s| s.steps))
    }

    /// `max/mean` of per-shard compute nanoseconds — the wall-clock
    /// imbalance (includes per-step cost differences).
    pub fn compute_imbalance(&self) -> f64 {
        Self::imbalance_of(self.shard_profs.iter().map(|s| s.compute_nanos))
    }

    fn imbalance_of(values: impl Iterator<Item = u64>) -> f64 {
        let (mut max, mut sum, mut n) = (0u64, 0u128, 0u64);
        for v in values {
            max = max.max(v);
            sum += u128::from(v);
            n += 1;
        }
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / n as f64;
        max as f64 / mean
    }

    /// The top-`k` sampled messages by end-to-end simulated ticks,
    /// ties broken by message id — a deterministic ranking of the
    /// slowest causal paths.
    pub fn critical_paths(&self, k: usize) -> Vec<CriticalPath> {
        let mut paths: Vec<CriticalPath> = Vec::new();
        let mut i = 0;
        while i < self.spans.len() {
            let message = self.spans[i].message;
            let mut j = i;
            let (mut queue_wait, mut transit, mut crossings) = (0u64, 0u64, 0u32);
            while j < self.spans.len() && self.spans[j].message == message {
                let s = &self.spans[j];
                queue_wait += s.departs - s.start;
                transit += s.arrives - s.departs;
                crossings += u32::from(s.from_shard != s.to_shard);
                j += 1;
            }
            let delivery = self
                .deliveries
                .binary_search_by_key(&message, |d| d.message)
                .ok()
                .map(|idx| self.deliveries[idx]);
            let ticks = match delivery {
                Some(d) => d.delivered_at - d.injected_at,
                None => self.spans[j - 1].arrives - self.spans[i].start,
            };
            paths.push(CriticalPath {
                message,
                hops: (j - i) as u32,
                ticks,
                queue_wait,
                transit,
                crossings,
                delivered: delivery.is_some(),
            });
            i = j;
        }
        paths.sort_by(|a, b| b.ticks.cmp(&a.ticks).then(a.message.cmp(&b.message)));
        paths.truncate(k);
        paths
    }

    /// The human-readable `== engine profile ==` block printed by
    /// `dbr profile`, with the top-`top` critical paths.
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("== engine profile ==\n");
        let _ = writeln!(
            out,
            "wall clock:   {} | windows {} | {} worker(s) over {} shard(s)",
            fmt_ns(self.wall_nanos),
            self.windows,
            self.workers,
            self.shards
        );
        let totals = self.phase_totals();
        let grand: u64 = totals.iter().map(|&(_, ns)| ns).sum();
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>8}   lap distribution",
            "phase", "total", "share"
        );
        for (phase, ns) in &totals {
            let share = if grand == 0 {
                0.0
            } else {
                100.0 * *ns as f64 / grand as f64
            };
            let lap = self
                .phase_hist
                .iter()
                .find(|(p, _)| p == phase)
                .map(|(_, h)| {
                    if h.is_empty() {
                        "(no laps)".to_string()
                    } else {
                        h.summary()
                    }
                });
            let lap = match phase {
                Phase::Barrier => {
                    let spins: u64 = self.barrier.iter().map(|b| b.spins).sum();
                    let yields: u64 = self.barrier.iter().map(|b| b.yields).sum();
                    Some(format!("spins {spins}, yields {yields}"))
                }
                _ => lap,
            };
            let line = format!(
                "{:<10} {:>12} {:>7.1}%   {}",
                phase.name(),
                fmt_ns(*ns),
                share,
                lap.unwrap_or_default()
            );
            let _ = writeln!(out, "{}", line.trim_end());
        }
        let _ = writeln!(out, "mailbox overflow spills: {}", self.mailbox_overflows());
        let _ = writeln!(
            out,
            "{:<6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "shard", "worker", "steps", "compute", "mailbox", "merge", "overflow"
        );
        for sp in &self.shard_profs {
            let _ = writeln!(
                out,
                "{:<6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10}",
                sp.sid,
                sp.worker,
                sp.steps,
                fmt_ns(sp.compute_nanos),
                fmt_ns(sp.mailbox_nanos),
                fmt_ns(sp.merge_nanos),
                sp.overflows
            );
        }
        let _ = writeln!(
            out,
            "imbalance:    steps {:.2}x, compute {:.2}x (max/mean over shards)",
            self.step_imbalance(),
            self.compute_imbalance()
        );
        if self.sample_every == 0 {
            out.push_str("sampler:      off\n");
        } else {
            let _ = writeln!(
                out,
                "sampler:      1/{} by seed-hashed message id | {} message(s), {} span(s)",
                self.sample_every,
                self.sampled_messages(),
                self.spans.len()
            );
            let paths = self.critical_paths(top);
            let _ = writeln!(
                out,
                "critical paths (top {} sampled by end-to-end ticks):",
                paths.len()
            );
            for p in paths {
                let _ = writeln!(
                    out,
                    "  msg {:>8}  {:>6} ticks  {:>3} hops  wait {:>6}  transit {:>6}  \
                     crossings {:>3}  {}",
                    p.message,
                    p.ticks,
                    p.hops,
                    p.queue_wait,
                    p.transit,
                    p.crossings,
                    if p.delivered {
                        "delivered"
                    } else {
                        "in flight"
                    }
                );
            }
        }
        out
    }

    /// A self-describing JSON document for tooling (`--profile-out`),
    /// with the top-`top` critical paths.
    pub fn to_json(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"dbr-engine-profile/v1\",\n");
        let _ = writeln!(
            out,
            "  \"shards\": {}, \"workers\": {}, \"windows\": {},",
            self.shards, self.workers, self.windows
        );
        let _ = writeln!(
            out,
            "  \"wall_ns\": {}, \"report_ns\": {}, \"total_steps\": {},",
            self.wall_nanos,
            self.report_nanos,
            self.total_steps()
        );
        let totals = self.phase_totals();
        let grand: u64 = totals.iter().map(|&(_, ns)| ns).sum();
        out.push_str("  \"phases\": [");
        for (i, (phase, ns)) in totals.iter().enumerate() {
            let share = if grand == 0 {
                0.0
            } else {
                *ns as f64 / grand as f64
            };
            let _ = write!(
                out,
                "{}{{\"phase\":\"{}\",\"total_ns\":{},\"share\":{:.4}}}",
                if i == 0 { "" } else { "," },
                phase.name(),
                ns,
                share
            );
        }
        out.push_str("],\n  \"shards_detail\": [");
        for (i, sp) in self.shard_profs.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"sid\":{},\"worker\":{},\"steps\":{},\"compute_ns\":{},\
                 \"mailbox_ns\":{},\"merge_ns\":{},\"overflows\":{}}}",
                if i == 0 { "" } else { "," },
                sp.sid,
                sp.worker,
                sp.steps,
                sp.compute_nanos,
                sp.mailbox_nanos,
                sp.merge_nanos,
                sp.overflows
            );
        }
        out.push_str("],\n  \"barrier\": [");
        for (w, b) in self.barrier.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"worker\":{},\"wait_ns\":{},\"spins\":{},\"yields\":{},\"rounds\":{}}}",
                if w == 0 { "" } else { "," },
                w,
                b.nanos,
                b.spins,
                b.yields,
                b.rounds
            );
        }
        let _ = writeln!(
            out,
            "],\n  \"imbalance\": {{\"steps\": {:.4}, \"compute\": {:.4}}},",
            self.step_imbalance(),
            self.compute_imbalance()
        );
        let _ = writeln!(
            out,
            "  \"sampler\": {{\"every\": {}, \"messages\": {}, \"spans\": {}}},",
            self.sample_every,
            self.sampled_messages(),
            self.spans.len()
        );
        out.push_str("  \"critical_paths\": [");
        for (i, p) in self.critical_paths(top).iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"message\":{},\"ticks\":{},\"hops\":{},\"queue_wait\":{},\
                 \"transit\":{},\"crossings\":{},\"delivered\":{}}}",
                if i == 0 { "" } else { "," },
                p.message,
                p.ticks,
                p.hops,
                p.queue_wait,
                p.transit,
                p.crossings,
                p.delivered
            );
        }
        let _ = writeln!(
            out,
            "],\n  \"mailbox_overflows\": {}\n}}",
            self.mailbox_overflows()
        );
        out
    }

    /// A Chrome trace-event JSON array with one lane (thread track)
    /// per shard carrying its phase slices — same framing as the
    /// simulator's [`ChromeTraceRecorder`](crate::ChromeTraceRecorder),
    /// so the file loads in `chrome://tracing` / Perfetto. Wall-clock
    /// nanoseconds map to the format's microseconds with fractional
    /// precision. Empty (but valid) when slices were not recorded.
    pub fn chrome_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let lead = |out: &mut String| {
            out.push_str(if out.is_empty() { "[\n" } else { ",\n" });
        };
        for sp in &self.shard_profs {
            lead(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"shard {} (worker {})\"}}}}",
                sp.sid, sp.sid, sp.worker
            );
        }
        for s in &self.slices {
            lead(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
                s.phase.name(),
                s.start_nanos as f64 / 1000.0,
                s.dur_nanos as f64 / 1000.0,
                s.sid
            );
        }
        if out.is_empty() {
            out.push('[');
        }
        out.push_str("\n]\n");
        out
    }

    /// Publishes the profile into a [`MetricsRegistry`] as labeled
    /// families: `dbr_engine_phase_nanos_total{phase=…}` counters,
    /// `dbr_engine_phase_lap_ns{phase=…}` lap histograms, window /
    /// overflow / sampling counters.
    pub fn export_to(&self, registry: &MetricsRegistry) {
        for (phase, ns) in self.phase_totals() {
            registry
                .counter_with(
                    "dbr_engine_phase_nanos_total",
                    "Wall-clock nanoseconds per engine phase.",
                    &[("phase", phase.name())],
                )
                .add(ns);
        }
        for (phase, hist) in &self.phase_hist {
            registry
                .histogram_with(
                    "dbr_engine_phase_lap_ns",
                    "Lap durations per engine phase, nanoseconds.",
                    &[("phase", phase.name())],
                )
                .merge_from(hist);
        }
        registry
            .counter(
                "dbr_engine_windows_total",
                "Barrier windows crossed by the sharded engine.",
            )
            .add(self.windows);
        registry
            .counter(
                "dbr_engine_mailbox_overflow_total",
                "Mailbox pushes that spilled to the overflow sidecar.",
            )
            .add(self.mailbox_overflows());
        registry
            .counter(
                "dbr_engine_sampled_messages_total",
                "Messages tagged by the causal span sampler.",
            )
            .add(self.sampled_messages() as u64);
        registry
            .counter(
                "dbr_engine_sampled_spans_total",
                "Per-hop causal spans recorded by the sampler.",
            )
            .add(self.spans.len() as u64);
    }
}

/// Human duration: nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        message: u32,
        hop: u32,
        start: u64,
        departs: u64,
        arrives: u64,
        fs: u32,
        ts: u32,
    ) -> HopSpan {
        HopSpan {
            message,
            hop,
            start,
            departs,
            arrives,
            from_shard: fs,
            to_shard: ts,
        }
    }

    fn profile_with(spans: Vec<HopSpan>, deliveries: Vec<SampledDelivery>) -> EngineProfile {
        EngineProfile {
            shards: 2,
            workers: 1,
            wall_nanos: 1000,
            report_nanos: 10,
            windows: 3,
            shard_profs: vec![
                ShardProf {
                    sid: 0,
                    worker: 0,
                    compute_nanos: 600,
                    steps: 30,
                    ..ShardProf::default()
                },
                ShardProf {
                    sid: 1,
                    worker: 0,
                    compute_nanos: 200,
                    steps: 10,
                    ..ShardProf::default()
                },
            ],
            barrier: vec![BarrierWait::default()],
            phase_hist: Phase::MEASURED
                .iter()
                .map(|&p| (p, LogHistogram::new()))
                .collect(),
            sample_every: 4,
            spans,
            deliveries,
            slices: Vec::new(),
            slices_truncated: false,
        }
    }

    #[test]
    fn sampler_is_a_pure_function_with_roughly_the_requested_rate() {
        let sampler = SpanSampler::new(0xDB, 64).unwrap();
        let hits: Vec<u32> = (0..100_000).filter(|&m| sampler.sampled(m)).collect();
        // Around 1/64 of 100k = 1562; the hash is uniform enough that a
        // 3x band holds with huge margin.
        assert!(hits.len() > 500 && hits.len() < 4700, "{}", hits.len());
        // Purity: a second evaluation selects the identical set.
        let again: Vec<u32> = (0..100_000).filter(|&m| sampler.sampled(m)).collect();
        assert_eq!(hits, again);
        // Different seeds select different sets.
        let other = SpanSampler::new(0xDB + 1, 64).unwrap();
        assert_ne!(
            hits,
            (0..100_000)
                .filter(|&m| other.sampled(m))
                .collect::<Vec<_>>()
        );
        // Rate 1 samples everything; rate 0 is off.
        let all = SpanSampler::new(0xDB, 1).unwrap();
        assert!((0..1000).all(|m| all.sampled(m)));
        assert!(SpanSampler::new(0xDB, 0).is_none());
    }

    #[test]
    fn critical_paths_stitch_spans_and_rank_by_ticks() {
        let spans = vec![
            // msg 3: two hops, 1 tick queue wait, one shard crossing.
            span(3, 0, 0, 1, 3, 0, 1),
            span(3, 1, 3, 3, 5, 1, 1),
            // msg 7: one hop, slower end to end (delivered late).
            span(7, 0, 0, 4, 6, 0, 0),
        ];
        let deliveries = vec![
            SampledDelivery {
                message: 3,
                injected_at: 0,
                delivered_at: 5,
                hops: 2,
            },
            SampledDelivery {
                message: 7,
                injected_at: 0,
                delivered_at: 6,
                hops: 1,
            },
        ];
        let profile = profile_with(spans, deliveries);
        let paths = profile.critical_paths(10);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].message, 7);
        assert_eq!(paths[0].ticks, 6);
        assert_eq!(paths[0].queue_wait, 4);
        assert_eq!(paths[0].transit, 2);
        assert_eq!(paths[0].crossings, 0);
        assert!(paths[0].delivered);
        assert_eq!(paths[1].message, 3);
        assert_eq!(paths[1].ticks, 5);
        assert_eq!(paths[1].queue_wait, 1);
        assert_eq!(paths[1].transit, 4);
        assert_eq!(paths[1].crossings, 1);
        // Truncation honors k.
        assert_eq!(profile.critical_paths(1).len(), 1);
        assert_eq!(profile.sampled_messages(), 2);
    }

    #[test]
    fn undelivered_paths_fall_back_to_span_arithmetic() {
        let profile = profile_with(vec![span(9, 0, 2, 2, 4, 0, 0)], Vec::new());
        let paths = profile.critical_paths(5);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].ticks, 2); // 4 - 2
        assert!(!paths[0].delivered);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let profile = profile_with(Vec::new(), Vec::new());
        // steps 30 and 10: mean 20, max 30 -> 1.5.
        assert!((profile.step_imbalance() - 1.5).abs() < 1e-9);
        // compute 600/200: mean 400, max 600 -> 1.5.
        assert!((profile.compute_imbalance() - 1.5).abs() < 1e-9);
        // All-zero shards read as balanced, not NaN.
        let mut empty = profile.clone();
        for sp in &mut empty.shard_profs {
            sp.steps = 0;
            sp.compute_nanos = 0;
        }
        assert_eq!(empty.step_imbalance(), 1.0);
        assert_eq!(empty.compute_imbalance(), 1.0);
    }

    #[test]
    fn render_and_json_carry_the_headline_sections() {
        let profile = profile_with(
            vec![span(3, 0, 0, 1, 3, 0, 1)],
            vec![SampledDelivery {
                message: 3,
                injected_at: 0,
                delivered_at: 3,
                hops: 1,
            }],
        );
        let text = profile.render(5);
        for needle in [
            "== engine profile ==",
            "phase",
            "compute",
            "barrier",
            "imbalance:",
            "sampler:      1/4",
            "critical paths (top 1",
            "msg        3",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let json = profile.to_json(5);
        for needle in [
            "\"schema\": \"dbr-engine-profile/v1\"",
            "\"phases\": [",
            "\"shards_detail\": [",
            "\"barrier\": [",
            "\"imbalance\": {",
            "\"critical_paths\": [",
            "\"mailbox_overflows\": 0",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
        // Cheap well-formedness: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_uses_the_array_framing_with_shard_lanes() {
        let mut profile = profile_with(Vec::new(), Vec::new());
        profile.slices = vec![PhaseSlice {
            phase: Phase::Compute,
            sid: 1,
            start_nanos: 1500,
            dur_nanos: 2500,
        }];
        let text = profile.chrome_trace();
        assert!(text.starts_with("[\n{"), "{text}");
        assert!(text.ends_with("\n]\n"), "{text}");
        assert!(text.contains("\"name\":\"shard 0 (worker 0)\""), "{text}");
        assert!(
            text.contains(
                "\"name\":\"compute\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2.500"
            ),
            "{text}"
        );
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn export_to_registers_engine_families() {
        let profile = profile_with(
            vec![span(3, 0, 0, 1, 3, 0, 1)],
            vec![SampledDelivery {
                message: 3,
                injected_at: 0,
                delivered_at: 3,
                hops: 1,
            }],
        );
        let registry = MetricsRegistry::new();
        profile.export_to(&registry);
        let text = registry.snapshot().render();
        for needle in [
            "dbr_engine_phase_nanos_total{phase=\"compute\"} 800",
            "dbr_engine_phase_lap_ns",
            "dbr_engine_windows_total 3",
            "dbr_engine_mailbox_overflow_total 0",
            "dbr_engine_sampled_messages_total 1",
            "dbr_engine_sampled_spans_total 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(17), "17 ns");
        assert_eq!(fmt_ns(1_700), "1.70 us");
        assert_eq!(fmt_ns(1_700_000), "1.70 ms");
        assert_eq!(fmt_ns(1_700_000_000), "1.70 s");
    }
}
