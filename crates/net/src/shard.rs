//! Sharded deterministic simulation: the simulator as a throughput
//! engine.
//!
//! [`Simulation`](crate::Simulation) is an exact, fully-featured
//! discrete-event loop — and single-threaded, at microseconds per
//! message mostly spent re-deriving routes from the paper's word-level
//! algorithms. [`ShardedSimulation`] is the scale-out counterpart:
//!
//! * **Tiered fast-path forwarding** ([`NextHopMode`]): a precomputed
//!   [`NextHopTable`] answers "which port moves this message closer?"
//!   with one indexed load when the space fits its memory cap; above
//!   the cap a [`CompressedNextHop`] cursor predicts the *same ports*
//!   from the shift structure with `O(k)` state — so `DG(2,20)` and
//!   beyond stay on a fast path instead of falling back to the
//!   word-level routers (which remain available as an explicit third
//!   tier). [`RankSpace`] arithmetic replaces per-hop [`Word`]
//!   allocation on every tier.
//! * **Conservative time-stepped parallelism**: nodes are partitioned
//!   into `S` contiguous rank ranges (shards); each shard owns its
//!   event queue, message arena, link state, and report accumulators.
//!   Every link has lookahead `L = service + latency ≥ 1` ticks, so a
//!   message forwarded at tick `T` cannot arrive before `T + L`:
//!   each worker processes the whole window `[T, T + L)` with no
//!   coordination, exchanges cross-shard messages through fixed-
//!   capacity SPSC ring mailboxes (single producer and single consumer
//!   per `(src, dst)` shard pair — no locks on the fast path, a
//!   mutexed sidecar absorbs overflow), and agrees on the next window
//!   at a spinning [`TickBarrier`](debruijn_parallel::TickBarrier).
//! * **Bit-for-bit determinism**: each tick's batch is restored to
//!   message-id order before processing (a natural-run merge — pushes
//!   arrive as pre-sorted runs, so an already-ordered batch costs one
//!   scan), mailboxes are drained in fixed shard order, per-shard
//!   partial reports merge over order-independent
//!   (sum/max/`BTreeMap`) accumulators, and recorded events are
//!   replayed to the [`Recorder`] in a canonical `(tick, message)`
//!   order — so the final report, trace, and metrics are identical for
//!   **any** `--shards`/`--threads` combination *and* any
//!   [`NextHopMode`] except the fallback tier (the same contract the
//!   batch routing drivers established, and tested the same way).
//!
//! See `docs/SCALING.md` for the full architecture (mailboxes,
//! windowed barrier, determinism proof sketch, next-hop compression)
//! and ADR 0005/0006 for the alternatives this design rejected.

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use debruijn_core::distance;
use debruijn_core::distance::undirected::Engine;
use debruijn_core::rng::SplitMix64;
use debruijn_core::routing::table::DEFAULT_TABLE_MEMORY_CAP;
use debruijn_core::routing::{
    self, CompressedNextHop, CompressedScratch, NextHopTable, RoutingScratch,
};
use debruijn_core::space::RankSpace;
use debruijn_core::{DeBruijn, Digit, RoutePath, ShiftKind, Word};

use crate::profiler::{
    EngineProfile, HopSpan, Phase, ProfShared, ProfileConfig, SampledDelivery, ShardMeta,
    SpanSampler, WorkerTimer,
};
use crate::record::{DropReason, NetEvent, NullRecorder, Observe, Recorder};
use crate::router::RouterKind;
use crate::sim::{FaultHandling, Injection, NetError, SimConfig};
use crate::stats::SimReport;

/// A sharded, deterministic, time-stepped simulation of `DG(d,k)`.
///
/// Honors the [`SimConfig`] fields that make sense for next-hop
/// forwarding: `router` selects the network model (Algorithm 1 ⇒
/// directed, Algorithms 2/4 ⇒ undirected), `policy` resolves wildcard
/// first steps on the engine-fallback path, `link`, `seed`, `threads`
/// and `ttl` behave as in [`Simulation`](crate::Simulation). Node
/// faults drop messages ([`FaultHandling::Drop`]); source rerouting,
/// link faults, and the non-optimal routers (`Trivial`, `Multipath`)
/// are not supported — the constructor rejects them.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::shard::ShardedSimulation;
/// use debruijn_net::{workload, SimConfig, Simulation};
///
/// let space = DeBruijn::new(2, 6)?;
/// let traffic = workload::uniform_random(space, 500, 7);
/// let sharded = ShardedSimulation::new(space, SimConfig::default(), 4)?;
/// let report = sharded.run(&traffic);
/// // Optimal next-hop forwarding delivers everything at distance hops,
/// // so the hop histogram matches the word-level source router's.
/// let classic = Simulation::new(space, SimConfig::default())?.run(&traffic);
/// assert_eq!(report.hop_histogram, classic.hop_histogram);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardedSimulation {
    space: DeBruijn,
    config: SimConfig,
    shards: usize,
    ranks: RankSpace,
    directed: bool,
    path: FastPath,
    table_cap: usize,
    /// Faulty nodes by rank.
    faults: HashSet<u64>,
}

/// Which next-hop tier the sharded engine forwards with. `Auto` (the
/// default) resolves to the fastest tier the space admits: the dense
/// table when it fits the memory cap, the compressed shift-prediction
/// cursor beyond it. The three concrete tiers produce byte-identical
/// reports for the dense/compressed pair (the compressed engine
/// reproduces the dense table's ports exactly); the word-level fallback
/// also routes optimally but resolves wildcard steps through the
/// configured policy, so it is only selectable explicitly.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::shard::{NextHopMode, ShardedSimulation};
/// use debruijn_net::SimConfig;
///
/// let space = DeBruijn::new(2, 6)?;
/// let sim = ShardedSimulation::new(space, SimConfig::default(), 2)?;
/// // 64 nodes fit the dense cap comfortably.
/// assert_eq!(sim.next_hop_mode(), NextHopMode::Dense);
/// let sim = sim.with_next_hop(NextHopMode::Compressed)?;
/// assert_eq!(sim.next_hop_mode(), NextHopMode::Compressed);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NextHopMode {
    /// Dense if it fits the memory cap, else compressed.
    #[default]
    Auto,
    /// Force the dense [`NextHopTable`] (error if it cannot be built).
    Dense,
    /// Force the compressed shift-prediction cursor.
    Compressed,
    /// Force the word-level router fallback (Algorithm 1 / Theorem 2
    /// engines per hop).
    Fallback,
}

/// The resolved forwarding tier (see [`NextHopMode`]).
#[derive(Debug)]
enum FastPath {
    Dense(NextHopTable),
    Compressed(CompressedNextHop),
    Fallback,
}

/// One in-flight message: plain-old-data, moved by value between shard
/// arenas and mailboxes — no per-message heap allocation.
#[derive(Debug, Clone, Copy)]
struct Flight {
    /// Index in the injected traffic; also the deterministic sort key.
    id: u32,
    at: u64,
    dst: u64,
    /// The node that forwarded the message to `at` (equal to `at`
    /// until the first hop) — the `upstream` of a drop event.
    prev: u64,
    injected_at: u64,
    hops: u32,
    /// Remaining distance to `dst` — the compressed next-hop cursor,
    /// maintained only on the compressed tier (0 elsewhere).
    dist: u32,
    /// Fault-free shortest distance, recorded at injection for
    /// observability (0 when unobserved).
    shortest: u32,
    /// Whether the profiler's [`SpanSampler`] tagged this message for
    /// causal span tracing (always `false` on unprofiled runs).
    sampled: bool,
}

/// Per-tick event storage with a free-list of batch vectors, so a
/// shard's steady-state tick processing recycles arena buffers instead
/// of allocating.
#[derive(Debug, Default)]
struct TickQueue {
    by_tick: BTreeMap<u64, Vec<Flight>>,
    pool: Vec<Vec<Flight>>,
}

impl TickQueue {
    fn push(&mut self, tick: u64, flight: Flight) {
        use std::collections::btree_map::Entry;
        match self.by_tick.entry(tick) {
            Entry::Occupied(e) => e.into_mut().push(flight),
            Entry::Vacant(v) => {
                let mut batch = self.pool.pop().unwrap_or_default();
                batch.push(flight);
                v.insert(batch);
            }
        }
    }

    fn take(&mut self, tick: u64) -> Option<Vec<Flight>> {
        self.by_tick.remove(&tick)
    }

    fn recycle(&mut self, mut batch: Vec<Flight>) {
        batch.clear();
        if self.pool.len() < 64 {
            self.pool.push(batch);
        }
    }

    fn next_tick(&self) -> u64 {
        self.by_tick.keys().next().copied().unwrap_or(u64::MAX)
    }
}

/// One `(arrival tick, flight)` ring entry, written by the producer
/// before its release store of `tail` and read by the consumer after
/// its acquire load of it.
type RingSlot = UnsafeCell<MaybeUninit<(u64, Flight)>>;

/// A fixed-capacity single-producer/single-consumer ring mailbox for
/// one `(source shard, destination shard)` pair, with a mutexed sidecar
/// for overflow.
///
/// The shard→worker assignment is static (`sid % workers`), so exactly
/// one worker ever pushes to a given ring (the one owning the source
/// shard) and exactly one ever drains it (the one owning the
/// destination shard) — the SPSC invariant holds by construction and
/// the fast path needs two atomics per transfer instead of a mutex per
/// message. Entries pushed during window `W` carry arrival ticks
/// `≥ W_end`, so whether a racing push lands in this window's drain or
/// the next cannot change any batch at processing time (same argument
/// as the previous mutexed mailboxes, now lock-free).
struct SpscRing {
    mask: usize,
    slots: Box<[RingSlot]>,
    /// Consumer position; only `drain_into` advances it.
    head: AtomicUsize,
    /// Producer position; only `push` advances it.
    tail: AtomicUsize,
    /// Set by the producer after a sidecar push so the consumer only
    /// locks the mutex when something actually spilled.
    spilled: AtomicBool,
    overflow: Mutex<Vec<(u64, Flight)>>,
}

// SAFETY: the ring is shared across worker threads, but each slot is
// written only by the single producer (before its release store of
// `tail`) and read only by the single consumer (after its acquire load
// of `tail`), so no slot is ever accessed concurrently.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl SpscRing {
    /// Ring capacity per mailbox: bounded so the `S × S` mailbox matrix
    /// stays within a fixed memory budget at any shard count, and the
    /// sidecar handles bursts beyond it.
    fn capacity(shards: usize) -> usize {
        ((1usize << 20) / (shards * shards))
            .clamp(16, 256)
            .next_power_of_two()
    }

    fn new(shards: usize) -> Self {
        let capacity = Self::capacity(shards);
        Self {
            mask: capacity - 1,
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            spilled: AtomicBool::new(false),
            overflow: Mutex::new(Vec::new()),
        }
    }

    /// Producer side: deposits one `(arrival tick, flight)` entry.
    /// Returns whether the entry spilled to the overflow sidecar (a
    /// timing-dependent fact — profiler accounting only, never part of
    /// the deterministic report).
    fn push(&self, entry: (u64, Flight)) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) <= self.mask {
            // SAFETY: `tail - head <= mask` means the slot is free, and
            // only this producer writes slots at `tail`.
            unsafe { (*self.slots[tail & self.mask].get()).write(entry) };
            self.tail.store(tail.wrapping_add(1), Ordering::Release);
            false
        } else {
            self.overflow.lock().expect("mailbox sidecar").push(entry);
            self.spilled.store(true, Ordering::Release);
            true
        }
    }

    /// Consumer side: moves every deposited entry into `queue`.
    fn drain_into(&self, queue: &mut TickQueue) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut i = head;
        while i != tail {
            // SAFETY: entries in `head..tail` were fully written before
            // the producer's release store of `tail`, and only this
            // consumer reads them.
            let (t, f) = unsafe { (*self.slots[i & self.mask].get()).assume_init_read() };
            queue.push(t, f);
            i = i.wrapping_add(1);
        }
        self.head.store(tail, Ordering::Release);
        if self.spilled.swap(false, Ordering::AcqRel) {
            let mut sidecar = self.overflow.lock().expect("mailbox sidecar");
            for (t, f) in sidecar.drain(..) {
                queue.push(t, f);
            }
        }
    }
}

/// Index of the first element of `v[start..]` that breaks the
/// non-decreasing id run starting at `start`.
fn run_end(v: &[Flight], start: usize) -> usize {
    let mut end = start + 1;
    while end < v.len() && v[end].id >= v[end - 1].id {
        end += 1;
    }
    end
}

/// One bottom-up pass: merges adjacent pairs of non-decreasing id runs
/// of `input` into `output`; returns the number of runs found.
fn merge_pass(input: &[Flight], output: &mut Vec<Flight>) -> usize {
    output.clear();
    output.reserve(input.len());
    let mut runs = 0;
    let mut i = 0;
    while i < input.len() {
        let mid = run_end(input, i);
        runs += 1;
        if mid == input.len() {
            output.extend_from_slice(&input[i..]);
            break;
        }
        let end = run_end(input, mid);
        runs += 1;
        let (mut a, mut b) = (i, mid);
        while a < mid && b < end {
            if input[a].id <= input[b].id {
                output.push(input[a]);
                a += 1;
            } else {
                output.push(input[b]);
                b += 1;
            }
        }
        output.extend_from_slice(&input[a..mid]);
        output.extend_from_slice(&input[b..end]);
        i = end;
    }
    runs
}

/// Restores a tick batch to canonical message-id order.
///
/// Batches are concatenations of already-sorted runs — every enqueue
/// source (injection seeding, a local forward loop, one mailbox drain
/// from one sender tick) appends ids in increasing order — so instead
/// of a full `sort_unstable` per tick, this is a natural-run merge:
/// one `O(B)` scan when the batch is already sorted (the common case
/// at low shard counts), `O(B log R)` for `R` runs otherwise.
fn sort_by_id(batch: &mut Vec<Flight>, scratch: &mut Vec<Flight>) {
    if batch.len() <= 1 || run_end(batch, 0) == batch.len() {
        return;
    }
    loop {
        let runs = merge_pass(batch, scratch);
        if runs <= 1 {
            return;
        }
        std::mem::swap(batch, scratch);
    }
}

/// Per-link FIFO state and load counters, keyed by `(from, to)` node
/// pairs exactly like [`SimReport::link_loads`].
#[derive(Debug)]
enum LinkState {
    /// Table mode: the shard's nodes are few, so links live in flat
    /// arrays indexed by `(node − base) · ports + canonical port`.
    Dense {
        base: u64,
        ports: usize,
        free: Vec<u64>,
        loads: Vec<u64>,
    },
    /// Fallback mode (space above the table cap): hash/tree maps.
    Sparse {
        free: HashMap<(u64, u64), u64>,
        loads: BTreeMap<(u128, u128), u64>,
    },
}

impl LinkState {
    /// The canonical slot for the link `at → next`: parallel shift
    /// operations can alias (e.g. `X⁻(a) = X⁺(b)`), and the report
    /// keys links by endpoints, so all aliases share the slot of the
    /// smallest port reaching `next`.
    fn dense_slot(ranks: &RankSpace, base: u64, ports: usize, at: u64, next: u64) -> usize {
        let d = ranks.space().d();
        for p in 0..ports as u8 {
            let target = if p < d {
                ranks.shift_left(at, p)
            } else {
                ranks.shift_right(at, p - d)
            };
            if target == next {
                return (at - base) as usize * ports + p as usize;
            }
        }
        unreachable!("next must be a neighbor of at")
    }

    fn free_time(&self, ranks: &RankSpace, at: u64, next: u64) -> u64 {
        match self {
            LinkState::Dense {
                base, ports, free, ..
            } => free[Self::dense_slot(ranks, *base, *ports, at, next)],
            LinkState::Sparse { free, .. } => free.get(&(at, next)).copied().unwrap_or(0),
        }
    }

    /// Books one message on the link: bumps the FIFO free time and the
    /// load counter, returning the departure tick.
    fn book(&mut self, ranks: &RankSpace, at: u64, next: u64, now: u64, service: u64) -> u64 {
        match self {
            LinkState::Dense {
                base,
                ports,
                free,
                loads,
            } => {
                let slot = Self::dense_slot(ranks, *base, *ports, at, next);
                let depart = now.max(free[slot]);
                free[slot] = depart + service;
                loads[slot] += 1;
                depart
            }
            LinkState::Sparse { free, loads } => {
                let f = free.entry((at, next)).or_insert(0);
                let depart = now.max(*f);
                *f = depart + service;
                *loads.entry((u128::from(at), u128::from(next))).or_insert(0) += 1;
                depart
            }
        }
    }

    /// Folds this shard's loads into the merged report map.
    fn merge_loads(self, ranks: &RankSpace, into: &mut BTreeMap<(u128, u128), u64>) {
        match self {
            LinkState::Dense {
                base, ports, loads, ..
            } => {
                let d = ranks.space().d();
                for (slot, &load) in loads.iter().enumerate() {
                    if load == 0 {
                        continue;
                    }
                    let node = base + (slot / ports) as u64;
                    let p = (slot % ports) as u8;
                    let target = if p < d {
                        ranks.shift_left(node, p)
                    } else {
                        ranks.shift_right(node, p - d)
                    };
                    *into
                        .entry((u128::from(node), u128::from(target)))
                        .or_insert(0) += load;
                }
            }
            LinkState::Sparse { loads, .. } => {
                for (key, load) in loads {
                    *into.entry(key).or_insert(0) += load;
                }
            }
        }
    }
}

/// Everything one shard owns: nodes `[lo, hi)`, their event queue and
/// arena, link state, wildcard counters, partial report, and (when
/// observed) the events it witnessed.
#[derive(Debug)]
struct ShardState {
    sid: usize,
    links: LinkState,
    /// Per-node round-robin wildcard counters (fallback path only).
    rr: HashMap<u64, u8>,
    report: SimReport,
    events: Vec<NetEvent>,
    queue: TickQueue,
    scratch: RoutingScratch,
    cscratch: CompressedScratch,
    /// Spare buffer for the natural-run batch merge ([`sort_by_id`]).
    merge: Vec<Flight>,
    route: RoutePath,
    /// Flight steps processed — deterministic work accounting for the
    /// profiler's imbalance report.
    steps: u64,
    /// Outbound mailbox pushes that spilled to the overflow sidecar
    /// (profiler-only: depends on drain timing, not deterministic).
    overflows: u64,
    /// Causal spans of sampled messages (profiled runs only).
    spans: Vec<HopSpan>,
    /// Terminal records of sampled deliveries (profiled runs only).
    deliveries: Vec<SampledDelivery>,
}

impl ShardedSimulation {
    /// Creates a sharded simulation of `DG(d,k)` with `shards` node
    /// partitions (clamped to `[1, d^k]`; the partition — and therefore
    /// every result — depends only on the clamped count, never on
    /// `config.threads`).
    ///
    /// Builds the [`NextHopTable`] fast path in parallel
    /// (`config.threads`) when it fits the default memory cap
    /// ([`DEFAULT_TABLE_MEMORY_CAP`]); otherwise forwarding falls back
    /// to the word-level engines per hop.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unsupported`] if the space is too large for
    /// 64-bit node ids, the router is not one of the optimal label
    /// routers (Algorithm 1/2/4), fault handling is not
    /// [`FaultHandling::Drop`], or the link timing violates the
    /// lookahead requirement `service + latency ≥ 1`.
    pub fn new(space: DeBruijn, config: SimConfig, shards: usize) -> Result<Self, NetError> {
        let Some(ranks) = RankSpace::new(space) else {
            return Err(NetError::Unsupported {
                what: "sharded simulation needs d^k to fit 64-bit node ids".to_string(),
            });
        };
        match config.router {
            RouterKind::Algorithm1 | RouterKind::Algorithm2 | RouterKind::Algorithm4 => {}
            RouterKind::Trivial | RouterKind::Multipath => {
                return Err(NetError::Unsupported {
                    what: format!(
                        "sharded simulation forwards along optimal next hops; router '{}' \
                         is not a deterministic optimal router",
                        config.router.name()
                    ),
                });
            }
        }
        if config.fault_handling != FaultHandling::Drop {
            return Err(NetError::Unsupported {
                what: "sharded simulation supports FaultHandling::Drop only".to_string(),
            });
        }
        if config.link.service + config.link.latency == 0 {
            return Err(NetError::Unsupported {
                what: "sharded simulation needs service + latency >= 1 (lookahead)".to_string(),
            });
        }
        let shards = shards
            .max(1)
            .min(usize::try_from(ranks.order()).unwrap_or(usize::MAX));
        let directed = !config.router.needs_bidirectional();
        let mut sim = Self {
            space,
            config,
            shards,
            ranks,
            directed,
            path: FastPath::Fallback,
            table_cap: DEFAULT_TABLE_MEMORY_CAP,
            faults: HashSet::new(),
        };
        sim.path = sim.resolve_auto();
        Ok(sim)
    }

    /// Resolves [`NextHopMode::Auto`] under the current memory cap:
    /// dense when it fits, else the compressed cursor (which exists for
    /// every space this engine accepts), fallback only if the `2d`
    /// ports do not fit the `u8` encoding.
    fn resolve_auto(&self) -> FastPath {
        if let Some(table) = NextHopTable::build(
            self.space,
            self.directed,
            self.config.threads,
            self.table_cap,
        ) {
            return FastPath::Dense(table);
        }
        match CompressedNextHop::new(self.space, self.directed) {
            Some(engine) => FastPath::Compressed(engine),
            None => FastPath::Fallback,
        }
    }

    /// Rebuilds the auto-selected fast path under a different dense-
    /// table memory cap: dense when the table fits `bytes`, otherwise
    /// the compressed cursor. (Before the compressed tier existed the
    /// only alternative was the word-level fallback; use
    /// [`ShardedSimulation::with_next_hop`] to force a specific tier.)
    pub fn with_table_memory_cap(mut self, bytes: usize) -> Self {
        self.table_cap = bytes;
        self.path = self.resolve_auto();
        self
    }

    /// Forces a specific forwarding tier (see [`NextHopMode`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unsupported`] if the requested tier cannot
    /// be built for this space — e.g. [`NextHopMode::Dense`] on a space
    /// whose `d^{2k}` port array is unbuildable.
    ///
    /// # Examples
    ///
    /// ```
    /// use debruijn_core::DeBruijn;
    /// use debruijn_net::shard::{NextHopMode, ShardedSimulation};
    /// use debruijn_net::{workload, SimConfig};
    ///
    /// let space = DeBruijn::new(2, 6)?;
    /// let traffic = workload::uniform_burst(space, 100, 7);
    /// let dense = ShardedSimulation::new(space, SimConfig::default(), 2)?;
    /// let compressed = ShardedSimulation::new(space, SimConfig::default(), 2)?
    ///     .with_next_hop(NextHopMode::Compressed)?;
    /// // The tiers are byte-equivalent: same ports, same report.
    /// assert_eq!(dense.run(&traffic), compressed.run(&traffic));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn with_next_hop(mut self, mode: NextHopMode) -> Result<Self, NetError> {
        self.path = match mode {
            NextHopMode::Auto => self.resolve_auto(),
            NextHopMode::Dense => {
                match NextHopTable::build(
                    self.space,
                    self.directed,
                    self.config.threads,
                    usize::MAX,
                ) {
                    Some(table) => FastPath::Dense(table),
                    None => {
                        return Err(NetError::Unsupported {
                            what: format!(
                                "dense next-hop table is unbuildable for DG({},{})",
                                self.space.d(),
                                self.space.k()
                            ),
                        })
                    }
                }
            }
            NextHopMode::Compressed => match CompressedNextHop::new(self.space, self.directed) {
                Some(engine) => FastPath::Compressed(engine),
                None => {
                    return Err(NetError::Unsupported {
                        what: format!(
                            "compressed next-hop needs 2d ports to fit a byte (d = {})",
                            self.space.d()
                        ),
                    })
                }
            },
            NextHopMode::Fallback => FastPath::Fallback,
        };
        Ok(self)
    }

    /// The resolved forwarding tier (never [`NextHopMode::Auto`]).
    pub fn next_hop_mode(&self) -> NextHopMode {
        match self.path {
            FastPath::Dense(_) => NextHopMode::Dense,
            FastPath::Compressed(_) => NextHopMode::Compressed,
            FastPath::Fallback => NextHopMode::Fallback,
        }
    }

    /// Declares the given nodes faulty (messages touching them drop).
    ///
    /// # Errors
    ///
    /// Returns an error if a fault word is not in the simulated space.
    pub fn with_faults(mut self, faults: Vec<Word>) -> Result<Self, NetError> {
        for f in &faults {
            if !self.space.contains(f) {
                return Err(NetError::ForeignWord {
                    word: f.to_string(),
                });
            }
        }
        self.faults = faults
            .iter()
            .map(|f| u64::try_from(f.rank()).expect("rank fits: order fits u64"))
            .collect();
        Ok(self)
    }

    /// The simulated parameter space.
    pub fn space(&self) -> DeBruijn {
        self.space
    }

    /// The effective (clamped) shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether the `O(1)` dense next-hop table is active (vs the
    /// compressed cursor or the word-level engine fallback; see
    /// [`ShardedSimulation::next_hop_mode`] for the full picture).
    pub fn uses_table(&self) -> bool {
        matches!(self.path, FastPath::Dense(_))
    }

    /// The shard owning `node`: contiguous rank ranges, shard `s`
    /// covering `[s·n/S, (s+1)·n/S)`.
    #[inline]
    fn shard_of(&self, node: u64) -> usize {
        let n = self.ranks.order() as u128;
        let s = self.shards as u128;
        ((u128::from(node) * s) / n) as usize
    }

    /// First rank owned by shard `sid`: `⌈n·sid/S⌉`, the exact inverse
    /// of [`ShardedSimulation::shard_of`] (shard `s` owns ranks in
    /// `[⌈n·s/S⌉, ⌈n·(s+1)/S⌉)`).
    fn shard_base(&self, sid: usize) -> u64 {
        (self.ranks.order() as u128 * sid as u128).div_ceil(self.shards as u128) as u64
    }

    /// Runs the simulation, returning aggregate statistics. For a fixed
    /// config, traffic, and (clamped) shard count the report is
    /// identical for every `threads` value; and because each shard's
    /// tick batch is processed in canonical message order, it is in
    /// fact identical for every shard count too.
    ///
    /// # Panics
    ///
    /// Panics if an injection references a word outside the simulated
    /// space.
    pub fn run(&self, traffic: &[Injection]) -> SimReport {
        self.run_recorded(traffic, &mut NullRecorder)
    }

    /// Like [`ShardedSimulation::run`], but replays every [`NetEvent`]
    /// into `recorder` after the run, sorted by `(tick, message id)` —
    /// a canonical order independent of shard and thread count. (Unlike
    /// [`Simulation::run_recorded`](crate::Simulation::run_recorded),
    /// events are buffered per shard and delivered at the end, not
    /// streamed live; recorded runs trade peak throughput and memory
    /// for observability.)
    ///
    /// # Panics
    ///
    /// Panics if an injection references a word outside the simulated
    /// space, or if the traffic exceeds `u32::MAX` messages.
    pub fn run_recorded(&self, traffic: &[Injection], recorder: &mut dyn Recorder) -> SimReport {
        let (report, _, _) = self.run_inner(traffic, recorder, None);
        report
    }

    /// Like [`ShardedSimulation::run_recorded`], but with the engine
    /// profiler armed: workers time each phase of the windowed loop
    /// (mailbox drain, batch merge, compute, barrier wait, report
    /// merge) and a deterministic seed-hashed [`SpanSampler`] tags
    /// ~1/`sample_every` messages with per-hop causal spans.
    ///
    /// The profiler observes without perturbing: the report, trace,
    /// and metrics streams are byte-identical to an unprofiled run
    /// (the sampler and timers never touch simulation state), while
    /// the returned [`EngineProfile`] carries wall-clock phase totals,
    /// per-shard imbalance, barrier spin/yield accounting, and the
    /// sampled critical paths.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ShardedSimulation::run_recorded`].
    pub fn run_profiled(
        &self,
        traffic: &[Injection],
        recorder: &mut dyn Recorder,
        profile: &ProfileConfig,
    ) -> (SimReport, EngineProfile) {
        let shared = ProfShared::new(self.worker_count(), self.shards, self.config.seed, profile);
        let started = std::time::Instant::now();
        let (report, metas, report_nanos) = self.run_inner(traffic, recorder, Some(&shared));
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (report, shared.finish(wall, report_nanos, metas))
    }

    /// The worker-thread count a run will use: the configured thread
    /// count, clamped to the shard count (a shard is owned by exactly
    /// one worker).
    fn worker_count(&self) -> usize {
        debruijn_parallel::effective_threads(self.config.threads)
            .min(self.shards)
            .max(1)
    }

    fn run_inner(
        &self,
        traffic: &[Injection],
        recorder: &mut dyn Recorder,
        prof: Option<&ProfShared>,
    ) -> (SimReport, Vec<ShardMeta>, u64) {
        let observed = Observe::of(recorder);
        let sampler = prof.and_then(|p| p.sampler());
        assert!(
            u32::try_from(traffic.len()).is_ok(),
            "sharded message ids are u32"
        );
        let s = self.shards;

        // Flat link arrays when the whole space's slots fit a fixed
        // budget (the fast-path tiers guarantee enumerable ranks);
        // hash/tree maps beyond that or on the word-router fallback.
        const DENSE_LINK_MEMORY_CAP: u64 = 1 << 30;
        let ports = if self.directed {
            usize::from(self.space.d())
        } else {
            2 * usize::from(self.space.d())
        };
        let dense_links = !matches!(self.path, FastPath::Fallback)
            && self
                .ranks
                .order()
                .checked_mul(ports as u64 * 16)
                .is_some_and(|bytes| bytes <= DENSE_LINK_MEMORY_CAP);

        let mut states: Vec<ShardState> = (0..s)
            .map(|sid| {
                let base = self.shard_base(sid);
                let owned = (self.shard_base(sid + 1) - base) as usize;
                let links = if dense_links {
                    LinkState::Dense {
                        base,
                        ports,
                        free: vec![0; owned * ports],
                        loads: vec![0; owned * ports],
                    }
                } else {
                    LinkState::Sparse {
                        free: HashMap::new(),
                        loads: BTreeMap::new(),
                    }
                };
                ShardState {
                    sid,
                    links,
                    rr: HashMap::new(),
                    report: SimReport::default(),
                    events: Vec::new(),
                    queue: TickQueue::default(),
                    scratch: RoutingScratch::new(),
                    cscratch: CompressedScratch::new(),
                    merge: Vec::new(),
                    route: RoutePath::empty(),
                    steps: 0,
                    overflows: 0,
                    spans: Vec::new(),
                    deliveries: Vec::new(),
                }
            })
            .collect();

        // Seed every shard's queue with its injections, in traffic
        // order (the canonical id order re-established per tick).
        for (index, inj) in traffic.iter().enumerate() {
            assert!(
                self.space.contains(&inj.source) && self.space.contains(&inj.destination),
                "injection endpoints must be vertices of the simulated space"
            );
            let src = u64::try_from(inj.source.rank()).expect("order fits u64");
            let dst = u64::try_from(inj.destination.rank()).expect("order fits u64");
            states[self.shard_of(src)].queue.push(
                inj.time,
                Flight {
                    id: index as u32,
                    at: src,
                    dst,
                    prev: src,
                    injected_at: inj.time,
                    hops: 0,
                    dist: 0,
                    shortest: 0,
                    sampled: false,
                },
            );
        }

        // Hand each worker its (static, round-robin) set of shards.
        let workers = self.worker_count();
        let worker_states: Vec<Mutex<Vec<ShardState>>> = {
            let mut per: Vec<Vec<ShardState>> = (0..workers).map(|_| Vec::new()).collect();
            for st in states.into_iter() {
                per[st.sid % workers].push(st);
            }
            per.into_iter().map(Mutex::new).collect()
        };
        let mailboxes: Vec<SpscRing> = (0..s * s).map(|_| SpscRing::new(s)).collect();
        let barrier = debruijn_parallel::TickBarrier::new(workers);

        // The conservative window: a message forwarded at tick `t`
        // arrives at `t + lookahead` at the earliest, so every event in
        // `[T, T + lookahead)` is processable without coordination —
        // one barrier crossing per window instead of per tick.
        // (`new` validated lookahead >= 1.)
        let lookahead = self.config.link.service + self.config.link.latency;

        debruijn_parallel::run_workers(workers, |w| {
            // The lap timer exists only on profiled runs; the hot path
            // otherwise branches on `None` and never reads a clock.
            let mut timer = prof.map(|shared| shared.begin(w));
            let sync = |w: usize, local: u64, timer: &mut Option<WorkerTimer>| match timer.as_mut()
            {
                Some(t) => {
                    let next = barrier.sync_min_timed(w, local, t.barrier_mut());
                    // The barrier accounts for its own wait: restart
                    // the lap clock so none of it bleeds into Mailbox.
                    t.reset();
                    next
                }
                None => barrier.sync_min(w, local),
            };
            let mut states = worker_states[w].lock().expect("worker owns its shards");
            let mut tick = {
                let local = states.iter().map(|st| st.queue.next_tick()).min();
                sync(w, local.unwrap_or(u64::MAX), &mut timer)
            };
            while tick != u64::MAX {
                if let Some(t) = timer.as_mut() {
                    t.window();
                }
                let window_end = tick.saturating_add(lookahead);
                let mut local_min = u64::MAX;
                for st in states.iter_mut() {
                    // Drain inboxes once per window, in fixed sender
                    // order. Entries always carry ticks at or beyond
                    // some window end, so whether a racing sender's
                    // push lands in this drain or the next cannot
                    // change any tick batch at processing time — and
                    // no arrival can land *inside* the current window,
                    // so one drain up front covers all its ticks.
                    for src in 0..s {
                        mailboxes[src * s + st.sid].drain_into(&mut st.queue);
                    }
                    if let Some(t) = timer.as_mut() {
                        t.lap(Phase::Mailbox, st.sid);
                    }
                    while st.queue.next_tick() < window_end {
                        let now = st.queue.next_tick();
                        let mut batch = st.queue.take(now).expect("next_tick is occupied");
                        // Canonical processing order: message id. This
                        // makes link contention independent of how the
                        // batch was assembled, hence of S and threads.
                        let merged = batch.len() > 1;
                        sort_by_id(&mut batch, &mut st.merge);
                        if let Some(t) = timer.as_mut().filter(|_| merged) {
                            t.lap(Phase::Merge, st.sid);
                        }
                        for flight in batch.drain(..) {
                            self.step(
                                st,
                                now,
                                flight,
                                &mailboxes,
                                &mut local_min,
                                observed,
                                sampler,
                            );
                        }
                        if let Some(t) = timer.as_mut() {
                            t.lap(Phase::Compute, st.sid);
                        }
                        st.queue.recycle(batch);
                    }
                    local_min = local_min.min(st.queue.next_tick());
                }
                tick = sync(w, local_min, &mut timer);
            }
        });

        // Everything below is the Report phase: the single-threaded
        // merge and (when observed) the canonical event replay.
        let report_started = prof.map(|_| std::time::Instant::now());

        // Deterministic merge: shards in index order; every accumulator
        // is a sum, a max, or a BTreeMap fold (the same shape the
        // metrics registry's GaugeMerge uses), so the merged report is
        // independent of thread interleaving by construction.
        let mut all: Vec<ShardState> = worker_states
            .into_iter()
            .flat_map(|m| m.into_inner().expect("workers done"))
            .collect();
        all.sort_by_key(|st| st.sid);

        let mut report = SimReport {
            total_links: self.count_links(),
            ..SimReport::default()
        };
        let mut events: Vec<NetEvent> = Vec::new();
        let mut metas: Vec<ShardMeta> = Vec::new();
        for mut st in all {
            if prof.is_some() {
                metas.push(ShardMeta {
                    sid: st.sid,
                    steps: st.steps,
                    overflows: st.overflows,
                    spans: std::mem::take(&mut st.spans),
                    deliveries: std::mem::take(&mut st.deliveries),
                });
            }
            let part = st.report;
            report.injected += part.injected;
            report.delivered += part.delivered;
            report.dropped += part.dropped;
            for (reason, count) in part.dropped_by_reason {
                *report.dropped_by_reason.entry(reason).or_insert(0) += count;
            }
            for (hops, count) in part.hop_histogram {
                *report.hop_histogram.entry(hops).or_insert(0) += count;
            }
            report.total_hops += part.total_hops;
            report.latency_total += part.latency_total;
            report.latency_max = report.latency_max.max(part.latency_max);
            report.makespan = report.makespan.max(part.makespan);
            report.max_queue_wait = report.max_queue_wait.max(part.max_queue_wait);
            report.total_queue_wait += part.total_queue_wait;
            st.links.merge_loads(&self.ranks, &mut report.link_loads);
            if observed.any() {
                events.extend(st.events);
            }
        }
        if observed.any() {
            // Canonical replay order. A message occupies one node per
            // tick, so `(time, message)` collides only for the
            // Inject/Wildcard/Forward triple of a single shard, whose
            // relative order the stable sort preserves.
            events.sort_by_key(|e| (e.time(), e.message()));
            for event in &events {
                recorder.record(event);
            }
        }
        let report_nanos = report_started.map_or(0, |t| {
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        });
        (report, metas, report_nanos)
    }

    /// Processes one flight at `now`: injection bookkeeping, fault and
    /// TTL drops, delivery, or one forward hop.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        st: &mut ShardState,
        now: u64,
        flight: Flight,
        mailboxes: &[SpscRing],
        local_min: &mut u64,
        observed: Observe,
        sampler: Option<SpanSampler>,
    ) {
        let mut flight = flight;
        st.steps += 1;
        if flight.hops == 0 {
            st.report.injected += 1;
            if let Some(sampler) = &sampler {
                // Tag once at injection: a pure function of (seed, id),
                // so the sampled set is shard/thread-invariant.
                flight.sampled = sampler.sampled(flight.id);
            }
            if self.faults.contains(&flight.at) {
                self.drop_flight(st, now, &flight, DropReason::FaultySource, observed);
                return;
            }
            if let FastPath::Compressed(engine) = &self.path {
                // Arm the per-flight cursor: one distance solve at
                // injection, then O(1)–O(d) per hop.
                flight.dist = engine.distance(flight.at, flight.dst, &mut st.cscratch);
            }
            if observed.inject || observed.deliver {
                // Deliver events report the stretch baseline, so the
                // distance solve is needed for either class.
                flight.shortest = match &self.path {
                    FastPath::Compressed(_) => flight.dist,
                    _ => self.shortest(flight.at, flight.dst),
                };
            }
            if observed.inject {
                st.events.push(NetEvent::Inject {
                    time: now,
                    message: flight.id as usize,
                    source: self.word(flight.at),
                    destination: self.word(flight.dst),
                    // Next-hop forwarding carries no route field, like
                    // the hop-by-hop mode of the classic simulator.
                    route_len: 0,
                    shortest: flight.shortest as usize,
                });
            }
        } else if self.faults.contains(&flight.at) {
            self.drop_flight(st, now, &flight, DropReason::FaultyNode, observed);
            return;
        }
        if flight.at == flight.dst {
            if flight.sampled {
                st.deliveries.push(SampledDelivery {
                    message: flight.id,
                    injected_at: flight.injected_at,
                    delivered_at: now,
                    hops: flight.hops,
                });
            }
            st.report.delivered += 1;
            st.report.total_hops += u64::from(flight.hops);
            *st.report
                .hop_histogram
                .entry(flight.hops as usize)
                .or_insert(0) += 1;
            let latency = now - flight.injected_at;
            st.report.latency_total += latency;
            st.report.latency_max = st.report.latency_max.max(latency);
            st.report.makespan = st.report.makespan.max(now);
            if observed.deliver {
                st.events.push(NetEvent::Deliver {
                    time: now,
                    message: flight.id as usize,
                    hops: flight.hops as usize,
                    latency,
                    shortest: flight.shortest as usize,
                });
            }
            return;
        }
        if self.config.ttl > 0 && flight.hops as usize >= self.config.ttl {
            self.drop_flight(st, now, &flight, DropReason::Ttl, observed);
            return;
        }

        let next = match &self.path {
            FastPath::Dense(table) => table.apply(flight.at, table.next_hop(flight.at, flight.dst)),
            FastPath::Compressed(engine) => {
                let port = engine.advance(flight.at, flight.dst, flight.dist, &mut st.cscratch);
                flight.dist -= 1;
                engine.apply(flight.at, port)
            }
            FastPath::Fallback => self.fallback_next(st, now, &flight, observed),
        };
        let service = self.config.link.service;
        let depart = st.links.book(&self.ranks, flight.at, next, now, service);
        let arrive = depart + service + self.config.link.latency;
        let wait = depart - now;
        st.report.total_queue_wait += wait;
        st.report.max_queue_wait = st.report.max_queue_wait.max(wait);
        if observed.forward {
            st.events.push(NetEvent::Forward {
                time: now,
                message: flight.id as usize,
                hop: flight.hops as usize,
                from: self.word(flight.at),
                to: self.word(next),
                departs: depart,
                arrives: arrive,
                queue_wait: wait,
                queue_depth: wait.div_ceil(service.max(1)) as usize,
            });
        }

        let forwarded = Flight {
            at: next,
            prev: flight.at,
            hops: flight.hops + 1,
            ..flight
        };
        *local_min = (*local_min).min(arrive);
        let dshard = self.shard_of(next);
        if flight.sampled {
            st.spans.push(HopSpan {
                message: flight.id,
                hop: flight.hops,
                start: now,
                departs: depart,
                arrives: arrive,
                from_shard: st.sid as u32,
                to_shard: dshard as u32,
            });
        }
        if dshard == st.sid {
            st.queue.push(arrive, forwarded);
        } else {
            let spilled = mailboxes[st.sid * self.shards + dshard].push((arrive, forwarded));
            st.overflows += u64::from(spilled);
        }
    }

    /// Fallback `O(k)` next hop: run the configured word-level router
    /// from `at` and take (and, for wildcards, resolve) its first step.
    fn fallback_next(
        &self,
        st: &mut ShardState,
        now: u64,
        flight: &Flight,
        observed: Observe,
    ) -> u64 {
        let x = self.word(flight.at);
        let y = self.word(flight.dst);
        if self.directed {
            routing::algorithm1_into(&x, &y, &mut st.scratch, &mut st.route);
        } else {
            routing::route_with_engine_into(&x, &y, Engine::Auto, &mut st.route);
        }
        let first = st.route.steps()[0];
        let digit = match first.digit {
            Digit::Exact(b) => b,
            Digit::Any => {
                let b = self.resolve_wildcard(st, flight, first.shift);
                if observed.wildcard {
                    st.events.push(NetEvent::WildcardResolved {
                        time: now,
                        message: flight.id as usize,
                        at: x,
                        shift: first.shift,
                        digit: b,
                        policy: self.config.policy,
                    });
                }
                b
            }
        };
        match first.shift {
            ShiftKind::Left => self.ranks.shift_left(flight.at, digit),
            ShiftKind::Right => self.ranks.shift_right(flight.at, digit),
        }
    }

    /// Wildcard resolution without shared RNG state: the random policy
    /// hashes `(seed, message, hop)`, so the chosen digit is a pure
    /// function of the flight — identical for every shard layout
    /// (unlike the classic simulator's single shared RNG stream, whose
    /// draws depend on global event interleaving).
    fn resolve_wildcard(&self, st: &mut ShardState, flight: &Flight, shift: ShiftKind) -> u8 {
        use crate::policy::WildcardPolicy;
        let at = flight.at;
        let d = self.space.d();
        match self.config.policy {
            WildcardPolicy::Zero => 0,
            WildcardPolicy::Random => {
                let mix = self
                    .config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(flight.id) << 16)
                    .wrapping_add(u64::from(flight.hops));
                SplitMix64::new(mix).digit(d)
            }
            WildcardPolicy::RoundRobin => {
                let counter = st.rr.entry(at).or_insert(0);
                let b = *counter % d;
                *counter = (*counter + 1) % d;
                b
            }
            WildcardPolicy::LeastLoaded => (0..d)
                .min_by_key(|&b| {
                    let next = match shift {
                        ShiftKind::Left => self.ranks.shift_left(at, b),
                        ShiftKind::Right => self.ranks.shift_right(at, b),
                    };
                    st.links.free_time(&self.ranks, at, next)
                })
                .expect("d >= 2"),
        }
    }

    fn drop_flight(
        &self,
        st: &mut ShardState,
        now: u64,
        flight: &Flight,
        reason: DropReason,
        observed: Observe,
    ) {
        st.report.dropped += 1;
        *st.report
            .dropped_by_reason
            .entry(reason.name())
            .or_insert(0) += 1;
        if observed.drop {
            st.events.push(NetEvent::Drop {
                time: now,
                message: flight.id as usize,
                reason,
                at: self.word(flight.at),
                upstream: (flight.hops > 0).then(|| self.word(flight.prev)),
            });
        }
    }

    /// Fault-free shortest distance under the configured model, via the
    /// dense table when present (an `O(k)` walk) or the distance
    /// engines. (The compressed tier answers this from its own cursor
    /// initializer before reaching here.)
    fn shortest(&self, src: u64, dst: u64) -> u32 {
        match &self.path {
            FastPath::Dense(table) => table.walk_distance(src, dst) as u32,
            FastPath::Compressed(_) | FastPath::Fallback => {
                let x = self.word(src);
                let y = self.word(dst);
                let dist = if self.directed {
                    distance::directed::distance(&x, &y)
                } else {
                    distance::undirected::distance(&x, &y)
                };
                dist as u32
            }
        }
    }

    fn word(&self, rank: u64) -> Word {
        self.space
            .word_from_rank(u128::from(rank))
            .expect("rank below order")
    }

    /// Total directed links, mirroring the classic simulator's count
    /// (0 when the space is too large to enumerate cheaply).
    fn count_links(&self) -> usize {
        const ENUMERATION_LIMIT: usize = 1 << 16;
        let Some(n) = self.space.order_usize() else {
            return 0;
        };
        if n > ENUMERATION_LIMIT {
            return 0;
        }
        self.space
            .vertices()
            .map(|w| {
                if self.directed {
                    self.space.directed_out_neighbors(&w).len()
                } else {
                    self.space.undirected_neighbors(&w).len()
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WildcardPolicy;
    use crate::record::{InMemoryRecorder, JsonlRecorder};
    use crate::sim::Simulation;
    use crate::workload;

    fn space(d: u8, k: usize) -> DeBruijn {
        DeBruijn::new(d, k).expect("valid parameters")
    }

    fn run_grid(space: DeBruijn, config: SimConfig, traffic: &[Injection], mode: NextHopMode) {
        let mut baseline: Option<(SimReport, Vec<u8>, InMemoryRecorder)> = None;
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                let mut cfg = config;
                cfg.threads = threads;
                let sim = ShardedSimulation::new(space, cfg, shards)
                    .expect("supported config")
                    .with_next_hop(mode)
                    .expect("tier available");
                let mut jsonl = JsonlRecorder::new(Vec::new());
                let mut metrics = InMemoryRecorder::new();
                let mut fan = crate::record::FanoutRecorder::new();
                fan.push(&mut jsonl);
                fan.push(&mut metrics);
                let report = sim.run_recorded(traffic, &mut fan);
                drop(fan);
                let trace = jsonl.finish().expect("in-memory trace never fails");
                match &baseline {
                    None => baseline = Some((report, trace, metrics)),
                    Some((r, t, m)) => {
                        assert_eq!(&report, r, "report differs at S={shards} T={threads}");
                        assert_eq!(&trace, t, "trace differs at S={shards} T={threads}");
                        assert_eq!(&metrics, m, "metrics differ at S={shards} T={threads}");
                    }
                }
            }
        }
    }

    /// Tentpole determinism contract: the final report, the JSONL trace
    /// (byte for byte), and the metrics snapshot are identical for
    /// every shard/thread combination.
    #[test]
    fn report_trace_and_metrics_identical_across_shards_and_threads() {
        let space = space(2, 7);
        let traffic = workload::uniform_random(space, 400, 11);
        run_grid(space, SimConfig::default(), &traffic, NextHopMode::Auto);
    }

    /// Same contract on the compressed tier — and because the
    /// compressed cursor reproduces the dense table's ports exactly,
    /// the compressed grid's baseline equals the dense run bit for bit.
    #[test]
    fn compressed_tier_is_deterministic_and_byte_equal_to_dense() {
        let space = space(2, 7);
        let traffic = workload::uniform_random(space, 400, 11);
        for router in [RouterKind::Algorithm2, RouterKind::Algorithm1] {
            let config = SimConfig {
                router,
                ..SimConfig::default()
            };
            run_grid(space, config, &traffic, NextHopMode::Compressed);

            let run = |mode: NextHopMode, shards: usize, threads: usize| {
                let cfg = SimConfig { threads, ..config };
                let sim = ShardedSimulation::new(space, cfg, shards)
                    .expect("supported config")
                    .with_next_hop(mode)
                    .expect("tier available");
                let mut jsonl = JsonlRecorder::new(Vec::new());
                let report = sim.run_recorded(&traffic, &mut jsonl);
                (report, jsonl.finish().expect("in-memory trace"))
            };
            let dense = run(NextHopMode::Dense, 1, 1);
            let compressed = run(NextHopMode::Compressed, 4, 4);
            assert_eq!(dense, compressed, "router {router:?}");
        }
    }

    /// Same contract on the engine-fallback path (forced explicitly)
    /// with a wildcard-heavy router and the stateful round-robin
    /// policy.
    #[test]
    fn fallback_path_is_deterministic_too() {
        let space = space(3, 4);
        let traffic = workload::uniform_burst(space, 300, 5);
        let config = SimConfig {
            policy: WildcardPolicy::RoundRobin,
            ..SimConfig::default()
        };
        run_grid(space, config, &traffic, NextHopMode::Fallback);
    }

    /// Auto degrades dense → compressed (not fallback) above the
    /// memory cap, and the zipf burst is deterministic across the whole
    /// shard/thread grid on that tier.
    #[test]
    fn auto_selects_compressed_above_the_cap_and_zipf_is_deterministic() {
        let space = space(2, 7);
        let sim = ShardedSimulation::new(space, SimConfig::default(), 2)
            .expect("supported config")
            .with_table_memory_cap(0);
        assert_eq!(sim.next_hop_mode(), NextHopMode::Compressed);

        let traffic = workload::zipf(space, 400, 1.1, 7);
        run_grid(space, SimConfig::default(), &traffic, NextHopMode::Auto);
        run_grid(
            space,
            SimConfig::default(),
            &traffic,
            NextHopMode::Compressed,
        );
    }

    /// The acceptance-criteria run: DG(2,20) — a million nodes — stays
    /// on the compressed fast path (no word-router fallback) and its
    /// report is identical across `{1,4}` shards × `{1,4}` threads.
    #[test]
    fn dg_2_20_runs_compressed_with_shard_invariant_reports() {
        let space = space(2, 20);
        let traffic = workload::uniform_random(space, 500, 42);
        let mut baseline: Option<SimReport> = None;
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                let config = SimConfig {
                    threads,
                    ..SimConfig::default()
                };
                let sim = ShardedSimulation::new(space, config, shards).expect("supported config");
                assert_eq!(
                    sim.next_hop_mode(),
                    NextHopMode::Compressed,
                    "a million nodes must not fall back to the word routers"
                );
                let report = sim.run(&traffic);
                assert_eq!(report.delivered, 500);
                assert!(report.mean_hops() <= 20.0, "within the diameter");
                match &baseline {
                    None => baseline = Some(report),
                    Some(b) => assert_eq!(&report, b, "S={shards} T={threads}"),
                }
            }
        }
    }

    /// The SPSC mailbox delivers every entry exactly once, in deposit
    /// order, across ring wrap-arounds and sidecar overflow.
    #[test]
    fn spsc_ring_preserves_entries_through_overflow() {
        let ring = SpscRing::new(64); // small capacity at high shard count
        let capacity = SpscRing::capacity(64);
        let flight = |id: u32| Flight {
            id,
            at: 0,
            dst: 1,
            prev: 0,
            injected_at: 0,
            hops: 0,
            dist: 0,
            shortest: 0,
            sampled: false,
        };
        let total = 3 * capacity + 7; // forces wrap + sidecar
        let mut queue = TickQueue::default();
        for round in 0..3 {
            for i in 0..total as u32 {
                ring.push((u64::from(i), flight(i)));
            }
            for _ in 0..capacity {
                // Interleave a partial drain cycle too.
            }
            ring.drain_into(&mut queue);
            let mut seen = 0;
            for t in 0..total as u64 {
                let batch = queue.take(t).expect("entry for every tick");
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].id as u64, t);
                seen += 1;
                queue.recycle(batch);
            }
            assert_eq!(seen, total, "round {round}");
        }
    }

    /// The natural-run merge equals a full sort on adversarial run
    /// layouts (sorted, reversed runs, interleaved, singleton).
    #[test]
    fn sort_by_id_matches_full_sort() {
        let flight = |id: u32| Flight {
            id,
            at: 0,
            dst: 0,
            prev: 0,
            injected_at: 0,
            hops: 0,
            dist: 0,
            shortest: 0,
            sampled: false,
        };
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![3],
            (0..50).collect(),
            (0..50).rev().collect(),
            vec![0, 2, 4, 6, 1, 3, 5, 7],
            vec![5, 6, 7, 0, 1, 2, 8, 9, 3, 4],
            vec![1, 1, 0, 2, 2, 0],
        ];
        for ids in cases {
            let mut batch: Vec<Flight> = ids.iter().map(|&i| flight(i)).collect();
            let mut want = ids.clone();
            want.sort_unstable();
            let mut scratch = Vec::new();
            sort_by_id(&mut batch, &mut scratch);
            let got: Vec<u32> = batch.iter().map(|f| f.id).collect();
            assert_eq!(got, want, "input {ids:?}");
        }
    }

    /// The sharded engine is a faithful optimal-routing simulator: every
    /// message is delivered in exactly the hops the classic source-routed
    /// simulator takes (both route optimally), for the same traffic.
    #[test]
    fn hop_histogram_matches_classic_simulator() {
        let space = space(2, 8);
        let traffic = workload::uniform_random(space, 500, 23);
        let classic = Simulation::new(space, SimConfig::default())
            .expect("classic sim")
            .run(&traffic);
        let sim = ShardedSimulation::new(space, SimConfig::default(), 4).expect("supported config");
        assert!(sim.uses_table(), "d=2 k=8 fits the default memory cap");
        let sharded = sim.run(&traffic);
        assert_eq!(sharded.hop_histogram, classic.hop_histogram);
        assert_eq!(sharded.delivered, classic.delivered);
        assert_eq!(sharded.injected, classic.injected);
        assert_eq!(sharded.total_hops, classic.total_hops);
    }

    /// Directed mode (Algorithm 1): hop counts equal directed distances.
    #[test]
    fn directed_mode_routes_at_directed_distance() {
        let space = space(2, 5);
        let config = SimConfig {
            router: RouterKind::Algorithm1,
            ..SimConfig::default()
        };
        let traffic = workload::uniform_random(space, 200, 3);
        let report = ShardedSimulation::new(space, config, 3)
            .expect("supported config")
            .run(&traffic);
        let mut expected: BTreeMap<usize, usize> = BTreeMap::new();
        for inj in &traffic {
            *expected
                .entry(distance::directed::distance(&inj.source, &inj.destination))
                .or_insert(0) += 1;
        }
        assert_eq!(report.hop_histogram, expected);
        // And the compressed and fallback tiers agree with the table.
        for mode in [NextHopMode::Compressed, NextHopMode::Fallback] {
            let tier = ShardedSimulation::new(space, config, 3)
                .expect("supported config")
                .with_next_hop(mode)
                .expect("tier available")
                .run(&traffic);
            assert_eq!(tier.hop_histogram, expected, "{mode:?}");
        }
    }

    /// Faulty nodes drop traffic at injection and in transit; TTL expiry
    /// drops the rest — matching the classic simulator's accounting.
    #[test]
    fn faults_and_ttl_are_honored() {
        let space = space(2, 6);
        let faulty = space.word_from_rank(0).expect("rank 0 exists");
        let traffic = workload::uniform_random(space, 300, 9);
        let sim = ShardedSimulation::new(space, SimConfig::default(), 4)
            .expect("supported config")
            .with_faults(vec![faulty])
            .expect("fault word in space");
        let report = sim.run(&traffic);
        assert_eq!(report.injected, 300);
        assert_eq!(report.delivered + report.dropped, 300);
        assert!(report.dropped > 0, "rank 0 participates in some routes");

        let strangled = ShardedSimulation::new(
            space,
            SimConfig {
                ttl: 1,
                ..SimConfig::default()
            },
            4,
        )
        .expect("supported config")
        .run(&traffic);
        assert_eq!(
            strangled.dropped as u64,
            strangled.dropped_by_reason.get("ttl").copied().unwrap_or(0),
            "with ttl=1 every drop is a TTL drop"
        );
        assert!(strangled.dropped > 0, "most pairs are farther than 1 hop");
    }

    /// Configurations the sharded engine cannot honor are rejected up
    /// front instead of silently diverging from the classic simulator.
    #[test]
    fn unsupported_configs_are_rejected() {
        let space = space(2, 4);
        for config in [
            SimConfig {
                router: RouterKind::Trivial,
                ..SimConfig::default()
            },
            SimConfig {
                router: RouterKind::Multipath,
                ..SimConfig::default()
            },
            SimConfig {
                fault_handling: FaultHandling::SourceReroute,
                ..SimConfig::default()
            },
        ] {
            assert!(matches!(
                ShardedSimulation::new(space, config, 2),
                Err(NetError::Unsupported { .. })
            ));
        }
    }

    /// The profiler observes without perturbing: report, JSONL trace,
    /// and metrics are byte-identical with profiling on vs. off across
    /// the `{1,4} × {1,4}` shard/thread grid, and the profile itself is
    /// internally consistent (steps cover every injection, windows
    /// crossed, phases timed).
    #[test]
    fn profiled_runs_are_byte_identical_to_unprofiled() {
        let space = space(2, 7);
        let traffic = workload::uniform_burst(space, 400, 13);
        let observe = |sim: &ShardedSimulation, profile: Option<&ProfileConfig>| {
            let mut jsonl = JsonlRecorder::new(Vec::new());
            let mut metrics = InMemoryRecorder::new();
            let mut fan = crate::record::FanoutRecorder::new();
            fan.push(&mut jsonl);
            fan.push(&mut metrics);
            let (report, prof) = match profile {
                Some(cfg) => {
                    let (report, prof) = sim.run_profiled(&traffic, &mut fan, cfg);
                    (report, Some(prof))
                }
                None => (sim.run_recorded(&traffic, &mut fan), None),
            };
            drop(fan);
            let trace = jsonl.finish().expect("in-memory trace");
            (report, trace, metrics, prof)
        };
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                let config = SimConfig {
                    threads,
                    ..SimConfig::default()
                };
                let sim = ShardedSimulation::new(space, config, shards).expect("supported config");
                let (report, trace, metrics, _) = observe(&sim, None);
                let cfg = ProfileConfig {
                    sample_every: 8,
                    slices: true,
                };
                let (preport, ptrace, pmetrics, prof) = observe(&sim, Some(&cfg));
                assert_eq!(
                    report, preport,
                    "report perturbed at S={shards} T={threads}"
                );
                assert_eq!(trace, ptrace, "trace perturbed at S={shards} T={threads}");
                assert_eq!(
                    metrics, pmetrics,
                    "metrics perturbed at S={shards} T={threads}"
                );
                let prof = prof.expect("profiled run returns a profile");
                assert_eq!(prof.shards, sim.shards());
                assert!(prof.windows > 0, "at least one window crossed");
                assert!(prof.wall_nanos > 0);
                assert!(
                    prof.total_steps() >= 400,
                    "every injection is at least one step"
                );
                assert!(
                    prof.phase_totals()
                        .iter()
                        .any(|&(p, ns)| p == Phase::Compute && ns > 0),
                    "compute time was observed"
                );
                assert!(!prof.slices.is_empty(), "slices were recorded");
                assert!(prof.step_imbalance() >= 1.0);
            }
        }
    }

    /// The span sampler's causal record is deterministic: the same
    /// messages are tagged, and their per-hop tick spans are identical,
    /// for every shard/thread combination (shard endpoints aside, which
    /// are a function of the shard count only).
    #[test]
    fn sampled_spans_are_shard_and_thread_invariant() {
        let space = space(2, 7);
        let traffic = workload::uniform_random(space, 400, 17);
        let cfg = ProfileConfig {
            sample_every: 4,
            slices: false,
        };
        type SpanTicks = (u32, u32, u64, u64, u64);
        let mut baseline: Option<(Vec<SpanTicks>, Vec<SampledDelivery>)> = None;
        let mut per_shard_spans: Option<Vec<HopSpan>> = None;
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                let config = SimConfig {
                    threads,
                    ..SimConfig::default()
                };
                let sim = ShardedSimulation::new(space, config, shards).expect("supported config");
                let (_, prof) = sim.run_profiled(&traffic, &mut crate::record::NullRecorder, &cfg);
                assert!(!prof.spans.is_empty(), "1/4 sampling tags some messages");
                let ticks: Vec<(u32, u32, u64, u64, u64)> = prof
                    .spans
                    .iter()
                    .map(|s| (s.message, s.hop, s.start, s.departs, s.arrives))
                    .collect();
                match &baseline {
                    None => baseline = Some((ticks, prof.deliveries.clone())),
                    Some((t, d)) => {
                        assert_eq!(&ticks, t, "span ticks differ at S={shards} T={threads}");
                        assert_eq!(
                            &prof.deliveries, d,
                            "deliveries differ at S={shards} T={threads}"
                        );
                    }
                }
                // Full spans (shard endpoints included) depend only on
                // the shard count, never the thread count.
                if shards == 4 {
                    match &per_shard_spans {
                        None => per_shard_spans = Some(prof.spans.clone()),
                        Some(s) => assert_eq!(&prof.spans, s, "T={threads}"),
                    }
                }
                // Every sampled delivery's path is fully stitched: one
                // span per hop, and the critical path reproduces the
                // delivery latency.
                for path in prof.critical_paths(usize::MAX) {
                    if let Ok(i) = prof
                        .deliveries
                        .binary_search_by_key(&path.message, |d| d.message)
                    {
                        let d = prof.deliveries[i];
                        assert_eq!(path.hops, d.hops, "msg {}", path.message);
                        assert_eq!(path.ticks, d.delivered_at - d.injected_at);
                        assert!(path.delivered);
                    }
                }
            }
        }
    }

    /// `sample_every: 0` disables causal tracing but keeps the phase
    /// timers; `sample_every: 1` tags everything.
    #[test]
    fn sampling_rate_bounds() {
        let space = space(2, 6);
        let traffic = workload::uniform_random(space, 100, 3);
        let sim = ShardedSimulation::new(space, SimConfig::default(), 2).expect("supported config");
        let (report, off) = sim.run_profiled(
            &traffic,
            &mut crate::record::NullRecorder,
            &ProfileConfig {
                sample_every: 0,
                slices: false,
            },
        );
        assert!(off.spans.is_empty() && off.deliveries.is_empty());
        assert_eq!(off.sample_every, 0);
        assert!(off.windows > 0);
        let (_, all) = sim.run_profiled(
            &traffic,
            &mut crate::record::NullRecorder,
            &ProfileConfig {
                sample_every: 1,
                slices: false,
            },
        );
        assert_eq!(all.deliveries.len() as u64, report.delivered as u64);
        assert_eq!(
            all.spans.len() as u64,
            report.total_hops,
            "one span per delivered hop (nothing drops here)"
        );
    }

    /// Shard counts beyond the node count clamp instead of panicking,
    /// and a single shard still honors `threads > 1`.
    #[test]
    fn extreme_shard_counts_clamp() {
        let space = space(2, 3);
        let traffic = workload::uniform_random(space, 50, 2);
        let huge =
            ShardedSimulation::new(space, SimConfig::default(), 1000).expect("supported config");
        assert_eq!(huge.shards(), 8);
        let one = ShardedSimulation::new(
            space,
            SimConfig {
                threads: 8,
                ..SimConfig::default()
            },
            1,
        )
        .expect("supported config");
        assert_eq!(huge.run(&traffic), one.run(&traffic));
    }
}
