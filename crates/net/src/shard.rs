//! Sharded deterministic simulation: the simulator as a throughput
//! engine.
//!
//! [`Simulation`](crate::Simulation) is an exact, fully-featured
//! discrete-event loop — and single-threaded, at microseconds per
//! message mostly spent re-deriving routes from the paper's word-level
//! algorithms. [`ShardedSimulation`] is the scale-out counterpart:
//!
//! * **`O(1)` forwarding**: a precomputed
//!   [`NextHopTable`] answers
//!   "which port moves this message closer?" with one indexed load, and
//!   [`RankSpace`] arithmetic replaces
//!   per-hop [`Word`] allocation. Above the table's memory cap the
//!   engine transparently falls back to the word-level routers
//!   (Algorithm 1 / Theorem 2 engines) per hop.
//! * **Conservative time-stepped parallelism**: nodes are partitioned
//!   into `S` contiguous rank ranges (shards); each shard owns its
//!   event queue, message arena, link state, and report accumulators.
//!   Because every link has `service + latency ≥ 1` tick, a message
//!   forwarded at tick `T` cannot arrive before `T + 1` — a guaranteed
//!   lookahead of one tick — so all shards process the same tick with
//!   no coordination, then exchange cross-shard messages through
//!   per-`(src, dst)` mailboxes and agree on the next tick at a
//!   [`TickBarrier`](debruijn_parallel::TickBarrier).
//! * **Bit-for-bit determinism**: each tick's batch is sorted by
//!   message id before processing, mailboxes are drained in fixed shard
//!   order, per-shard partial reports merge over order-independent
//!   (sum/max/`BTreeMap`) accumulators, and recorded events are
//!   replayed to the [`Recorder`] in a canonical `(tick, message)`
//!   order — so the final report, trace, and metrics are identical for
//!   **any** `--shards`/`--threads` combination (the same contract the
//!   batch routing drivers established, and tested the same way).
//!
//! See `docs/PERFORMANCE.md` (shard partitioning, the lookahead-1
//! argument) and ADR 0005 (why conservative time-stepping rather than
//! optimistic/Time-Warp).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;

use debruijn_core::distance;
use debruijn_core::distance::undirected::Engine;
use debruijn_core::rng::SplitMix64;
use debruijn_core::routing::table::DEFAULT_TABLE_MEMORY_CAP;
use debruijn_core::routing::{self, NextHopTable, RoutingScratch};
use debruijn_core::space::RankSpace;
use debruijn_core::{DeBruijn, Digit, RoutePath, ShiftKind, Word};

use crate::record::{DropReason, NetEvent, NullRecorder, Recorder};
use crate::router::RouterKind;
use crate::sim::{FaultHandling, Injection, NetError, SimConfig};
use crate::stats::SimReport;

/// A sharded, deterministic, time-stepped simulation of `DG(d,k)`.
///
/// Honors the [`SimConfig`] fields that make sense for next-hop
/// forwarding: `router` selects the network model (Algorithm 1 ⇒
/// directed, Algorithms 2/4 ⇒ undirected), `policy` resolves wildcard
/// first steps on the engine-fallback path, `link`, `seed`, `threads`
/// and `ttl` behave as in [`Simulation`](crate::Simulation). Node
/// faults drop messages ([`FaultHandling::Drop`]); source rerouting,
/// link faults, and the non-optimal routers (`Trivial`, `Multipath`)
/// are not supported — the constructor rejects them.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
/// use debruijn_net::shard::ShardedSimulation;
/// use debruijn_net::{workload, SimConfig, Simulation};
///
/// let space = DeBruijn::new(2, 6)?;
/// let traffic = workload::uniform_random(space, 500, 7);
/// let sharded = ShardedSimulation::new(space, SimConfig::default(), 4)?;
/// let report = sharded.run(&traffic);
/// // Optimal next-hop forwarding delivers everything at distance hops,
/// // so the hop histogram matches the word-level source router's.
/// let classic = Simulation::new(space, SimConfig::default())?.run(&traffic);
/// assert_eq!(report.hop_histogram, classic.hop_histogram);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardedSimulation {
    space: DeBruijn,
    config: SimConfig,
    shards: usize,
    ranks: RankSpace,
    directed: bool,
    table: Option<NextHopTable>,
    table_cap: usize,
    /// Faulty nodes by rank.
    faults: HashSet<u64>,
}

/// One in-flight message: plain-old-data, moved by value between shard
/// arenas and mailboxes — no per-message heap allocation.
#[derive(Debug, Clone, Copy)]
struct Flight {
    /// Index in the injected traffic; also the deterministic sort key.
    id: u32,
    at: u64,
    dst: u64,
    injected_at: u64,
    hops: u32,
    /// Fault-free shortest distance, recorded at injection for
    /// observability (0 when unobserved).
    shortest: u32,
}

/// Per-tick event storage with a free-list of batch vectors, so a
/// shard's steady-state tick processing recycles arena buffers instead
/// of allocating.
#[derive(Debug, Default)]
struct TickQueue {
    by_tick: BTreeMap<u64, Vec<Flight>>,
    pool: Vec<Vec<Flight>>,
}

impl TickQueue {
    fn push(&mut self, tick: u64, flight: Flight) {
        use std::collections::btree_map::Entry;
        match self.by_tick.entry(tick) {
            Entry::Occupied(e) => e.into_mut().push(flight),
            Entry::Vacant(v) => {
                let mut batch = self.pool.pop().unwrap_or_default();
                batch.push(flight);
                v.insert(batch);
            }
        }
    }

    fn take(&mut self, tick: u64) -> Option<Vec<Flight>> {
        self.by_tick.remove(&tick)
    }

    fn recycle(&mut self, mut batch: Vec<Flight>) {
        batch.clear();
        if self.pool.len() < 64 {
            self.pool.push(batch);
        }
    }

    fn next_tick(&self) -> u64 {
        self.by_tick.keys().next().copied().unwrap_or(u64::MAX)
    }
}

/// Per-link FIFO state and load counters, keyed by `(from, to)` node
/// pairs exactly like [`SimReport::link_loads`].
#[derive(Debug)]
enum LinkState {
    /// Table mode: the shard's nodes are few, so links live in flat
    /// arrays indexed by `(node − base) · ports + canonical port`.
    Dense {
        base: u64,
        ports: usize,
        free: Vec<u64>,
        loads: Vec<u64>,
    },
    /// Fallback mode (space above the table cap): hash/tree maps.
    Sparse {
        free: HashMap<(u64, u64), u64>,
        loads: BTreeMap<(u128, u128), u64>,
    },
}

impl LinkState {
    /// The canonical slot for the link `at → next`: parallel shift
    /// operations can alias (e.g. `X⁻(a) = X⁺(b)`), and the report
    /// keys links by endpoints, so all aliases share the slot of the
    /// smallest port reaching `next`.
    fn dense_slot(ranks: &RankSpace, base: u64, ports: usize, at: u64, next: u64) -> usize {
        let d = ranks.space().d();
        for p in 0..ports as u8 {
            let target = if p < d {
                ranks.shift_left(at, p)
            } else {
                ranks.shift_right(at, p - d)
            };
            if target == next {
                return (at - base) as usize * ports + p as usize;
            }
        }
        unreachable!("next must be a neighbor of at")
    }

    fn free_time(&self, ranks: &RankSpace, at: u64, next: u64) -> u64 {
        match self {
            LinkState::Dense {
                base, ports, free, ..
            } => free[Self::dense_slot(ranks, *base, *ports, at, next)],
            LinkState::Sparse { free, .. } => free.get(&(at, next)).copied().unwrap_or(0),
        }
    }

    /// Books one message on the link: bumps the FIFO free time and the
    /// load counter, returning the departure tick.
    fn book(&mut self, ranks: &RankSpace, at: u64, next: u64, now: u64, service: u64) -> u64 {
        match self {
            LinkState::Dense {
                base,
                ports,
                free,
                loads,
            } => {
                let slot = Self::dense_slot(ranks, *base, *ports, at, next);
                let depart = now.max(free[slot]);
                free[slot] = depart + service;
                loads[slot] += 1;
                depart
            }
            LinkState::Sparse { free, loads } => {
                let f = free.entry((at, next)).or_insert(0);
                let depart = now.max(*f);
                *f = depart + service;
                *loads.entry((u128::from(at), u128::from(next))).or_insert(0) += 1;
                depart
            }
        }
    }

    /// Folds this shard's loads into the merged report map.
    fn merge_loads(self, ranks: &RankSpace, into: &mut BTreeMap<(u128, u128), u64>) {
        match self {
            LinkState::Dense {
                base, ports, loads, ..
            } => {
                let d = ranks.space().d();
                for (slot, &load) in loads.iter().enumerate() {
                    if load == 0 {
                        continue;
                    }
                    let node = base + (slot / ports) as u64;
                    let p = (slot % ports) as u8;
                    let target = if p < d {
                        ranks.shift_left(node, p)
                    } else {
                        ranks.shift_right(node, p - d)
                    };
                    *into
                        .entry((u128::from(node), u128::from(target)))
                        .or_insert(0) += load;
                }
            }
            LinkState::Sparse { loads, .. } => {
                for (key, load) in loads {
                    *into.entry(key).or_insert(0) += load;
                }
            }
        }
    }
}

/// Everything one shard owns: nodes `[lo, hi)`, their event queue and
/// arena, link state, wildcard counters, partial report, and (when
/// observed) the events it witnessed.
#[derive(Debug)]
struct ShardState {
    sid: usize,
    links: LinkState,
    /// Per-node round-robin wildcard counters (fallback path only).
    rr: HashMap<u64, u8>,
    report: SimReport,
    events: Vec<NetEvent>,
    queue: TickQueue,
    scratch: RoutingScratch,
    route: RoutePath,
}

impl ShardedSimulation {
    /// Creates a sharded simulation of `DG(d,k)` with `shards` node
    /// partitions (clamped to `[1, d^k]`; the partition — and therefore
    /// every result — depends only on the clamped count, never on
    /// `config.threads`).
    ///
    /// Builds the [`NextHopTable`] fast path in parallel
    /// (`config.threads`) when it fits the default memory cap
    /// ([`DEFAULT_TABLE_MEMORY_CAP`]); otherwise forwarding falls back
    /// to the word-level engines per hop.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unsupported`] if the space is too large for
    /// 64-bit node ids, the router is not one of the optimal label
    /// routers (Algorithm 1/2/4), fault handling is not
    /// [`FaultHandling::Drop`], or the link timing violates the
    /// lookahead requirement `service + latency ≥ 1`.
    pub fn new(space: DeBruijn, config: SimConfig, shards: usize) -> Result<Self, NetError> {
        let Some(ranks) = RankSpace::new(space) else {
            return Err(NetError::Unsupported {
                what: "sharded simulation needs d^k to fit 64-bit node ids".to_string(),
            });
        };
        match config.router {
            RouterKind::Algorithm1 | RouterKind::Algorithm2 | RouterKind::Algorithm4 => {}
            RouterKind::Trivial | RouterKind::Multipath => {
                return Err(NetError::Unsupported {
                    what: format!(
                        "sharded simulation forwards along optimal next hops; router '{}' \
                         is not a deterministic optimal router",
                        config.router.name()
                    ),
                });
            }
        }
        if config.fault_handling != FaultHandling::Drop {
            return Err(NetError::Unsupported {
                what: "sharded simulation supports FaultHandling::Drop only".to_string(),
            });
        }
        if config.link.service + config.link.latency == 0 {
            return Err(NetError::Unsupported {
                what: "sharded simulation needs service + latency >= 1 (lookahead)".to_string(),
            });
        }
        let shards = shards
            .max(1)
            .min(usize::try_from(ranks.order()).unwrap_or(usize::MAX));
        let directed = !config.router.needs_bidirectional();
        let mut sim = Self {
            space,
            config,
            shards,
            ranks,
            directed,
            table: None,
            table_cap: DEFAULT_TABLE_MEMORY_CAP,
            faults: HashSet::new(),
        };
        sim.table = NextHopTable::build(space, directed, config.threads, sim.table_cap);
        Ok(sim)
    }

    /// Rebuilds the fast path under a different memory cap (`0` forces
    /// the engine-fallback path; tests use this to cover both).
    pub fn with_table_memory_cap(mut self, bytes: usize) -> Self {
        self.table_cap = bytes;
        self.table = NextHopTable::build(self.space, self.directed, self.config.threads, bytes);
        self
    }

    /// Declares the given nodes faulty (messages touching them drop).
    ///
    /// # Errors
    ///
    /// Returns an error if a fault word is not in the simulated space.
    pub fn with_faults(mut self, faults: Vec<Word>) -> Result<Self, NetError> {
        for f in &faults {
            if !self.space.contains(f) {
                return Err(NetError::ForeignWord {
                    word: f.to_string(),
                });
            }
        }
        self.faults = faults
            .iter()
            .map(|f| u64::try_from(f.rank()).expect("rank fits: order fits u64"))
            .collect();
        Ok(self)
    }

    /// The simulated parameter space.
    pub fn space(&self) -> DeBruijn {
        self.space
    }

    /// The effective (clamped) shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether the `O(1)` next-hop table is active (vs the word-level
    /// engine fallback).
    pub fn uses_table(&self) -> bool {
        self.table.is_some()
    }

    /// The shard owning `node`: contiguous rank ranges, shard `s`
    /// covering `[s·n/S, (s+1)·n/S)`.
    #[inline]
    fn shard_of(&self, node: u64) -> usize {
        let n = self.ranks.order() as u128;
        let s = self.shards as u128;
        ((u128::from(node) * s) / n) as usize
    }

    /// First rank owned by shard `sid`: `⌈n·sid/S⌉`, the exact inverse
    /// of [`ShardedSimulation::shard_of`] (shard `s` owns ranks in
    /// `[⌈n·s/S⌉, ⌈n·(s+1)/S⌉)`).
    fn shard_base(&self, sid: usize) -> u64 {
        (self.ranks.order() as u128 * sid as u128).div_ceil(self.shards as u128) as u64
    }

    /// Runs the simulation, returning aggregate statistics. For a fixed
    /// config, traffic, and (clamped) shard count the report is
    /// identical for every `threads` value; and because each shard's
    /// tick batch is processed in canonical message order, it is in
    /// fact identical for every shard count too.
    ///
    /// # Panics
    ///
    /// Panics if an injection references a word outside the simulated
    /// space.
    pub fn run(&self, traffic: &[Injection]) -> SimReport {
        self.run_recorded(traffic, &mut NullRecorder)
    }

    /// Like [`ShardedSimulation::run`], but replays every [`NetEvent`]
    /// into `recorder` after the run, sorted by `(tick, message id)` —
    /// a canonical order independent of shard and thread count. (Unlike
    /// [`Simulation::run_recorded`](crate::Simulation::run_recorded),
    /// events are buffered per shard and delivered at the end, not
    /// streamed live; recorded runs trade peak throughput and memory
    /// for observability.)
    ///
    /// # Panics
    ///
    /// Panics if an injection references a word outside the simulated
    /// space, or if the traffic exceeds `u32::MAX` messages.
    pub fn run_recorded(&self, traffic: &[Injection], recorder: &mut dyn Recorder) -> SimReport {
        let observed = recorder.enabled();
        assert!(
            u32::try_from(traffic.len()).is_ok(),
            "sharded message ids are u32"
        );
        let s = self.shards;

        let mut states: Vec<ShardState> = (0..s)
            .map(|sid| {
                let base = self.shard_base(sid);
                let owned = (self.shard_base(sid + 1) - base) as usize;
                let links = if self.table.is_some() {
                    let ports = if self.directed {
                        usize::from(self.space.d())
                    } else {
                        2 * usize::from(self.space.d())
                    };
                    LinkState::Dense {
                        base,
                        ports,
                        free: vec![0; owned * ports],
                        loads: vec![0; owned * ports],
                    }
                } else {
                    LinkState::Sparse {
                        free: HashMap::new(),
                        loads: BTreeMap::new(),
                    }
                };
                ShardState {
                    sid,
                    links,
                    rr: HashMap::new(),
                    report: SimReport::default(),
                    events: Vec::new(),
                    queue: TickQueue::default(),
                    scratch: RoutingScratch::new(),
                    route: RoutePath::empty(),
                }
            })
            .collect();

        // Seed every shard's queue with its injections, in traffic
        // order (the canonical id order re-established per tick).
        for (index, inj) in traffic.iter().enumerate() {
            assert!(
                self.space.contains(&inj.source) && self.space.contains(&inj.destination),
                "injection endpoints must be vertices of the simulated space"
            );
            let src = u64::try_from(inj.source.rank()).expect("order fits u64");
            let dst = u64::try_from(inj.destination.rank()).expect("order fits u64");
            states[self.shard_of(src)].queue.push(
                inj.time,
                Flight {
                    id: index as u32,
                    at: src,
                    dst,
                    injected_at: inj.time,
                    hops: 0,
                    shortest: 0,
                },
            );
        }

        // Hand each worker its (static, round-robin) set of shards.
        let workers = debruijn_parallel::effective_threads(self.config.threads)
            .min(s)
            .max(1);
        let worker_states: Vec<Mutex<Vec<ShardState>>> = {
            let mut per: Vec<Vec<ShardState>> = (0..workers).map(|_| Vec::new()).collect();
            for st in states.into_iter() {
                per[st.sid % workers].push(st);
            }
            per.into_iter().map(Mutex::new).collect()
        };
        let mailboxes: Vec<Mutex<Vec<(u64, Flight)>>> =
            (0..s * s).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = debruijn_parallel::TickBarrier::new(workers);

        debruijn_parallel::run_workers(workers, |w| {
            let mut states = worker_states[w].lock().expect("worker owns its shards");
            let mut tick = {
                let local = states.iter().map(|st| st.queue.next_tick()).min();
                barrier.sync_min(w, local.unwrap_or(u64::MAX))
            };
            while tick != u64::MAX {
                let mut local_min = u64::MAX;
                for st in states.iter_mut() {
                    // Drain inboxes in fixed sender order. Entries
                    // always carry future ticks, so whether a racing
                    // sender's push lands in this drain or the next
                    // cannot change any tick batch at processing time.
                    for src in 0..s {
                        let mut inbox = mailboxes[src * s + st.sid]
                            .lock()
                            .expect("mailbox lock poisoned");
                        for (t, f) in inbox.drain(..) {
                            st.queue.push(t, f);
                        }
                    }
                    if let Some(mut batch) = st.queue.take(tick) {
                        // Canonical processing order: message id. This
                        // makes link contention independent of how the
                        // batch was assembled, hence of S and threads.
                        batch.sort_unstable_by_key(|f| f.id);
                        for flight in batch.drain(..) {
                            self.step(st, tick, flight, &mailboxes, &mut local_min, observed);
                        }
                        st.queue.recycle(batch);
                    }
                    local_min = local_min.min(st.queue.next_tick());
                }
                tick = barrier.sync_min(w, local_min);
            }
        });

        // Deterministic merge: shards in index order; every accumulator
        // is a sum, a max, or a BTreeMap fold (the same shape the
        // metrics registry's GaugeMerge uses), so the merged report is
        // independent of thread interleaving by construction.
        let mut all: Vec<ShardState> = worker_states
            .into_iter()
            .flat_map(|m| m.into_inner().expect("workers done"))
            .collect();
        all.sort_by_key(|st| st.sid);

        let mut report = SimReport {
            total_links: self.count_links(),
            ..SimReport::default()
        };
        let mut events: Vec<NetEvent> = Vec::new();
        for st in all {
            let part = st.report;
            report.injected += part.injected;
            report.delivered += part.delivered;
            report.dropped += part.dropped;
            for (reason, count) in part.dropped_by_reason {
                *report.dropped_by_reason.entry(reason).or_insert(0) += count;
            }
            for (hops, count) in part.hop_histogram {
                *report.hop_histogram.entry(hops).or_insert(0) += count;
            }
            report.total_hops += part.total_hops;
            report.latency_total += part.latency_total;
            report.latency_max = report.latency_max.max(part.latency_max);
            report.makespan = report.makespan.max(part.makespan);
            report.max_queue_wait = report.max_queue_wait.max(part.max_queue_wait);
            report.total_queue_wait += part.total_queue_wait;
            st.links.merge_loads(&self.ranks, &mut report.link_loads);
            if observed {
                events.extend(st.events);
            }
        }
        if observed {
            // Canonical replay order. A message occupies one node per
            // tick, so `(time, message)` collides only for the
            // Inject/Wildcard/Forward triple of a single shard, whose
            // relative order the stable sort preserves.
            events.sort_by_key(|e| (e.time(), e.message()));
            for event in &events {
                recorder.record(event);
            }
        }
        report
    }

    /// Processes one flight at `now`: injection bookkeeping, fault and
    /// TTL drops, delivery, or one forward hop.
    fn step(
        &self,
        st: &mut ShardState,
        now: u64,
        flight: Flight,
        mailboxes: &[Mutex<Vec<(u64, Flight)>>],
        local_min: &mut u64,
        observed: bool,
    ) {
        let mut flight = flight;
        if flight.hops == 0 {
            st.report.injected += 1;
            if self.faults.contains(&flight.at) {
                self.drop_flight(st, now, &flight, DropReason::FaultySource, observed);
                return;
            }
            if observed {
                flight.shortest = self.shortest(flight.at, flight.dst);
                st.events.push(NetEvent::Inject {
                    time: now,
                    message: flight.id as usize,
                    source: self.word(flight.at),
                    destination: self.word(flight.dst),
                    // Next-hop forwarding carries no route field, like
                    // the hop-by-hop mode of the classic simulator.
                    route_len: 0,
                    shortest: flight.shortest as usize,
                });
            }
        } else if self.faults.contains(&flight.at) {
            self.drop_flight(st, now, &flight, DropReason::FaultyNode, observed);
            return;
        }
        if flight.at == flight.dst {
            st.report.delivered += 1;
            st.report.total_hops += u64::from(flight.hops);
            *st.report
                .hop_histogram
                .entry(flight.hops as usize)
                .or_insert(0) += 1;
            let latency = now - flight.injected_at;
            st.report.latency_total += latency;
            st.report.latency_max = st.report.latency_max.max(latency);
            st.report.makespan = st.report.makespan.max(now);
            if observed {
                st.events.push(NetEvent::Deliver {
                    time: now,
                    message: flight.id as usize,
                    hops: flight.hops as usize,
                    latency,
                    shortest: flight.shortest as usize,
                });
            }
            return;
        }
        if self.config.ttl > 0 && flight.hops as usize >= self.config.ttl {
            self.drop_flight(st, now, &flight, DropReason::Ttl, observed);
            return;
        }

        let next = match &self.table {
            Some(table) => table.apply(flight.at, table.next_hop(flight.at, flight.dst)),
            None => self.fallback_next(st, now, &flight, observed),
        };
        let service = self.config.link.service;
        let depart = st.links.book(&self.ranks, flight.at, next, now, service);
        let arrive = depart + service + self.config.link.latency;
        let wait = depart - now;
        st.report.total_queue_wait += wait;
        st.report.max_queue_wait = st.report.max_queue_wait.max(wait);
        if observed {
            st.events.push(NetEvent::Forward {
                time: now,
                message: flight.id as usize,
                hop: flight.hops as usize,
                from: self.word(flight.at),
                to: self.word(next),
                departs: depart,
                arrives: arrive,
                queue_wait: wait,
                queue_depth: wait.div_ceil(service.max(1)) as usize,
            });
        }

        let forwarded = Flight {
            at: next,
            hops: flight.hops + 1,
            ..flight
        };
        *local_min = (*local_min).min(arrive);
        let dshard = self.shard_of(next);
        if dshard == st.sid {
            st.queue.push(arrive, forwarded);
        } else {
            mailboxes[st.sid * self.shards + dshard]
                .lock()
                .expect("mailbox lock poisoned")
                .push((arrive, forwarded));
        }
    }

    /// Fallback `O(k)` next hop: run the configured word-level router
    /// from `at` and take (and, for wildcards, resolve) its first step.
    fn fallback_next(&self, st: &mut ShardState, now: u64, flight: &Flight, observed: bool) -> u64 {
        let x = self.word(flight.at);
        let y = self.word(flight.dst);
        if self.directed {
            routing::algorithm1_into(&x, &y, &mut st.scratch, &mut st.route);
        } else {
            routing::route_with_engine_into(&x, &y, Engine::Auto, &mut st.route);
        }
        let first = st.route.steps()[0];
        let digit = match first.digit {
            Digit::Exact(b) => b,
            Digit::Any => {
                let b = self.resolve_wildcard(st, flight, first.shift);
                if observed {
                    st.events.push(NetEvent::WildcardResolved {
                        time: now,
                        message: flight.id as usize,
                        at: x,
                        shift: first.shift,
                        digit: b,
                        policy: self.config.policy,
                    });
                }
                b
            }
        };
        match first.shift {
            ShiftKind::Left => self.ranks.shift_left(flight.at, digit),
            ShiftKind::Right => self.ranks.shift_right(flight.at, digit),
        }
    }

    /// Wildcard resolution without shared RNG state: the random policy
    /// hashes `(seed, message, hop)`, so the chosen digit is a pure
    /// function of the flight — identical for every shard layout
    /// (unlike the classic simulator's single shared RNG stream, whose
    /// draws depend on global event interleaving).
    fn resolve_wildcard(&self, st: &mut ShardState, flight: &Flight, shift: ShiftKind) -> u8 {
        use crate::policy::WildcardPolicy;
        let at = flight.at;
        let d = self.space.d();
        match self.config.policy {
            WildcardPolicy::Zero => 0,
            WildcardPolicy::Random => {
                let mix = self
                    .config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(flight.id) << 16)
                    .wrapping_add(u64::from(flight.hops));
                SplitMix64::new(mix).digit(d)
            }
            WildcardPolicy::RoundRobin => {
                let counter = st.rr.entry(at).or_insert(0);
                let b = *counter % d;
                *counter = (*counter + 1) % d;
                b
            }
            WildcardPolicy::LeastLoaded => (0..d)
                .min_by_key(|&b| {
                    let next = match shift {
                        ShiftKind::Left => self.ranks.shift_left(at, b),
                        ShiftKind::Right => self.ranks.shift_right(at, b),
                    };
                    st.links.free_time(&self.ranks, at, next)
                })
                .expect("d >= 2"),
        }
    }

    fn drop_flight(
        &self,
        st: &mut ShardState,
        now: u64,
        flight: &Flight,
        reason: DropReason,
        observed: bool,
    ) {
        st.report.dropped += 1;
        *st.report
            .dropped_by_reason
            .entry(reason.name())
            .or_insert(0) += 1;
        if observed {
            st.events.push(NetEvent::Drop {
                time: now,
                message: flight.id as usize,
                reason,
            });
        }
    }

    /// Fault-free shortest distance under the configured model, via the
    /// table when present (an `O(k)` walk) or the distance engines.
    fn shortest(&self, src: u64, dst: u64) -> u32 {
        match &self.table {
            Some(table) => table.walk_distance(src, dst) as u32,
            None => {
                let x = self.word(src);
                let y = self.word(dst);
                let dist = if self.directed {
                    distance::directed::distance(&x, &y)
                } else {
                    distance::undirected::distance(&x, &y)
                };
                dist as u32
            }
        }
    }

    fn word(&self, rank: u64) -> Word {
        self.space
            .word_from_rank(u128::from(rank))
            .expect("rank below order")
    }

    /// Total directed links, mirroring the classic simulator's count
    /// (0 when the space is too large to enumerate cheaply).
    fn count_links(&self) -> usize {
        const ENUMERATION_LIMIT: usize = 1 << 16;
        let Some(n) = self.space.order_usize() else {
            return 0;
        };
        if n > ENUMERATION_LIMIT {
            return 0;
        }
        self.space
            .vertices()
            .map(|w| {
                if self.directed {
                    self.space.directed_out_neighbors(&w).len()
                } else {
                    self.space.undirected_neighbors(&w).len()
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WildcardPolicy;
    use crate::record::{InMemoryRecorder, JsonlRecorder};
    use crate::sim::Simulation;
    use crate::workload;

    fn space(d: u8, k: usize) -> DeBruijn {
        DeBruijn::new(d, k).expect("valid parameters")
    }

    fn run_grid(space: DeBruijn, config: SimConfig, traffic: &[Injection], cap: Option<usize>) {
        let mut baseline: Option<(SimReport, Vec<u8>, InMemoryRecorder)> = None;
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                let mut cfg = config;
                cfg.threads = threads;
                let mut sim = ShardedSimulation::new(space, cfg, shards).expect("supported config");
                if let Some(bytes) = cap {
                    sim = sim.with_table_memory_cap(bytes);
                }
                let mut jsonl = JsonlRecorder::new(Vec::new());
                let mut metrics = InMemoryRecorder::new();
                let mut fan = crate::record::FanoutRecorder::new();
                fan.push(&mut jsonl);
                fan.push(&mut metrics);
                let report = sim.run_recorded(traffic, &mut fan);
                drop(fan);
                let trace = jsonl.finish().expect("in-memory trace never fails");
                match &baseline {
                    None => baseline = Some((report, trace, metrics)),
                    Some((r, t, m)) => {
                        assert_eq!(&report, r, "report differs at S={shards} T={threads}");
                        assert_eq!(&trace, t, "trace differs at S={shards} T={threads}");
                        assert_eq!(&metrics, m, "metrics differ at S={shards} T={threads}");
                    }
                }
            }
        }
    }

    /// Tentpole determinism contract: the final report, the JSONL trace
    /// (byte for byte), and the metrics snapshot are identical for
    /// every shard/thread combination.
    #[test]
    fn report_trace_and_metrics_identical_across_shards_and_threads() {
        let space = space(2, 7);
        let traffic = workload::uniform_random(space, 400, 11);
        run_grid(space, SimConfig::default(), &traffic, None);
    }

    /// Same contract on the engine-fallback path (table disabled) with
    /// a wildcard-heavy router and the stateful round-robin policy.
    #[test]
    fn fallback_path_is_deterministic_too() {
        let space = space(3, 4);
        let traffic = workload::uniform_burst(space, 300, 5);
        let config = SimConfig {
            policy: WildcardPolicy::RoundRobin,
            ..SimConfig::default()
        };
        run_grid(space, config, &traffic, Some(0));
    }

    /// The sharded engine is a faithful optimal-routing simulator: every
    /// message is delivered in exactly the hops the classic source-routed
    /// simulator takes (both route optimally), for the same traffic.
    #[test]
    fn hop_histogram_matches_classic_simulator() {
        let space = space(2, 8);
        let traffic = workload::uniform_random(space, 500, 23);
        let classic = Simulation::new(space, SimConfig::default())
            .expect("classic sim")
            .run(&traffic);
        let sim = ShardedSimulation::new(space, SimConfig::default(), 4).expect("supported config");
        assert!(sim.uses_table(), "d=2 k=8 fits the default memory cap");
        let sharded = sim.run(&traffic);
        assert_eq!(sharded.hop_histogram, classic.hop_histogram);
        assert_eq!(sharded.delivered, classic.delivered);
        assert_eq!(sharded.injected, classic.injected);
        assert_eq!(sharded.total_hops, classic.total_hops);
    }

    /// Directed mode (Algorithm 1): hop counts equal directed distances.
    #[test]
    fn directed_mode_routes_at_directed_distance() {
        let space = space(2, 5);
        let config = SimConfig {
            router: RouterKind::Algorithm1,
            ..SimConfig::default()
        };
        let traffic = workload::uniform_random(space, 200, 3);
        let report = ShardedSimulation::new(space, config, 3)
            .expect("supported config")
            .run(&traffic);
        let mut expected: BTreeMap<usize, usize> = BTreeMap::new();
        for inj in &traffic {
            *expected
                .entry(distance::directed::distance(&inj.source, &inj.destination))
                .or_insert(0) += 1;
        }
        assert_eq!(report.hop_histogram, expected);
        // And the fallback path agrees with the table path.
        let fallback = ShardedSimulation::new(space, config, 3)
            .expect("supported config")
            .with_table_memory_cap(0)
            .run(&traffic);
        assert_eq!(fallback.hop_histogram, expected);
    }

    /// Faulty nodes drop traffic at injection and in transit; TTL expiry
    /// drops the rest — matching the classic simulator's accounting.
    #[test]
    fn faults_and_ttl_are_honored() {
        let space = space(2, 6);
        let faulty = space.word_from_rank(0).expect("rank 0 exists");
        let traffic = workload::uniform_random(space, 300, 9);
        let sim = ShardedSimulation::new(space, SimConfig::default(), 4)
            .expect("supported config")
            .with_faults(vec![faulty])
            .expect("fault word in space");
        let report = sim.run(&traffic);
        assert_eq!(report.injected, 300);
        assert_eq!(report.delivered + report.dropped, 300);
        assert!(report.dropped > 0, "rank 0 participates in some routes");

        let strangled = ShardedSimulation::new(
            space,
            SimConfig {
                ttl: 1,
                ..SimConfig::default()
            },
            4,
        )
        .expect("supported config")
        .run(&traffic);
        assert_eq!(
            strangled.dropped as u64,
            strangled.dropped_by_reason.get("ttl").copied().unwrap_or(0),
            "with ttl=1 every drop is a TTL drop"
        );
        assert!(strangled.dropped > 0, "most pairs are farther than 1 hop");
    }

    /// Configurations the sharded engine cannot honor are rejected up
    /// front instead of silently diverging from the classic simulator.
    #[test]
    fn unsupported_configs_are_rejected() {
        let space = space(2, 4);
        for config in [
            SimConfig {
                router: RouterKind::Trivial,
                ..SimConfig::default()
            },
            SimConfig {
                router: RouterKind::Multipath,
                ..SimConfig::default()
            },
            SimConfig {
                fault_handling: FaultHandling::SourceReroute,
                ..SimConfig::default()
            },
        ] {
            assert!(matches!(
                ShardedSimulation::new(space, config, 2),
                Err(NetError::Unsupported { .. })
            ));
        }
    }

    /// Shard counts beyond the node count clamp instead of panicking,
    /// and a single shard still honors `threads > 1`.
    #[test]
    fn extreme_shard_counts_clamp() {
        let space = space(2, 3);
        let traffic = workload::uniform_random(space, 50, 2);
        let huge =
            ShardedSimulation::new(space, SimConfig::default(), 1000).expect("supported config");
        assert_eq!(huge.shards(), 8);
        let one = ShardedSimulation::new(
            space,
            SimConfig {
                threads: 8,
                ..SimConfig::default()
            },
            1,
        )
        .expect("supported config");
        assert_eq!(huge.run(&traffic), one.run(&traffic));
    }
}
