//! End-to-end tests for the thread-per-core query service: concurrent
//! keep-alive clients, typed error handling, and overload shedding.
//!
//! The contract under test: every response is byte-identical to the
//! single-threaded direct-engine answer regardless of worker count,
//! connection assignment, or cache state; malformed queries are typed
//! `400`s; overload sheds with `503` + `Retry-After` and never grows a
//! queue past its bound; shutdown drains every admitted query.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

use debruijn_core::Word;
use debruijn_net::metrics::MetricsRegistry;
use debruijn_net::service::{
    answer_query_direct, parse_query, Dispatcher, Query, QueryKind, QueryService, ServiceConfig,
};

/// A minimal HTTP/1.1 keep-alive client: one socket, many requests.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One parsed response: status, `Retry-After` (if present), body.
struct Response {
    status: u16,
    retry_after: Option<u64>,
    content_type: String,
    body: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Self { stream, reader }
    }

    /// Sends `GET target` on the persistent connection and reads the
    /// full response (Content-Length framed).
    fn get(&mut self, target: &str) -> Response {
        write!(self.stream, "GET {target} HTTP/1.1\r\nHost: dbr\r\n\r\n").unwrap();
        self.stream.flush().unwrap();
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .unwrap();
        let mut content_length = 0usize;
        let mut retry_after = None;
        let mut content_type = String::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line == "\n" || line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap();
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = Some(value.parse().unwrap());
                } else if name.eq_ignore_ascii_case("content-type") {
                    content_type = value.to_string();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        Response {
            status,
            retry_after,
            content_type,
            body: String::from_utf8(body).unwrap(),
        }
    }
}

fn bind_service(config: ServiceConfig) -> (QueryService, Arc<MetricsRegistry>) {
    let registry = Arc::new(MetricsRegistry::new());
    let service = QueryService::bind("127.0.0.1:0", config, Arc::clone(&registry)).unwrap();
    (service, registry)
}

/// The query mix every client thread issues: a deterministic walk over
/// DG(2,6) pairs, alternating endpoint and network direction. All
/// clients share the walk, so the same pairs arrive concurrently from
/// different connections — the cache-hit and determinism stress case.
fn query_mix() -> Vec<(String, Query)> {
    let mut queries = Vec::new();
    for i in 0..48u128 {
        let x = Word::from_rank(2, 6, (i * 5) % 64).unwrap();
        let y = Word::from_rank(2, 6, (i * 11) % 64).unwrap();
        let kind = if i % 2 == 0 { "route" } else { "distance" };
        let directed = i % 3 == 0;
        let target = format!(
            "/{kind}?x={x}&y={y}{}",
            if directed { "&directed=1" } else { "" }
        );
        let kind = if i % 2 == 0 {
            QueryKind::Route
        } else {
            QueryKind::Distance
        };
        let (_, query_string) = target.split_once('?').unwrap();
        let query = parse_query(2, kind, query_string).unwrap();
        queries.push((target, query));
    }
    queries
}

#[test]
fn concurrent_keep_alive_clients_get_byte_identical_answers() {
    let (service, registry) = bind_service(ServiceConfig {
        workers: 3,
        cache_capacity: 64, // small: force eviction traffic too
        ..ServiceConfig::new(2)
    });
    let addr = service.local_addr();
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for (target, query) in query_mix() {
                    let response = client.get(&target);
                    assert_eq!(response.status, 200, "{target}");
                    // Byte-for-byte the single-threaded engine answer.
                    assert_eq!(response.body, answer_query_direct(&query), "{target}");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
    service.shutdown().unwrap();
    let snap = registry.snapshot();
    let requests: u64 = ["distance", "route"]
        .iter()
        .filter_map(|e| {
            snap.counter_value(
                "dbr_service_requests_total",
                &[("endpoint", e), ("status", "200")],
            )
        })
        .sum();
    assert_eq!(requests, 4 * 48);
    // The cache shards saw the traffic (hits and misses both nonzero:
    // clients overlap in their walks).
    let lookups = |outcome: &str| {
        snap.counter_value("dbr_service_cache_total", &[("outcome", outcome)])
            .unwrap_or(0)
    };
    assert!(lookups("miss") > 0);
    assert!(lookups("hit") > 0, "overlapping clients must hit");
}

#[test]
fn malformed_queries_get_typed_400s_and_unknown_endpoints_404() {
    let (service, registry) = bind_service(ServiceConfig {
        workers: 1,
        ..ServiceConfig::new(2)
    });
    let mut client = Client::connect(service.local_addr());

    let cases = [
        ("/distance?y=1011", 400, "missing-param"),
        ("/distance?x=012&y=000", 400, "bad-address"),
        ("/route?x=0110&y=01", 400, "length-mismatch"),
        ("/frobnicate", 404, "unknown-endpoint"),
    ];
    for (target, status, kind) in cases {
        let response = client.get(target);
        assert_eq!(response.status, status, "{target}");
        assert!(
            response.content_type.starts_with("application/json"),
            "{target}: {}",
            response.content_type
        );
        assert!(
            response.body.contains(&format!("\"error\":\"{kind}\"")),
            "{target}: {}",
            response.body
        );
    }
    // A good query on the same (still keep-alive) connection works.
    assert_eq!(client.get("/distance?x=0110&y=1011").body, "1\n");
    service.shutdown().unwrap();
    let snap = registry.snapshot();
    for (_, _, kind) in cases {
        assert_eq!(
            snap.counter_value("dbr_service_errors_total", &[("kind", kind)]),
            Some(1),
            "{kind}"
        );
    }
}

#[test]
fn overloaded_service_sheds_503_with_retry_after() {
    let (service, registry) = bind_service(ServiceConfig {
        workers: 1,
        max_inflight: 4,
        retry_after_secs: 2,
        ..ServiceConfig::new(2)
    });
    // Closing the dispatcher queues makes every subsequent admission
    // fail — the deterministic stand-in for saturated workers.
    service.dispatcher().close();
    let mut client = Client::connect(service.local_addr());
    let response = client.get("/route?x=0110&y=1011");
    assert_eq!(response.status, 503);
    assert_eq!(response.retry_after, Some(2));
    assert!(response.body.contains("\"error\":\"overloaded\""));
    // Non-query endpoints still answer while shedding.
    assert_eq!(client.get("/healthz").body, "ok\n");
    service.shutdown().unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter_value("dbr_service_shed_total", &[]), Some(1));
    assert_eq!(
        snap.counter_value(
            "dbr_service_requests_total",
            &[("endpoint", "route"), ("status", "503")]
        ),
        Some(1)
    );
}

#[test]
fn dispatcher_overload_keeps_depth_bounded_and_drains_on_shutdown() {
    let registry = Arc::new(MetricsRegistry::new());
    let config = ServiceConfig {
        workers: 1,
        max_inflight: 8,
        ..ServiceConfig::new(2)
    };
    let dispatcher = Dispatcher::new(config, Arc::clone(&registry));
    let query = parse_query(2, QueryKind::Route, "x=0110&y=1011").unwrap();
    // No worker is running: exactly max_inflight admissions succeed,
    // everything beyond sheds, and the depth never exceeds the bound.
    let mut receivers = Vec::new();
    let mut sheds = 0;
    for _ in 0..20 {
        let (tx, rx) = sync_channel(1);
        match dispatcher.submit(query.clone(), tx) {
            Ok(depth) => {
                assert!(depth <= 8);
                receivers.push(rx);
            }
            Err(_) => sheds += 1,
        }
    }
    assert_eq!(receivers.len(), 8);
    assert_eq!(sheds, 12);
    assert_eq!(dispatcher.queue_depth(0), 8);
    // Shutdown: close, then a (late-started) worker drains what was
    // admitted — every accepted query still gets its answer.
    dispatcher.close();
    dispatcher.run_worker(0);
    let expected = answer_query_direct(&query);
    for rx in receivers {
        assert_eq!(rx.recv().unwrap(), expected);
    }
    assert_eq!(dispatcher.queue_depth(0), 0);
    assert_eq!(
        registry
            .snapshot()
            .counter_value("dbr_service_shed_total", &[]),
        Some(12)
    );
}

#[test]
fn connection_close_is_honored_and_http10_defaults_to_close() {
    let (service, _registry) = bind_service(ServiceConfig {
        workers: 1,
        ..ServiceConfig::new(2)
    });
    let addr = service.local_addr();
    // `Connection: close`: the server answers then closes the socket.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    write!(
        stream,
        "GET /distance?x=0110&y=1011 HTTP/1.1\r\nHost: dbr\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("Connection: close"), "{response}");
    assert!(response.ends_with("1\n"), "{response}");
    // HTTP/1.0 without keep-alive: also one-shot.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    write!(stream, "GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.contains("Connection: close"), "{response}");
    assert!(response.ends_with("ok\n"), "{response}");
    service.shutdown().unwrap();
}
