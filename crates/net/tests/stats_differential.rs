//! Differential tests for both histogram implementations.
//!
//! A deliberately naive reference — keep every sample in a sorted
//! `Vec` — pins down what `percentile`, `variance` and `std_dev` must
//! mean. The exact [`Histogram`] must agree with it bit for bit; the
//! log-bucketed [`LogHistogram`] must agree within its documented
//! error bound (and the 2% bound the telemetry layer promises) on a
//! million-sample run.

use debruijn_core::rng::SplitMix64;
use debruijn_net::telemetry::LogHistogram;
use debruijn_net::Histogram;

/// The reference semantics, spelled out on a plain sorted vector.
struct Naive {
    sorted: Vec<u64>,
}

impl Naive {
    fn new(mut values: Vec<u64>) -> Self {
        values.sort_unstable();
        Self { sorted: values }
    }

    /// Nearest rank: smallest value with at least `⌈p/100·n⌉` samples
    /// at or below it.
    fn percentile(&self, p: f64) -> Option<u64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil().max(1.0) as usize;
        Some(self.sorted[rank - 1])
    }

    fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.sorted.iter().map(|&v| u128::from(v)).sum();
        sum as f64 / self.sorted.len() as f64
    }

    fn variance(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.sorted
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / self.sorted.len() as f64
    }
}

/// A named sample generator.
type Distribution = (&'static str, Box<dyn Fn(&mut SplitMix64) -> u64>);

/// Named sample generators covering the shapes the simulator produces
/// (small dense counters, latencies, heavy tails) plus adversarial
/// ones (constants, full-range uniform).
fn distributions() -> Vec<Distribution> {
    vec![
        (
            "small-dense",
            Box::new(|r: &mut SplitMix64| r.below_u64(64)),
        ),
        (
            "latency-like",
            Box::new(|r: &mut SplitMix64| r.below_u64(5_000)),
        ),
        ("constant", Box::new(|_: &mut SplitMix64| 42)),
        (
            "heavy-tail",
            Box::new(|r: &mut SplitMix64| {
                let e = r.below_u64(50) as u32;
                (1u64 << e) + r.below_u64(1 + (1u64 << e))
            }),
        ),
        ("full-range", Box::new(|r: &mut SplitMix64| r.next_u64())),
    ]
}

const PERCENTILES: [f64; 9] = [0.0, 0.1, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];

#[test]
fn exact_histogram_matches_naive_reference() {
    for (name, gen) in distributions() {
        for seed in [1u64, 7, 0xDEAD] {
            let mut rng = SplitMix64::new(seed);
            let mut h = Histogram::new();
            let mut values = Vec::new();
            for _ in 0..3000 {
                let v = gen(&mut rng);
                h.record(v);
                values.push(v);
            }
            let naive = Naive::new(values);
            for p in PERCENTILES {
                assert_eq!(
                    h.percentile(p),
                    naive.percentile(p),
                    "{name} seed {seed} p{p}"
                );
            }
            assert_eq!(h.min(), naive.sorted.first().copied(), "{name} min");
            assert_eq!(h.max(), naive.sorted.last().copied(), "{name} max");
            let scale = naive.variance().max(1.0);
            assert!(
                (h.variance() - naive.variance()).abs() / scale < 1e-9,
                "{name} seed {seed}: variance {} vs {}",
                h.variance(),
                naive.variance()
            );
            assert!(
                (h.std_dev() - naive.variance().sqrt()).abs() / scale.sqrt() < 1e-9,
                "{name} seed {seed} std_dev"
            );
        }
    }
}

#[test]
fn exact_histogram_percentile_edges() {
    let mut h = Histogram::new();
    for v in [10u64, 20, 30] {
        h.record(v);
    }
    // p0 and anything below one rank land on the minimum; p100 on the
    // maximum — mirroring the naive rank formula.
    assert_eq!(h.percentile(0.0), Some(10));
    assert_eq!(h.percentile(100.0), Some(30));
    assert_eq!(h.percentile(33.4), Some(20));
    assert!(Histogram::new().percentile(50.0).is_none());
}

/// The acceptance bound the telemetry layer documents for quantiles.
const QUANTILE_BOUND: f64 = 0.02;

#[test]
fn log_histogram_tracks_naive_within_error_bound_on_a_million_samples() {
    let mut rng = SplitMix64::new(0xB0B);
    let mut log = LogHistogram::new();
    let mut values = Vec::with_capacity(1_000_000);
    for _ in 0..1_000_000 {
        // Mixture: mostly latency-scale values with a heavy tail, like
        // a congested run.
        let v = if rng.below_u64(10) == 0 {
            1u64 << (10 + rng.below_u64(30) as u32)
        } else {
            rng.below_u64(10_000)
        };
        log.record(v);
        values.push(v);
    }
    let naive = Naive::new(values);
    assert_eq!(log.count(), 1_000_000);
    assert_eq!(log.min(), naive.sorted.first().copied());
    assert_eq!(log.max(), naive.sorted.last().copied());
    // Sum is tracked exactly, so the mean is exact.
    assert_eq!(log.mean(), naive.mean());
    for p in [50.0, 90.0, 99.0] {
        let exact = naive.percentile(p).unwrap() as f64;
        let approx = log.percentile(p).unwrap() as f64;
        let err = (approx - exact).abs() / exact.max(1.0);
        assert!(
            err <= LogHistogram::MAX_RELATIVE_ERROR,
            "p{p}: {approx} vs {exact} (err {err:.5})"
        );
        assert!(err <= QUANTILE_BOUND, "p{p} outside 2%: {err:.5}");
    }
    // Variance over bucket midpoints stays within the same relative
    // band (values are at most 1/128 off, so the deviation squares to
    // well under 2%).
    let scale = naive.variance();
    assert!(
        (log.variance() - scale).abs() / scale <= QUANTILE_BOUND,
        "variance {} vs {}",
        log.variance(),
        scale
    );
    assert!((log.std_dev() - scale.sqrt()).abs() / scale.sqrt() <= QUANTILE_BOUND);
}

#[test]
fn log_histogram_percentile_edges_are_exact() {
    let mut rng = SplitMix64::new(3);
    let mut log = LogHistogram::new();
    let mut values = Vec::new();
    for _ in 0..10_000 {
        let v = rng.next_u64() >> (rng.below_u64(60) as u32);
        log.record(v);
        values.push(v);
    }
    let naive = Naive::new(values);
    // p0 and p100 snap to the exactly-tracked extremes, whatever the
    // bucket midpoints say.
    assert_eq!(log.percentile(0.0), naive.percentile(0.0));
    assert_eq!(log.percentile(100.0), naive.percentile(100.0));
}

/// 10^5 mixed-magnitude samples: a blend of every distribution above,
/// switching shape per sample so shard boundaries never align with
/// distribution boundaries.
fn mixed_magnitude_samples(seed: u64, n: usize) -> Vec<u64> {
    let shapes = distributions();
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let shape = rng.below_u64(shapes.len() as u64) as usize;
            (shapes[shape].1)(&mut rng)
        })
        .collect()
}

#[test]
fn log_histogram_merge_is_exact_across_shard_counts() {
    // `merge` adds bucket counts and folds min/max/sum exactly, so a
    // histogram assembled from *any* sharding of a sample stream must
    // be byte-identical to the single-stream histogram — same
    // quantiles, same summary line, equal by `PartialEq`. This is the
    // property the sharded trace replay (`metrics::replay_sharded`)
    // leans on for thread-count-independent output.
    const N: usize = 100_000;
    for seed in [0xA11CE, 0x5EED] {
        let values = mixed_magnitude_samples(seed, N);
        let mut single = LogHistogram::new();
        for &v in &values {
            single.record(v);
        }
        for shards in [1usize, 2, 3, 7, 16, 64] {
            let chunk = N.div_ceil(shards);
            let mut merged = LogHistogram::new();
            for part in values.chunks(chunk) {
                let mut shard = LogHistogram::new();
                for &v in part {
                    shard.record(v);
                }
                merged.merge(&shard);
            }
            assert_eq!(merged, single, "seed {seed:#x}, {shards} shards");
            for p in PERCENTILES {
                assert_eq!(
                    merged.percentile(p),
                    single.percentile(p),
                    "seed {seed:#x}, {shards} shards, p{p}"
                );
            }
            assert_eq!(merged.summary(), single.summary());
        }
    }
}

#[test]
fn log_histogram_merge_matches_naive_reference_within_bound() {
    // Sharded-then-merged quantiles inherit the single-stream accuracy
    // guarantee against the ground-truth sorted vector.
    let values = mixed_magnitude_samples(0xFACADE, 100_000);
    let mut merged = LogHistogram::new();
    for part in values.chunks(9_973) {
        let mut shard = LogHistogram::new();
        for &v in part {
            shard.record(v);
        }
        merged.merge(&shard);
    }
    let naive = Naive::new(values);
    assert_eq!(merged.count(), 100_000);
    assert_eq!(merged.min(), naive.sorted.first().copied());
    assert_eq!(merged.max(), naive.sorted.last().copied());
    assert_eq!(merged.mean(), naive.mean());
    for p in [25.0, 50.0, 90.0, 99.0] {
        let exact = naive.percentile(p).unwrap() as f64;
        let approx = merged.percentile(p).unwrap() as f64;
        let err = (approx - exact).abs() / exact.max(1.0);
        assert!(
            err <= LogHistogram::MAX_RELATIVE_ERROR,
            "p{p}: merged {approx} vs naive {exact} (err {err:.5})"
        );
    }
}

#[test]
fn log_histogram_merge_identities() {
    let values = mixed_magnitude_samples(7, 1_000);
    let mut h = LogHistogram::new();
    for &v in &values {
        h.record(v);
    }
    // Merging an empty histogram in either direction is the identity.
    let mut left = h.clone();
    left.merge(&LogHistogram::new());
    assert_eq!(left, h);
    let mut right = LogHistogram::new();
    right.merge(&h);
    assert_eq!(right, h);
    // Self-merge doubles every bucket, keeping quantiles fixed.
    let mut doubled = h.clone();
    doubled.merge(&h.clone());
    assert_eq!(doubled.count(), 2 * h.count());
    assert_eq!(doubled.percentile(50.0), h.percentile(50.0));
    assert_eq!(doubled.min(), h.min());
    assert_eq!(doubled.max(), h.max());
}
