//! Error types for de Bruijn word and parameter validation.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced when constructing de Bruijn words or parameter spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The digit radix `d` must be at least 2.
    RadixTooSmall {
        /// The rejected radix.
        d: u8,
    },
    /// The word length `k` must be at least 1.
    LengthTooSmall,
    /// A digit was out of the range `0..d`.
    DigitOutOfRange {
        /// The offending digit value.
        digit: u8,
        /// The radix it was checked against.
        d: u8,
        /// Index of the digit within the word.
        index: usize,
    },
    /// A rank exceeded the number of vertices `d^k`.
    RankOutOfRange {
        /// The rejected rank.
        rank: u128,
        /// The radix.
        d: u8,
        /// The word length.
        k: usize,
    },
    /// A character could not be parsed as a digit.
    ParseDigit {
        /// Byte offset of the offending character.
        index: usize,
    },
    /// Parsing produced an empty word.
    ParseEmpty,
    /// A serialized routing path was malformed.
    MalformedRoute {
        /// What was wrong with the encoding.
        reason: &'static str,
    },
    /// A word does not fit the 128-bit packed representation.
    PackedTooWide {
        /// The word length.
        k: usize,
        /// The radix.
        d: u8,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RadixTooSmall { d } => {
                write!(f, "de Bruijn radix must be at least 2, got {d}")
            }
            Error::LengthTooSmall => write!(f, "de Bruijn word length must be at least 1"),
            Error::DigitOutOfRange { digit, d, index } => {
                write!(
                    f,
                    "digit {digit} at index {index} is not below the radix {d}"
                )
            }
            Error::RankOutOfRange { rank, d, k } => {
                write!(f, "rank {rank} exceeds the vertex count {d}^{k}")
            }
            Error::ParseDigit { index } => {
                write!(f, "unparsable digit at byte offset {index}")
            }
            Error::ParseEmpty => write!(f, "parsed word is empty"),
            Error::MalformedRoute { reason } => {
                write!(f, "malformed routing path: {reason}")
            }
            Error::PackedTooWide { k, d } => {
                write!(f, "word of {k} radix-{d} digits exceeds 128 packed bits")
            }
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::DigitOutOfRange {
            digit: 7,
            d: 3,
            index: 2,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3') && s.contains('2'), "{s}");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
