//! Compressed next-hop forwarding: `O(k)` state instead of `O(n²)`.
//!
//! The dense [`NextHopTable`](super::NextHopTable) stores one byte per
//! `(node, destination)` pair — `d^{2k}` bytes, which crosses its 64 MiB
//! cap at `DG(2,7)²⁰ ≈ 8192` nodes and is hopeless at the million-node
//! scale (`DG(2,20)` would need a terabyte). But the table's content is
//! almost entirely *predictable from the shift structure of the graph*,
//! which is exactly what the paper proves:
//!
//! * **Directed network (Property 1).** `D(X,Y) = k − m` where `m` is
//!   the overlap (longest suffix of `X` that prefixes `Y`), and the
//!   *unique* distance-reducing left shift is `X⁻(y_{m+1})`: appending
//!   digit `a` extends the overlap to `m + 1` iff `a = y_{m+1}`, and no
//!   digit can reach overlap `m + 2` because that would require a
//!   length-`(m+1)` suffix match `X` does not have. So the dense
//!   table's directed column is the function `port = y_{k−D+1}` — no
//!   storage needed beyond the destination's own digits, and the
//!   per-hop state is a single counter (the remaining distance), which
//!   this module maintains for the caller as a *cursor*.
//! * **Undirected network (Theorem 2).** The dense table pins the
//!   *smallest* distance-reducing port among the `2d` shifts. Because
//!   every optimal hop reduces `D` by exactly one, that port is
//!   recoverable on the fly: probe ports in the canonical order
//!   `X⁻(0), …, X⁻(d−1), X⁺(0), …, X⁺(d−1)` and take the first whose
//!   neighbor sits at distance `D − 1`, with each probe answered by an
//!   allocation-free Theorem 2 solve over the digit buffers
//!   ([`debruijn_strings::bitmatch`]). At most `2d` solves of
//!   `O(k²/64)` words each — independent of `n`.
//!
//! Both rules reproduce the dense table's ports *exactly* (not just
//! ports of equal quality), so a simulation that swaps the dense table
//! for [`CompressedNextHop`] produces byte-identical reports — the
//! differential grid in this module's tests asserts port-for-port
//! equality over every pair of every `DG(d,k)` with `d ∈ {2,3}`,
//! `k ≤ 6`.
//!
//! The "exception side-table" variant (store only the pairs where a
//! naive shift prediction misses) was rejected: its key space is the
//! full `(src, dst)` square, which is the `O(n²)` we are escaping — see
//! ADR 0006.

use debruijn_strings::bitmatch::{self, BitScratch};
use debruijn_strings::failure;

use super::table::PORT_SELF;
use crate::space::{DeBruijn, RankSpace};
use crate::ShiftKind;

/// Port-prediction engine for spaces too large for the dense table.
///
/// Holds `O(k)` state (the digit place values); all per-query buffers
/// live in a caller-provided [`CompressedScratch`], so one instance can
/// serve any number of concurrent workers.
///
/// # Cursor protocol
///
/// A message in flight carries one `u32`: its remaining distance.
/// Initialize it with [`CompressedNextHop::distance`], then each hop
/// calls [`CompressedNextHop::advance`] with the current value and
/// decrements it — `O(1)` per hop in the directed network, at most `2d`
/// bit-parallel solves in the undirected one.
///
/// # Examples
///
/// ```
/// use debruijn_core::routing::compressed::{CompressedNextHop, CompressedScratch};
/// use debruijn_core::DeBruijn;
///
/// // DG(2,20): a million nodes — 10¹² table entries, zero stored here.
/// let space = DeBruijn::new(2, 20)?;
/// let engine = CompressedNextHop::new(space, false).expect("ranks fit u64");
/// let mut scratch = CompressedScratch::new();
/// let (src, dst) = (123_456, 987_654);
/// let mut dist = engine.distance(src, dst, &mut scratch);
/// let mut at = src;
/// while at != dst {
///     let port = engine.advance(at, dst, dist, &mut scratch);
///     at = engine.apply(at, port);
///     dist -= 1;
/// }
/// assert_eq!(dist, 0); // arrived in exactly D(src, dst) hops
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompressedNextHop {
    ranks: RankSpace,
    d: u8,
    k: usize,
    directed: bool,
    /// `pows[i] = d^(k−1−i)`: place value of digit `i` (most
    /// significant first), so digit `i` of rank `r` is `r / pows[i] % d`.
    pows: Vec<u64>,
}

/// Reusable buffers for [`CompressedNextHop`] queries: digit
/// materializations of the node, neighbor, and destination, the
/// failure-function table (directed overlap), and the packed lanes of
/// the bit-parallel Theorem 2 solver. One per worker keeps the hot path
/// allocation-free after warm-up.
///
/// # Examples
///
/// ```
/// use debruijn_core::routing::compressed::{CompressedNextHop, CompressedScratch};
/// use debruijn_core::DeBruijn;
///
/// let engine = CompressedNextHop::new(DeBruijn::new(2, 5)?, true).unwrap();
/// let mut scratch = CompressedScratch::new();
/// assert_eq!(engine.distance(0b00000, 0b11111, &mut scratch), 5);
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct CompressedScratch {
    x: Vec<u8>,
    y: Vec<u8>,
    nbr: Vec<u8>,
    fail: Vec<usize>,
    bits: BitScratch,
}

impl CompressedScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CompressedNextHop {
    /// Creates the engine for `space`. `directed` selects Property 1
    /// prediction (left shifts only) over Theorem 2 probing.
    ///
    /// Returns `None` when `d^k` does not fit 64-bit ranks or the `2d`
    /// ports do not fit the `u8` encoding — the same preconditions as
    /// the dense table, minus the memory cap.
    pub fn new(space: DeBruijn, directed: bool) -> Option<Self> {
        let ranks = RankSpace::new(space)?;
        if usize::from(space.d()) * 2 >= usize::from(PORT_SELF) {
            return None;
        }
        let d = space.d();
        let k = space.k();
        let mut pows = vec![1u64; k];
        for i in (0..k.saturating_sub(1)).rev() {
            pows[i] = pows[i + 1].checked_mul(u64::from(d))?;
        }
        Some(Self {
            ranks,
            d,
            k,
            directed,
            pows,
        })
    }

    /// The wrapped rank arithmetic.
    pub fn ranks(&self) -> RankSpace {
        self.ranks
    }

    /// Number of vertices `d^k`.
    pub fn order(&self) -> u64 {
        self.ranks.order()
    }

    /// Whether ports follow Property 1 (left shifts only).
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Bytes held by this engine — `O(k)`, versus the dense table's
    /// `d^{2k}`.
    pub fn memory_bytes(&self) -> usize {
        self.pows.len() * std::mem::size_of::<u64>()
    }

    /// Writes the `k` digits of `rank` (most significant first) into
    /// `out`.
    fn digits_into(&self, mut rank: u64, out: &mut Vec<u8>) {
        out.clear();
        out.resize(self.k, 0);
        for slot in out.iter_mut().rev() {
            *slot = (rank % u64::from(self.d)) as u8;
            rank /= u64::from(self.d);
        }
    }

    /// `D(src, dst)` under the configured model: Property 1 overlap for
    /// the directed network (`O(k)`), a bit-parallel Theorem 2 solve
    /// for the undirected one (`O(k²/64)` words). This is the cursor
    /// initializer for [`CompressedNextHop::advance`].
    ///
    /// # Panics
    ///
    /// Debug-asserts both ranks are below `d^k`.
    pub fn distance(&self, src: u64, dst: u64, scratch: &mut CompressedScratch) -> u32 {
        debug_assert!(src < self.ranks.order() && dst < self.ranks.order());
        if src == dst {
            return 0;
        }
        self.digits_into(src, &mut scratch.x);
        self.digits_into(dst, &mut scratch.y);
        if self.directed {
            (self.k - failure::overlap_with_scratch(&scratch.x, &scratch.y, &mut scratch.fail))
                as u32
        } else {
            undirected_digits(self.d, &scratch.x, &scratch.y, &mut scratch.bits) as u32
        }
    }

    /// The dense table's port at `(src, dst)` — [`PORT_SELF`] when they
    /// coincide — computed from scratch (one distance solve plus the
    /// port rule). Prefer the cursor protocol
    /// ([`CompressedNextHop::distance`] once, then
    /// [`CompressedNextHop::advance`] per hop) on hot paths.
    pub fn next_hop(&self, src: u64, dst: u64, scratch: &mut CompressedScratch) -> u8 {
        if src == dst {
            return PORT_SELF;
        }
        let remaining = self.distance(src, dst, scratch);
        self.advance(src, dst, remaining, scratch)
    }

    /// The next port from `at` toward `dst`, given the current distance
    /// `remaining = D(at, dst) ≥ 1` — exactly the port the dense table
    /// stores. The caller decrements `remaining` after applying the
    /// port (every optimal hop reduces the distance by exactly one).
    ///
    /// # Panics
    ///
    /// Panics (directly or via a failed probe) if `remaining` is not
    /// the true distance from `at` to `dst`.
    pub fn advance(
        &self,
        at: u64,
        dst: u64,
        remaining: u32,
        scratch: &mut CompressedScratch,
    ) -> u8 {
        assert!(
            remaining >= 1 && remaining as usize <= 2 * self.k,
            "cursor out of range: remaining={remaining}"
        );
        if self.directed {
            // Property 1: with overlap m = k − D, the unique improving
            // digit is y_{m+1} (1-indexed) — digit index m of dst.
            let i = self.k - remaining as usize;
            return ((dst / self.pows[i]) % u64::from(self.d)) as u8;
        }
        self.digits_into(at, &mut scratch.x);
        self.digits_into(dst, &mut scratch.y);
        let want = remaining as usize - 1;
        for p in 0..2 * self.d {
            // Neighbor digits by shifting the buffer — cheaper than
            // re-expanding the neighbor's rank.
            scratch.nbr.clear();
            if p < self.d {
                scratch.nbr.extend_from_slice(&scratch.x[1..]);
                scratch.nbr.push(p);
            } else {
                scratch.nbr.push(p - self.d);
                scratch.nbr.extend_from_slice(&scratch.x[..self.k - 1]);
            }
            if undirected_digits(self.d, &scratch.nbr, &scratch.y, &mut scratch.bits) == want {
                return p;
            }
        }
        panic!("no port reduces the distance: cursor desynchronized from the flight")
    }

    /// The neighbor rank one `port` hop from `node` (same encoding as
    /// the dense table: `a < d` is `X⁻(a)`, `d + a` is `X⁺(a)`).
    ///
    /// # Panics
    ///
    /// Panics if `port` does not encode a shift of this engine (e.g.
    /// [`PORT_SELF`], or a right shift on a directed engine).
    #[inline]
    pub fn apply(&self, node: u64, port: u8) -> u64 {
        if port < self.d {
            self.ranks.shift_left(node, port)
        } else {
            assert!(!self.directed && port < 2 * self.d, "port {port} invalid");
            self.ranks.shift_right(node, port - self.d)
        }
    }

    /// Decodes a port into the shift it performs.
    ///
    /// # Panics
    ///
    /// Panics on [`PORT_SELF`] or an out-of-range port.
    pub fn decode_port(&self, port: u8) -> (ShiftKind, u8) {
        if port < self.d {
            (ShiftKind::Left, port)
        } else {
            assert!(!self.directed && port < 2 * self.d, "port {port} invalid");
            (ShiftKind::Right, port - self.d)
        }
    }
}

/// Theorem 2 distance on raw digit slices: `2k − 1 + min(l_min, r_min)`
/// over both matching families, allocation-free with caller scratch.
fn undirected_digits(d: u8, x: &[u8], y: &[u8], bits: &mut BitScratch) -> usize {
    let k = x.len() as i64;
    let (l_min, r_min) = bitmatch::both_family_minima(d, x, y, bits);
    (2 * k - 1 + l_min.value.min(r_min.value)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::table::NextHopTable;

    /// The satellite differential grid: over **every** pair of **every**
    /// `DG(d,k)` with `d ∈ {2,3}` and `k ≤ 6`, in both network models,
    /// the compressed engine returns exactly the dense table's port.
    /// Port equality (not just walk-length equality) is what makes the
    /// two fast paths byte-interchangeable in the simulator.
    #[test]
    fn compressed_ports_equal_dense_ports_on_full_grid() {
        for d in [2u8, 3] {
            for k in 1..=6usize {
                let space = DeBruijn::new(d, k).unwrap();
                for directed in [false, true] {
                    let dense = NextHopTable::build(space, directed, 0, usize::MAX).unwrap();
                    let engine = CompressedNextHop::new(space, directed).unwrap();
                    let mut scratch = CompressedScratch::new();
                    let n = engine.order();
                    for src in 0..n {
                        for dst in 0..n {
                            assert_eq!(
                                engine.next_hop(src, dst, &mut scratch),
                                dense.next_hop(src, dst),
                                "d={d} k={k} directed={directed} {src} -> {dst}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The cursor protocol walks the same nodes the dense table walks,
    /// arrives in exactly `D` hops, and ends with the counter at zero.
    #[test]
    fn cursor_walk_matches_dense_walk() {
        for directed in [false, true] {
            let space = DeBruijn::new(2, 6).unwrap();
            let dense = NextHopTable::build(space, directed, 0, usize::MAX).unwrap();
            let engine = CompressedNextHop::new(space, directed).unwrap();
            let mut scratch = CompressedScratch::new();
            let n = engine.order();
            for src in 0..n {
                for dst in 0..n {
                    let mut remaining = engine.distance(src, dst, &mut scratch);
                    assert_eq!(remaining as usize, dense.walk_distance(src, dst));
                    let mut at = src;
                    while at != dst {
                        let port = engine.advance(at, dst, remaining, &mut scratch);
                        assert_eq!(port, dense.next_hop(at, dst), "{src}->{dst} at {at}");
                        at = engine.apply(at, port);
                        remaining -= 1;
                    }
                    assert_eq!(remaining, 0);
                }
            }
        }
    }

    /// Million-node smoke: `DG(2,20)` routes without any `O(n)` or
    /// `O(n²)` precomputation, in both models, within the diameter.
    #[test]
    fn dg_2_20_routes_with_constant_memory() {
        let space = DeBruijn::new(2, 20).unwrap();
        for directed in [false, true] {
            let engine = CompressedNextHop::new(space, directed).unwrap();
            assert!(engine.memory_bytes() <= 1024, "O(k) state only");
            let mut scratch = CompressedScratch::new();
            let mut rng = crate::rng::SplitMix64::new(0x20_20);
            for _ in 0..50 {
                let src = rng.below_u64(engine.order());
                let dst = rng.below_u64(engine.order());
                let mut remaining = engine.distance(src, dst, &mut scratch);
                // The undirected distance never exceeds the directed
                // one, so k = 20 bounds both models.
                assert!(remaining <= 20);
                let mut at = src;
                let mut hops = 0u32;
                while at != dst {
                    let port = engine.advance(at, dst, remaining, &mut scratch);
                    at = engine.apply(at, port);
                    remaining -= 1;
                    hops += 1;
                    assert!(hops <= 40, "walk must terminate");
                }
                assert_eq!(remaining, 0, "arrived in exactly D hops");
            }
        }
    }

    #[test]
    fn next_hop_handles_self_and_rejects_bad_cursor() {
        let space = DeBruijn::new(2, 4).unwrap();
        let engine = CompressedNextHop::new(space, false).unwrap();
        let mut scratch = CompressedScratch::new();
        assert_eq!(engine.next_hop(5, 5, &mut scratch), PORT_SELF);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.advance(5, 5, 0, &mut CompressedScratch::new())
        }));
        assert!(result.is_err(), "remaining = 0 is not a forwardable state");
    }

    #[test]
    fn decode_and_apply_mirror_the_dense_encoding() {
        let space = DeBruijn::new(3, 3).unwrap();
        let engine = CompressedNextHop::new(space, false).unwrap();
        assert_eq!(engine.decode_port(2), (ShiftKind::Left, 2));
        assert_eq!(engine.decode_port(4), (ShiftKind::Right, 1));
        // X⁻(a) on rank arithmetic: (id mod d^{k−1})·d + a.
        assert_eq!(engine.apply(0, 2), 2);
        // X⁺(a): a·d^{k−1} + id/d.
        assert_eq!(engine.apply(0, 3 + 1), 9);
    }
}
