//! Routing-path representation: the paper's `(a, b)` step pairs.
//!
//! §3 of the paper encodes a path of length `n` as `2n` digits
//! `a₁b₁a₂b₂…aₙbₙ`: `aᵢ` selects the neighbor *type* (0 = type-L, a left
//! shift; 1 = type-R, a right shift) and `bᵢ` the inserted digit. The
//! paper further proposes a wildcard digit `*` meaning "any neighbor of
//! this type", which lets forwarding nodes balance traffic; [`Digit::Any`]
//! models it.

use std::fmt;

use crate::error::Error;
use crate::word::Word;

/// The neighbor type of one routing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    /// Type-L: move to `X⁻(b)` (paper's `a = 0`).
    Left,
    /// Type-R: move to `X⁺(b)` (paper's `a = 1`).
    Right,
}

/// The digit of one routing step: a concrete digit or the wildcard `*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Digit {
    /// Insert exactly this digit.
    Exact(u8),
    /// The paper's `*`: the forwarding node may insert any digit, e.g. to
    /// balance traffic across the `d` neighbors of the requested type.
    Any,
}

/// One hop of a routing path: `(a, b)` in the paper's encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// Which shift to take.
    pub shift: ShiftKind,
    /// Which digit to insert.
    pub digit: Digit,
}

impl Step {
    /// A left shift inserting `b` — the pair `(0, b)`.
    pub fn left(b: u8) -> Self {
        Step {
            shift: ShiftKind::Left,
            digit: Digit::Exact(b),
        }
    }

    /// A right shift inserting `b` — the pair `(1, b)`.
    pub fn right(b: u8) -> Self {
        Step {
            shift: ShiftKind::Right,
            digit: Digit::Exact(b),
        }
    }

    /// A left shift with a free digit — the pair `(0, *)`.
    pub fn left_any() -> Self {
        Step {
            shift: ShiftKind::Left,
            digit: Digit::Any,
        }
    }

    /// A right shift with a free digit — the pair `(1, *)`.
    pub fn right_any() -> Self {
        Step {
            shift: ShiftKind::Right,
            digit: Digit::Any,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = match self.shift {
            ShiftKind::Left => 0,
            ShiftKind::Right => 1,
        };
        match self.digit {
            Digit::Exact(b) => write!(f, "({a},{b})"),
            Digit::Any => write!(f, "({a},*)"),
        }
    }
}

/// A routing path: the sequence of `(a, b)` pairs a message carries.
///
/// Paths produced by the routing algorithms are *resolution independent*:
/// they reach the destination no matter which digits the forwarding nodes
/// substitute for the wildcards (the free digits are pushed out of the
/// register before arrival). [`RoutePath::leads_to`] verifies this
/// property symbolically.
///
/// # Examples
///
/// ```
/// use debruijn_core::{RoutePath, Step, Word};
///
/// let x = Word::parse(2, "000")?;
/// let path = RoutePath::new(vec![Step::left(1), Step::left(1)]);
/// assert_eq!(path.apply(&x).to_string(), "011");
/// assert_eq!(path.to_string(), "(0,1)(0,1)");
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RoutePath {
    steps: Vec<Step>,
}

impl RoutePath {
    /// Creates a path from explicit steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Self { steps }
    }

    /// The empty path (source equals destination).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Clears the path in place, keeping its allocation — the reuse hook
    /// for the `*_into` routing variants.
    pub fn clear(&mut self) {
        self.steps.clear();
    }

    /// Mutable access to the backing step vector, for in-place rebuilds.
    pub(crate) fn steps_vec_mut(&mut self) -> &mut Vec<Step> {
        &mut self.steps
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Iterates over the steps.
    pub fn iter(&self) -> std::slice::Iter<'_, Step> {
        self.steps.iter()
    }

    /// Number of wildcard (`*`) steps.
    pub fn wildcard_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.digit, Digit::Any))
            .count()
    }

    /// Applies the path to `from`, resolving each wildcard with
    /// `resolve(current word, shift kind)`.
    ///
    /// # Panics
    ///
    /// Panics if any digit (exact or resolved) is not below the radix of
    /// `from`.
    pub fn apply_with<F>(&self, from: &Word, mut resolve: F) -> Word
    where
        F: FnMut(&Word, ShiftKind) -> u8,
    {
        let mut w = from.clone();
        for step in &self.steps {
            let b = match step.digit {
                Digit::Exact(b) => b,
                Digit::Any => resolve(&w, step.shift),
            };
            w = match step.shift {
                ShiftKind::Left => w.shift_left(b),
                ShiftKind::Right => w.shift_right(b),
            };
        }
        w
    }

    /// Applies the path resolving every wildcard to digit `0`.
    ///
    /// # Panics
    ///
    /// Panics if any exact digit is not below the radix of `from`.
    pub fn apply(&self, from: &Word) -> Word {
        self.apply_with(from, |_, _| 0)
    }

    /// Whether this path provably leads from `x` to `y` under **every**
    /// wildcard resolution.
    ///
    /// The check is symbolic: wildcards are propagated as unknowns through
    /// the shift register; the path is accepted only if all unknowns are
    /// pushed out and the remaining digits equal `y` exactly.
    pub fn leads_to(&self, x: &Word, y: &Word) -> bool {
        if !x.same_space(y) {
            return false;
        }
        let k = x.len();
        let mut reg: Vec<Option<u8>> = x.digits().iter().map(|&b| Some(b)).collect();
        for step in &self.steps {
            let incoming = match step.digit {
                Digit::Exact(b) => {
                    if b >= x.radix() {
                        return false;
                    }
                    Some(b)
                }
                Digit::Any => None,
            };
            match step.shift {
                ShiftKind::Left => {
                    reg.remove(0);
                    reg.push(incoming);
                }
                ShiftKind::Right => {
                    reg.pop();
                    reg.insert(0, incoming);
                }
            }
        }
        debug_assert_eq!(reg.len(), k);
        reg.iter()
            .zip(y.digits())
            .all(|(slot, &want)| *slot == Some(want))
    }

    /// Reconstructs a routing path from an explicit walk of adjacent
    /// words `w₀, w₁, …, wₙ`, or `None` if some consecutive pair is not
    /// connected by a shift.
    ///
    /// When a hop is both a left and a right shift (the two-cycle pairs
    /// like `0101 ↔ 1010`), the left shift is chosen. Used to convert BFS
    /// walks (e.g. fault-avoiding reroutes) into the wire format.
    pub fn from_word_walk(walk: &[Word]) -> Option<Self> {
        let mut steps = Vec::with_capacity(walk.len().saturating_sub(1));
        for pair in walk.windows(2) {
            let (v, w) = (&pair[0], &pair[1]);
            if !v.same_space(w) {
                return None;
            }
            let b_left = *w.digits().last().expect("k >= 1");
            if &v.shift_left(b_left) == w {
                steps.push(Step::left(b_left));
                continue;
            }
            let b_right = w.digits()[0];
            if &v.shift_right(b_right) == w {
                steps.push(Step::right(b_right));
                continue;
            }
            return None;
        }
        Some(Self { steps })
    }

    /// Serializes the path as the paper's flat digit string
    /// `a₁ b₁ a₂ b₂ …`, encoding the wildcard as the (out-of-range) value
    /// `d`. This is the wire format carried in a message's routing-path
    /// field.
    pub fn encode(&self, d: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 * self.steps.len());
        for step in &self.steps {
            out.push(match step.shift {
                ShiftKind::Left => 0,
                ShiftKind::Right => 1,
            });
            out.push(match step.digit {
                Digit::Exact(b) => {
                    debug_assert!(b < d);
                    b
                }
                Digit::Any => d,
            });
        }
        out
    }

    /// Parses the wire format produced by [`RoutePath::encode`].
    ///
    /// # Errors
    ///
    /// Returns an error on odd length, a type digit other than 0/1, or a
    /// digit above `d` (the value `d` itself decodes to the wildcard).
    pub fn decode(d: u8, bytes: &[u8]) -> Result<Self, Error> {
        if !bytes.len().is_multiple_of(2) {
            return Err(Error::MalformedRoute {
                reason: "odd digit count",
            });
        }
        let mut steps = Vec::with_capacity(bytes.len() / 2);
        for pair in bytes.chunks_exact(2) {
            let shift = match pair[0] {
                0 => ShiftKind::Left,
                1 => ShiftKind::Right,
                _ => {
                    return Err(Error::MalformedRoute {
                        reason: "shift type not 0/1",
                    })
                }
            };
            let digit = match pair[1] {
                b if b < d => Digit::Exact(b),
                b if b == d => Digit::Any,
                _ => {
                    return Err(Error::MalformedRoute {
                        reason: "digit above radix",
                    })
                }
            };
            steps.push(Step { shift, digit });
        }
        Ok(Self { steps })
    }
}

impl FromIterator<Step> for RoutePath {
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Self {
        Self {
            steps: iter.into_iter().collect(),
        }
    }
}

impl Extend<Step> for RoutePath {
    fn extend<I: IntoIterator<Item = Step>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RoutePath {
    type Item = &'a Step;
    type IntoIter = std::slice::Iter<'a, Step>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

impl IntoIterator for RoutePath {
    type Item = Step;
    type IntoIter = std::vec::IntoIter<Step>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.into_iter()
    }
}

impl fmt::Display for RoutePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "(empty)");
        }
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        Word::parse(2, s).unwrap()
    }

    #[test]
    fn apply_follows_shift_semantics() {
        let x = w("0110");
        let p = RoutePath::new(vec![Step::left(1), Step::right(0), Step::right(1)]);
        // 0110 -L1-> 1101 -R0-> 0110 -R1-> 1011
        assert_eq!(p.apply(&x), w("1011"));
    }

    #[test]
    fn empty_path_is_identity() {
        let x = w("0101");
        assert!(RoutePath::empty().leads_to(&x, &x));
        assert_eq!(RoutePath::empty().apply(&x), x);
    }

    #[test]
    fn leads_to_accepts_resolution_independent_wildcards() {
        // Two left-any steps followed by two exact left steps: the
        // wildcards are pushed out before arrival in DG(2,2).
        let x = Word::parse(2, "01").unwrap();
        let y = Word::parse(2, "10").unwrap();
        let p = RoutePath::new(vec![
            Step::left_any(),
            Step::left_any(),
            Step::left(1),
            Step::left(0),
        ]);
        assert!(p.leads_to(&x, &y));
    }

    #[test]
    fn leads_to_rejects_surviving_wildcards() {
        let x = w("0000");
        // The final wildcard stays in the register: not a guaranteed route.
        let p = RoutePath::new(vec![Step::left_any()]);
        let target = p.apply(&x);
        assert!(!p.leads_to(&x, &target));
    }

    #[test]
    fn leads_to_rejects_wrong_destination() {
        let x = w("0110");
        let p = RoutePath::new(vec![Step::left(1)]);
        assert!(p.leads_to(&x, &w("1101")));
        assert!(!p.leads_to(&x, &w("1100")));
    }

    #[test]
    fn leads_to_rejects_cross_space_pairs() {
        let p = RoutePath::empty();
        assert!(!p.leads_to(&w("01"), &Word::parse(3, "01").unwrap()));
    }

    #[test]
    fn leads_to_rejects_out_of_radix_digits() {
        let x = w("01");
        let p = RoutePath::new(vec![Step::left(7)]);
        assert!(!p.leads_to(&x, &w("11")));
        assert!(!p.leads_to(&x, &w("10")));
    }

    #[test]
    fn apply_with_resolver_sees_current_word() {
        let x = w("0011");
        let mut seen = Vec::new();
        let p = RoutePath::new(vec![Step::left_any(), Step::left_any()]);
        p.apply_with(&x, |cur, _| {
            seen.push(cur.to_string());
            1
        });
        assert_eq!(seen, vec!["0011", "0111"]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = RoutePath::new(vec![
            Step::left(2),
            Step::right_any(),
            Step::right(0),
            Step::left_any(),
        ]);
        let bytes = p.encode(3);
        assert_eq!(bytes, vec![0, 2, 1, 3, 1, 0, 0, 3]);
        assert_eq!(RoutePath::decode(3, &bytes).unwrap(), p);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(RoutePath::decode(2, &[0]).is_err());
        assert!(RoutePath::decode(2, &[2, 0]).is_err());
        assert!(RoutePath::decode(2, &[0, 3]).is_err());
        assert!(RoutePath::decode(2, &[0, 2]).unwrap().steps()[0].digit == Digit::Any);
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = RoutePath::new(vec![Step::left(1), Step::right_any()]);
        assert_eq!(p.to_string(), "(0,1)(1,*)");
        assert_eq!(RoutePath::empty().to_string(), "(empty)");
    }

    #[test]
    fn collects_from_iterators() {
        let p: RoutePath = (0..3).map(|_| Step::left(0)).collect();
        assert_eq!(p.len(), 3);
        let mut q = RoutePath::empty();
        q.extend(p.clone());
        assert_eq!(q, p);
    }

    #[test]
    fn from_word_walk_reconstructs_shift_steps() {
        let a = w("0110");
        let b = a.shift_left(1); // 1101
        let c = b.shift_right(0); // 0110
        let walk = vec![a.clone(), b.clone(), c.clone()];
        let p = RoutePath::from_word_walk(&walk).expect("valid walk");
        assert_eq!(p.len(), 2);
        assert!(p.leads_to(&a, &c));
    }

    #[test]
    fn from_word_walk_rejects_non_adjacent_pairs() {
        let a = w("0000");
        let b = w("1111");
        assert_eq!(RoutePath::from_word_walk(&[a, b]), None);
    }

    #[test]
    fn from_word_walk_accepts_trivial_walks() {
        let a = w("0101");
        assert_eq!(RoutePath::from_word_walk(&[a]), Some(RoutePath::empty()));
        assert_eq!(RoutePath::from_word_walk(&[]), Some(RoutePath::empty()));
    }

    #[test]
    fn from_word_walk_prefers_left_on_ambiguous_hops() {
        // 0101 -> 1010 is both a left shift (insert 0) and a right shift
        // (insert 1).
        let a = w("0101");
        let b = w("1010");
        let p = RoutePath::from_word_walk(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(p.steps()[0], Step::left(0));
        assert!(p.leads_to(&a, &b));
    }

    #[test]
    fn wildcard_count_counts_only_any() {
        let p = RoutePath::new(vec![Step::left(0), Step::left_any(), Step::right_any()]);
        assert_eq!(p.wildcard_count(), 2);
    }
}
