//! Precomputed `O(1)` next-hop forwarding for enumerable spaces.
//!
//! The paper's algorithms answer "what is a shortest route from `X` to
//! `Y`?" in `O(k)`–`O(k²)` word time. A forwarding node in a running
//! network asks a smaller question — "which of my `≤ 2d` output ports
//! moves this message closer to `Y`?" — and for spaces small enough to
//! enumerate, that answer can be precomputed once: a [`NextHopTable`]
//! stores one compact `u8` port per `(node, destination)` pair, so the
//! simulator hot loop forwards with a single indexed load and `O(1)`
//! rank arithmetic ([`RankSpace`]) instead of re-running a routing
//! algorithm per hop.
//!
//! Correctness hinges on the greedy-step property behind the paper's
//! Algorithms 1/2/4: every first step of a shortest path reduces the
//! distance by exactly one, so repeatedly following any
//! distance-reducing port yields a path of exactly `D(X,Y)` hops
//! (Theorem 2 for the undirected network, Property 1 for the directed
//! one). The table pins the *smallest* such port, which makes it a pure
//! function of `(d, k, direction)` — independent of build order, thread
//! count, or which distance engine verified it.

use crate::space::{DeBruijn, RankSpace};
use crate::ShiftKind;

/// Port meaning "source equals destination: deliver locally".
pub const PORT_SELF: u8 = u8::MAX;

/// Default memory cap for [`NextHopTable::build`]: 64 MiB of ports
/// (`d^k ≤ 8192` nodes), past which callers fall back to the word-level
/// engines.
pub const DEFAULT_TABLE_MEMORY_CAP: usize = 1 << 26;

/// A dense `(node, destination) → output port` map for `DG(d,k)`.
///
/// Ports encode one shift operation in a `u8`: port `a < d` is the left
/// shift `X⁻(a)`; port `d + a` is the right shift `X⁺(a)` (undirected
/// tables only); [`PORT_SELF`] marks `node == destination`. Entries are
/// laid out destination-major (`ports[dst · n + src]`), so one
/// destination's column — what a convergecast or a per-destination
/// sweep touches — is contiguous.
///
/// # Examples
///
/// ```
/// use debruijn_core::routing::table::NextHopTable;
/// use debruijn_core::{distance, DeBruijn, Word};
///
/// let space = DeBruijn::new(2, 4)?;
/// let table = NextHopTable::build(space, false, 1, usize::MAX).expect("16 nodes fit");
/// let x = Word::parse(2, "0110")?;
/// let y = Word::parse(2, "1011")?;
/// // Walking the table takes exactly D(X,Y) hops (Theorem 2).
/// let (mut at, dst) = (x.rank() as u64, y.rank() as u64);
/// let mut hops = 0;
/// while at != dst {
///     at = table.apply(at, table.next_hop(at, dst));
///     hops += 1;
/// }
/// assert_eq!(hops, distance::undirected::distance(&x, &y));
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct NextHopTable {
    ranks: RankSpace,
    n: usize,
    d: u8,
    directed: bool,
    /// `ports[dst * n + src]`.
    ports: Vec<u8>,
}

impl NextHopTable {
    /// Builds the table for `space`, in parallel over destination
    /// columns (`threads` as in [`debruijn_parallel::map_range_with`]:
    /// `1` = inline, `0` = all cores). `directed` selects Property 1
    /// distances (left shifts only) over Theorem 2 (both shift types).
    ///
    /// Returns `None` — the caller's cue to fall back to the word-level
    /// engines — when the `d^k · d^k` port array would exceed
    /// `max_bytes` (see [`DEFAULT_TABLE_MEMORY_CAP`]), when the space
    /// is too large to enumerate, or when the `2d` ports do not fit the
    /// `u8` encoding.
    pub fn build(
        space: DeBruijn,
        directed: bool,
        threads: usize,
        max_bytes: usize,
    ) -> Option<Self> {
        let ranks = RankSpace::new(space)?;
        let n = usize::try_from(ranks.order()).ok()?;
        if usize::from(space.d()) * 2 >= usize::from(PORT_SELF) {
            return None;
        }
        let bytes = n.checked_mul(n)?;
        if bytes > max_bytes {
            return None;
        }

        // One reverse BFS per destination yields the distance of every
        // node to that destination; the column's ports follow locally.
        let columns = debruijn_parallel::map_range_with(
            threads,
            n,
            || ColumnScratch {
                dist: vec![u32::MAX; n],
                frontier: Vec::new(),
                next: Vec::new(),
            },
            |scratch, dst| build_column(ranks, directed, dst as u64, scratch),
        );

        let mut ports = Vec::with_capacity(bytes);
        for column in columns {
            ports.extend_from_slice(&column);
        }
        Some(Self {
            ranks,
            n,
            d: space.d(),
            directed,
            ports,
        })
    }

    /// The wrapped rank arithmetic.
    pub fn ranks(&self) -> RankSpace {
        self.ranks
    }

    /// Number of vertices `d^k`.
    pub fn order(&self) -> u64 {
        self.ranks.order()
    }

    /// Whether ports follow Property 1 (left shifts only).
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Bytes held by the port array.
    pub fn memory_bytes(&self) -> usize {
        self.ports.len()
    }

    /// The smallest distance-reducing output port at `src` toward
    /// `dst`, or [`PORT_SELF`] when `src == dst`.
    ///
    /// # Panics
    ///
    /// Debug-asserts both ranks are below `d^k`.
    #[inline]
    pub fn next_hop(&self, src: u64, dst: u64) -> u8 {
        debug_assert!(src < self.ranks.order() && dst < self.ranks.order());
        self.ports[dst as usize * self.n + src as usize]
    }

    /// The neighbor rank one `port` hop from `node`.
    ///
    /// # Panics
    ///
    /// Panics if `port` does not encode a shift of this table (e.g.
    /// [`PORT_SELF`], or a right shift on a directed table).
    #[inline]
    pub fn apply(&self, node: u64, port: u8) -> u64 {
        if port < self.d {
            self.ranks.shift_left(node, port)
        } else {
            assert!(!self.directed && port < 2 * self.d, "port {port} invalid");
            self.ranks.shift_right(node, port - self.d)
        }
    }

    /// Decodes a port into the shift it performs.
    ///
    /// # Panics
    ///
    /// Panics on [`PORT_SELF`] or an out-of-range port.
    pub fn decode_port(&self, port: u8) -> (ShiftKind, u8) {
        if port < self.d {
            (ShiftKind::Left, port)
        } else {
            assert!(!self.directed && port < 2 * self.d, "port {port} invalid");
            (ShiftKind::Right, port - self.d)
        }
    }

    /// The distance realized by walking the table from `src` to `dst` —
    /// exactly `D(src, dst)` of the configured network model.
    ///
    /// `O(k)` indexed loads; used where the distance is needed alongside
    /// the ports (e.g. observability) without invoking an engine.
    pub fn walk_distance(&self, src: u64, dst: u64) -> usize {
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            at = self.apply(at, self.next_hop(at, dst));
            hops += 1;
            debug_assert!(hops <= 2 * self.ranks.space().k(), "walk must terminate");
        }
        hops
    }
}

struct ColumnScratch {
    dist: Vec<u32>,
    frontier: Vec<u64>,
    next: Vec<u64>,
}

/// Distances to `dst` by reverse BFS, then the smallest improving port
/// per source. For the undirected graph the edge relation is symmetric,
/// so the "reverse" moves are the same `2d` shifts; for the directed
/// graph the predecessors of `j` under `X → X⁻(a)` are exactly its
/// right shifts `X⁺(b)`.
fn build_column(
    ranks: RankSpace,
    directed: bool,
    dst: u64,
    scratch: &mut ColumnScratch,
) -> Vec<u8> {
    let d = ranks.space().d();
    let n = usize::try_from(ranks.order()).expect("order checked by build");
    scratch.dist.fill(u32::MAX);
    scratch.frontier.clear();
    scratch.next.clear();

    scratch.dist[dst as usize] = 0;
    scratch.frontier.push(dst);
    let mut level: u32 = 0;
    while !scratch.frontier.is_empty() {
        level += 1;
        for &node in &scratch.frontier {
            for a in 0..d {
                let pred = ranks.shift_right(node, a);
                if scratch.dist[pred as usize] == u32::MAX {
                    scratch.dist[pred as usize] = level;
                    scratch.next.push(pred);
                }
                if !directed {
                    let pred = ranks.shift_left(node, a);
                    if scratch.dist[pred as usize] == u32::MAX {
                        scratch.dist[pred as usize] = level;
                        scratch.next.push(pred);
                    }
                }
            }
        }
        scratch.frontier.clear();
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }

    let ports_per_node = if directed { d } else { 2 * d };
    (0..n as u64)
        .map(|src| {
            if src == dst {
                return PORT_SELF;
            }
            let here = scratch.dist[src as usize];
            debug_assert_ne!(here, u32::MAX, "DG(d,k) is strongly connected");
            (0..ports_per_node)
                .find(|&p| {
                    let next = if p < d {
                        ranks.shift_left(src, p)
                    } else {
                        ranks.shift_right(src, p - d)
                    };
                    scratch.dist[next as usize] == here - 1
                })
                .expect("some port must reduce a positive distance")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance;
    use crate::word::Word;

    fn word(space: DeBruijn, rank: u64) -> Word {
        space.word_from_rank(u128::from(rank)).unwrap()
    }

    /// The satellite differential test: for d ∈ {2,3} and k ≤ 6, every
    /// (src, dst) port begins a path whose length equals the Theorem 2
    /// (undirected) or Property 1 (directed) distance computed by the
    /// existing word-level engines.
    #[test]
    fn table_walks_match_engine_distances() {
        for d in [2u8, 3] {
            // Bounded so the d = 3 sweep (n² pairs, one engine solve
            // each) stays fast in debug builds.
            let max_k = if d == 2 { 6 } else { 4 };
            for k in 1..=max_k {
                let space = DeBruijn::new(d, k).unwrap();
                for directed in [false, true] {
                    let table = NextHopTable::build(space, directed, 1, usize::MAX).unwrap();
                    let n = table.order();
                    for src in 0..n {
                        let x = word(space, src);
                        for dst in 0..n {
                            let y = word(space, dst);
                            let want = if directed {
                                distance::directed::distance(&x, &y)
                            } else {
                                distance::undirected::distance(&x, &y)
                            };
                            assert_eq!(
                                table.walk_distance(src, dst),
                                want,
                                "d={d} k={k} directed={directed} {x} -> {y}"
                            );
                            if src == dst {
                                assert_eq!(table.next_hop(src, dst), PORT_SELF);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn d3_k6_spot_checks_against_engines() {
        // The full d = 3, k ≤ 6 sweep is quadratic in n = 729; sample
        // pairs pseudo-randomly instead of enumerating all 531k.
        let space = DeBruijn::new(3, 6).unwrap();
        let undirected = NextHopTable::build(space, false, 0, usize::MAX).unwrap();
        let directed = NextHopTable::build(space, true, 0, usize::MAX).unwrap();
        let n = undirected.order();
        let mut rng = crate::rng::SplitMix64::new(0xD3_06);
        for _ in 0..2000 {
            let src = rng.below_usize(n as usize) as u64;
            let dst = rng.below_usize(n as usize) as u64;
            let x = word(space, src);
            let y = word(space, dst);
            assert_eq!(
                undirected.walk_distance(src, dst),
                distance::undirected::distance(&x, &y),
                "undirected {x} -> {y}"
            );
            assert_eq!(
                directed.walk_distance(src, dst),
                distance::directed::distance(&x, &y),
                "directed {x} -> {y}"
            );
        }
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let space = DeBruijn::new(2, 5).unwrap();
        for directed in [false, true] {
            let one = NextHopTable::build(space, directed, 1, usize::MAX).unwrap();
            for threads in [2, 4, 0] {
                let t = NextHopTable::build(space, directed, threads, usize::MAX).unwrap();
                assert_eq!(one.ports, t.ports, "threads={threads}");
            }
        }
    }

    #[test]
    fn memory_cap_refuses_oversized_tables() {
        let space = DeBruijn::new(2, 6).unwrap();
        assert!(NextHopTable::build(space, false, 1, 64 * 64 - 1).is_none());
        let table = NextHopTable::build(space, false, 1, 64 * 64).unwrap();
        assert_eq!(table.memory_bytes(), 64 * 64);
    }

    #[test]
    fn ports_prefer_the_smallest_improving_move() {
        // 000 → 001 in DG(2,3): the left shift X⁻(1) reaches it in one
        // hop, and port 1 is the smallest improving port.
        let space = DeBruijn::new(2, 3).unwrap();
        let table = NextHopTable::build(space, false, 1, usize::MAX).unwrap();
        let src = 0b000;
        let dst = 0b001;
        assert_eq!(table.next_hop(src, dst), 1);
        assert_eq!(table.decode_port(1), (ShiftKind::Left, 1));
    }
}
