//! Amortized routing: per-destination preprocessing and a bounded
//! route cache.
//!
//! Algorithm 1's only preprocessing is the Morris–Pratt failure function
//! of the destination address `Y`. In convergecast patterns (many sources
//! sending to one sink — the common case for gather operations on a
//! multiprocessor) that table can be built once and reused: routing each
//! additional source then costs a single `O(k)` automaton scan with no
//! allocation beyond the emitted path.
//!
//! [`RouteCache`] generalizes the amortization to arbitrary `(X, Y)`
//! pairs: a capacity-bounded map from pair to computed route with clock
//! (second-chance) eviction, so repeated traffic between the same
//! endpoints — ubiquitous in uniform-random workloads on small networks —
//! skips Theorem 2 entirely. Hit/miss/eviction counts are reported both
//! per instance ([`RouteCache::stats`]) and through the process-global
//! [`crate::profile`] counters the telemetry layer reads.

use std::collections::HashMap;

use debruijn_strings::MpMatcher;

use crate::distance::assert_same_space;
use crate::routing::{RoutePath, Step};
use crate::word::Word;

/// A reusable Algorithm 1 router toward one fixed destination in the
/// uni-directional network.
///
/// # Examples
///
/// ```
/// use debruijn_core::routing::DirectedDestinationRouter;
/// use debruijn_core::{routing, Word};
///
/// let sink = Word::parse(2, "1011")?;
/// let router = DirectedDestinationRouter::new(sink.clone());
/// let src = Word::parse(2, "0110")?;
/// assert_eq!(router.route_from(&src), routing::algorithm1(&src, &sink));
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DirectedDestinationRouter {
    destination: Word,
    matcher: MpMatcher<u8>,
}

impl DirectedDestinationRouter {
    /// Builds the router, preprocessing the destination in `O(k)`.
    pub fn new(destination: Word) -> Self {
        crate::profile::count_convergecast_build();
        let matcher = MpMatcher::new(destination.digits().to_vec());
        Self {
            destination,
            matcher,
        }
    }

    /// The fixed destination.
    pub fn destination(&self) -> &Word {
        &self.destination
    }

    /// The overlap `l` of Eq. (2) for a given source: the longest suffix
    /// of `x` that is a prefix of the destination.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the destination's `DG(d,k)`.
    pub fn overlap_from(&self, x: &Word) -> usize {
        assert_same_space(x, &self.destination);
        let mut state = 0usize;
        for digit in x.digits() {
            state = self.matcher.step(state, digit);
        }
        state
    }

    /// The distance from `x` to the destination (Property 1).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the destination's `DG(d,k)`.
    pub fn distance_from(&self, x: &Word) -> usize {
        self.destination.len() - self.overlap_from(x)
    }

    /// A shortest uni-directional route from `x` (Algorithm 1, with the
    /// destination's failure function amortized across calls).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the destination's `DG(d,k)`.
    pub fn route_from(&self, x: &Word) -> RoutePath {
        crate::profile::count_convergecast_route();
        let l = self.overlap_from(x);
        (l..self.destination.len())
            .map(|i| Step::left(self.destination.digits()[i]))
            .collect()
    }
}

/// Hit/miss/eviction counts for one [`RouteCache`] instance.
///
/// The same counts also feed the process-global
/// [`crate::profile`] counters (`route_cache_*`), which the simulator's
/// telemetry layer surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from a cached entry.
    pub hits: u64,
    /// Lookups that computed (and inserted) the route.
    pub misses: u64,
    /// Entries displaced by clock eviction at capacity.
    pub evictions: u64,
}

impl RouteCacheStats {
    /// Fraction of lookups served from the cache, or `None` without
    /// traffic.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            return None;
        }
        Some(self.hits as f64 / total as f64)
    }

    /// Folds another cache's counts into this one — the aggregation
    /// step for sharded (per-worker) cache deployments.
    pub fn merge(&mut self, other: &RouteCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// The counts accumulated since an earlier snapshot of the same
    /// cache — what a worker publishes to a metrics registry between
    /// batches without double counting.
    pub fn since(&self, earlier: &RouteCacheStats) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// The cache shard a destination hashes to, for a pool of `shards`
/// per-worker [`RouteCache`] rings.
///
/// Deterministic across processes and runs (the hasher is keyed with
/// constants), so repeated queries for one destination always land on
/// the same worker's ring — the property that makes per-worker caches
/// as effective as one shared cache without any shared lock. Sharding
/// by *destination only* (not the pair) keeps convergecast traffic —
/// many sources, one sink — on a single shard, where Algorithm 1's
/// per-destination preprocessing amortizes best.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn destination_shard(y: &Word, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    assert!(shards > 0, "shard count must be positive");
    let mut h = std::collections::hash_map::DefaultHasher::new();
    y.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

#[derive(Debug, Clone)]
struct CacheSlot {
    key: (Word, Word),
    route: RoutePath,
    referenced: bool,
}

/// A capacity-bounded `(source, destination) → route` cache with clock
/// (second-chance) eviction.
///
/// Unbounded memoization is a footgun on large networks (`dⁿ` pairs);
/// this cache holds at most `capacity` routes. Each hit sets the entry's
/// reference bit; at capacity the clock hand sweeps the slots, clearing
/// reference bits until it finds an unreferenced victim — recently used
/// routes survive, cold ones are displaced in `O(1)` amortized time.
///
/// A `capacity` of `0` disables caching: every lookup computes and
/// nothing is stored (counted as misses, so the telemetry still shows
/// the traffic).
///
/// # Examples
///
/// ```
/// use debruijn_core::routing::{self, RouteCache};
/// use debruijn_core::Word;
///
/// let mut cache = RouteCache::new(64);
/// let x = Word::parse(2, "0110")?;
/// let y = Word::parse(2, "1011")?;
/// let first = cache.get_or_compute(&x, &y, routing::route_bidirectional);
/// let second = cache.get_or_compute(&x, &y, routing::route_bidirectional);
/// assert_eq!(first, second);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteCache {
    capacity: usize,
    // Pair-hash → slot index. Lookups hash the borrowed words (no clone);
    // the full key stored in the slot disambiguates hash collisions.
    map: HashMap<u64, usize>,
    slots: Vec<CacheSlot>,
    hand: usize,
    stats: RouteCacheStats,
}

fn pair_hash(x: &Word, y: &Word) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    x.hash(&mut h);
    y.hash(&mut h);
    h.finish()
}

impl RouteCache {
    /// Creates a cache holding at most `capacity` routes (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            stats: RouteCacheStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of routes currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no routes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// This instance's hit/miss/eviction counters.
    pub fn stats(&self) -> RouteCacheStats {
        self.stats
    }

    /// Whether `(x, y)` is currently cached — a pure probe that touches
    /// neither the hit/miss statistics nor the clock reference bit.
    ///
    /// Batched drains use this to pre-classify likely hits before
    /// computing the misses destination-grouped; the authoritative,
    /// stat-mutating lookup still happens in [`Self::get_or_compute`], in
    /// original arrival order, so the counters and eviction sequence
    /// evolve exactly as in per-query evaluation.
    pub fn peek(&self, x: &Word, y: &Word) -> bool {
        if self.capacity == 0 {
            return false;
        }
        match self.map.get(&pair_hash(x, y)) {
            Some(&slot) => {
                let s = &self.slots[slot];
                s.key.0 == *x && s.key.1 == *y
            }
            None => false,
        }
    }

    /// Returns the cached route for `(x, y)`, computing and inserting it
    /// via `compute` on a miss.
    ///
    /// The route is returned by clone; for shortest-path routes the clone
    /// is one `Vec` copy, far cheaper than a Theorem-2 solve.
    pub fn get_or_compute(
        &mut self,
        x: &Word,
        y: &Word,
        compute: impl FnOnce(&Word, &Word) -> RoutePath,
    ) -> RoutePath {
        if self.capacity == 0 {
            self.stats.misses += 1;
            crate::profile::count_route_cache_miss();
            return compute(x, y);
        }
        let h = pair_hash(x, y);
        if let Some(&slot) = self.map.get(&h) {
            let s = &mut self.slots[slot];
            if &s.key.0 == x && &s.key.1 == y {
                self.stats.hits += 1;
                crate::profile::count_route_cache_hit();
                s.referenced = true;
                return s.route.clone();
            }
        }
        self.stats.misses += 1;
        crate::profile::count_route_cache_miss();
        let route = compute(x, y);
        let fresh = CacheSlot {
            key: (x.clone(), y.clone()),
            route: route.clone(),
            referenced: false,
        };
        if self.slots.len() < self.capacity {
            let slot = self.slots.len();
            self.slots.push(fresh);
            self.map.insert(h, slot);
        } else {
            // Clock sweep: give referenced entries a second chance.
            while self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand = (self.hand + 1) % self.slots.len();
            }
            let victim = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            self.stats.evictions += 1;
            crate::profile::count_route_cache_eviction();
            let old = std::mem::replace(&mut self.slots[victim], fresh);
            let old_hash = pair_hash(&old.key.0, &old.key.1);
            // Only unlink the old mapping if it still points at the
            // victim (a hash collision may have overwritten it already).
            if self.map.get(&old_hash) == Some(&victim) {
                self.map.remove(&old_hash);
            }
            self.map.insert(h, victim);
        }
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::directed;
    use crate::routing::algorithm1;
    use crate::space::DeBruijn;

    #[test]
    fn matches_algorithm1_exhaustively() {
        for (d, k) in [(2u8, 5usize), (3, 3)] {
            let g = DeBruijn::new(d, k).unwrap();
            for y in g.vertices() {
                let router = DirectedDestinationRouter::new(y.clone());
                for x in g.vertices() {
                    assert_eq!(router.route_from(&x), algorithm1(&x, &y), "{x}->{y}");
                    assert_eq!(
                        router.distance_from(&x),
                        directed::distance(&x, &y),
                        "{x}->{y}"
                    );
                }
            }
        }
    }

    #[test]
    fn self_route_is_empty() {
        let y = Word::parse(2, "0101").unwrap();
        let router = DirectedDestinationRouter::new(y.clone());
        assert!(router.route_from(&y).is_empty());
        assert_eq!(router.distance_from(&y), 0);
    }

    #[test]
    fn router_is_reusable_across_many_sources() {
        let y = Word::parse(3, "0210").unwrap();
        let router = DirectedDestinationRouter::new(y.clone());
        let g = DeBruijn::new(3, 4).unwrap();
        for x in g.vertices() {
            let p = router.route_from(&x);
            assert!(p.leads_to(&x, &y));
        }
    }

    #[test]
    #[should_panic(expected = "share radix and length")]
    fn rejects_foreign_sources() {
        let router = DirectedDestinationRouter::new(Word::parse(2, "0101").unwrap());
        router.route_from(&Word::parse(2, "01").unwrap());
    }

    #[test]
    fn route_cache_returns_correct_routes_under_eviction_pressure() {
        use crate::routing::route_bidirectional;
        let g = DeBruijn::new(2, 4).unwrap();
        let verts: Vec<Word> = g.vertices().collect();
        // Capacity far below the 256 pairs forces constant eviction.
        let mut cache = RouteCache::new(8);
        for _ in 0..3 {
            for x in &verts {
                for y in &verts {
                    let got = cache.get_or_compute(x, y, route_bidirectional);
                    assert_eq!(got, route_bidirectional(x, y), "{x}->{y}");
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 3 * 16 * 16);
        assert!(stats.evictions > 0, "capacity 8 must evict");
        assert!(cache.len() <= 8);
    }

    #[test]
    fn route_cache_capacity_bounds_are_respected() {
        use crate::routing::trivial_route;
        let mut cache = RouteCache::new(4);
        for rank in 0..32u128 {
            let x = Word::from_rank(2, 5, rank).unwrap();
            let y = Word::from_rank(2, 5, 31 - rank).unwrap();
            cache.get_or_compute(&x, &y, |_, y| trivial_route(y));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.capacity(), 4);
        let stats = cache.stats();
        assert_eq!(stats.misses, 32);
        assert_eq!(stats.evictions, 28);
    }

    #[test]
    fn route_cache_hits_repeat_traffic() {
        use crate::routing::route_bidirectional;
        let mut cache = RouteCache::new(16);
        let x = Word::parse(2, "0110").unwrap();
        let y = Word::parse(2, "1011").unwrap();
        for _ in 0..10 {
            cache.get_or_compute(&x, &y, route_bidirectional);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 9);
        assert_eq!(stats.misses, 1);
        assert!(stats.hit_rate().unwrap() > 0.85);
    }

    #[test]
    fn zero_capacity_disables_caching_but_counts_traffic() {
        use crate::routing::route_bidirectional;
        let mut cache = RouteCache::new(0);
        let x = Word::parse(2, "0110").unwrap();
        let y = Word::parse(2, "1011").unwrap();
        for _ in 0..3 {
            let got = cache.get_or_compute(&x, &y, route_bidirectional);
            assert_eq!(got, route_bidirectional(&x, &y));
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn destination_shard_is_deterministic_and_in_range() {
        let g = DeBruijn::new(2, 6).unwrap();
        for shards in [1usize, 2, 3, 8] {
            for y in g.vertices() {
                let s = destination_shard(&y, shards);
                assert!(s < shards, "{y} -> {s} out of range for {shards}");
                assert_eq!(s, destination_shard(&y, shards), "unstable for {y}");
            }
        }
        // One shard takes everything.
        assert_eq!(destination_shard(&Word::parse(2, "0110").unwrap(), 1), 0);
        // The hash actually spreads: 64 destinations over 4 shards
        // must not collapse onto a single one.
        let mut seen = [false; 4];
        for y in g.vertices() {
            seen[destination_shard(&y, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 shards receive traffic");
    }

    #[test]
    fn stats_merge_and_since_compose() {
        let a = RouteCacheStats {
            hits: 10,
            misses: 4,
            evictions: 1,
        };
        let b = RouteCacheStats {
            hits: 5,
            misses: 6,
            evictions: 0,
        };
        let mut total = a;
        total.merge(&b);
        assert_eq!(
            total,
            RouteCacheStats {
                hits: 15,
                misses: 10,
                evictions: 1
            }
        );
        assert_eq!(total.since(&a), b);
        assert_eq!(total.since(&total), RouteCacheStats::default());
    }

    #[test]
    fn clock_eviction_keeps_hot_entries() {
        use crate::routing::trivial_route;
        let mut cache = RouteCache::new(2);
        let hot_x = Word::from_rank(2, 5, 0).unwrap();
        let hot_y = Word::from_rank(2, 5, 1).unwrap();
        cache.get_or_compute(&hot_x, &hot_y, |_, y| trivial_route(y));
        for rank in 2..10u128 {
            // Re-touch the hot pair so its reference bit survives the
            // clock sweeps driven by the cold singleton inserts.
            cache.get_or_compute(&hot_x, &hot_y, |_, y| trivial_route(y));
            let x = Word::from_rank(2, 5, rank).unwrap();
            cache.get_or_compute(&x, &hot_y, |_, y| trivial_route(y));
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 8, "hot pair stays resident");
    }
}
