//! Amortized routing toward a fixed destination.
//!
//! Algorithm 1's only preprocessing is the Morris–Pratt failure function
//! of the destination address `Y`. In convergecast patterns (many sources
//! sending to one sink — the common case for gather operations on a
//! multiprocessor) that table can be built once and reused: routing each
//! additional source then costs a single `O(k)` automaton scan with no
//! allocation beyond the emitted path.

use debruijn_strings::MpMatcher;

use crate::distance::assert_same_space;
use crate::routing::{RoutePath, Step};
use crate::word::Word;

/// A reusable Algorithm 1 router toward one fixed destination in the
/// uni-directional network.
///
/// # Examples
///
/// ```
/// use debruijn_core::routing::DirectedDestinationRouter;
/// use debruijn_core::{routing, Word};
///
/// let sink = Word::parse(2, "1011")?;
/// let router = DirectedDestinationRouter::new(sink.clone());
/// let src = Word::parse(2, "0110")?;
/// assert_eq!(router.route_from(&src), routing::algorithm1(&src, &sink));
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DirectedDestinationRouter {
    destination: Word,
    matcher: MpMatcher<u8>,
}

impl DirectedDestinationRouter {
    /// Builds the router, preprocessing the destination in `O(k)`.
    pub fn new(destination: Word) -> Self {
        crate::profile::count_convergecast_build();
        let matcher = MpMatcher::new(destination.digits().to_vec());
        Self {
            destination,
            matcher,
        }
    }

    /// The fixed destination.
    pub fn destination(&self) -> &Word {
        &self.destination
    }

    /// The overlap `l` of Eq. (2) for a given source: the longest suffix
    /// of `x` that is a prefix of the destination.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the destination's `DG(d,k)`.
    pub fn overlap_from(&self, x: &Word) -> usize {
        assert_same_space(x, &self.destination);
        let mut state = 0usize;
        for digit in x.digits() {
            state = self.matcher.step(state, digit);
        }
        state
    }

    /// The distance from `x` to the destination (Property 1).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the destination's `DG(d,k)`.
    pub fn distance_from(&self, x: &Word) -> usize {
        self.destination.len() - self.overlap_from(x)
    }

    /// A shortest uni-directional route from `x` (Algorithm 1, with the
    /// destination's failure function amortized across calls).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the destination's `DG(d,k)`.
    pub fn route_from(&self, x: &Word) -> RoutePath {
        crate::profile::count_convergecast_route();
        let l = self.overlap_from(x);
        (l..self.destination.len())
            .map(|i| Step::left(self.destination.digits()[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::directed;
    use crate::routing::algorithm1;
    use crate::space::DeBruijn;

    #[test]
    fn matches_algorithm1_exhaustively() {
        for (d, k) in [(2u8, 5usize), (3, 3)] {
            let g = DeBruijn::new(d, k).unwrap();
            for y in g.vertices() {
                let router = DirectedDestinationRouter::new(y.clone());
                for x in g.vertices() {
                    assert_eq!(router.route_from(&x), algorithm1(&x, &y), "{x}->{y}");
                    assert_eq!(
                        router.distance_from(&x),
                        directed::distance(&x, &y),
                        "{x}->{y}"
                    );
                }
            }
        }
    }

    #[test]
    fn self_route_is_empty() {
        let y = Word::parse(2, "0101").unwrap();
        let router = DirectedDestinationRouter::new(y.clone());
        assert!(router.route_from(&y).is_empty());
        assert_eq!(router.distance_from(&y), 0);
    }

    #[test]
    fn router_is_reusable_across_many_sources() {
        let y = Word::parse(3, "0210").unwrap();
        let router = DirectedDestinationRouter::new(y.clone());
        let g = DeBruijn::new(3, 4).unwrap();
        for x in g.vertices() {
            let p = router.route_from(&x);
            assert!(p.leads_to(&x, &y));
        }
    }

    #[test]
    #[should_panic(expected = "share radix and length")]
    fn rejects_foreign_sources() {
        let router = DirectedDestinationRouter::new(Word::parse(2, "0101").unwrap());
        router.route_from(&Word::parse(2, "01").unwrap());
    }
}
