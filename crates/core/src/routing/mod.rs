//! The paper's optimal routing algorithms.
//!
//! | function | network | engine | time |
//! |---|---|---|---|
//! | [`algorithm1`] | uni-directional | failure function | `O(k)` |
//! | [`algorithm2`] | bi-directional | Algorithm 3 (MP) | `O(k²)` |
//! | [`algorithm4`] | bi-directional | suffix trees | `O(k)` |
//! | [`trivial_route`] | either | — | always `k` hops |
//!
//! All of them return a [`RoutePath`] whose length equals the exact graph
//! distance and which provably reaches the destination under any wildcard
//! resolution ([`RoutePath::leads_to`]).

mod cached;
pub mod compressed;
mod multipath;
mod path;
pub mod table;

pub use cached::{destination_shard, DirectedDestinationRouter, RouteCache, RouteCacheStats};
pub use compressed::{CompressedNextHop, CompressedScratch};
pub use multipath::all_shortest_routes;
pub use path::{Digit, RoutePath, ShiftKind, Step};
pub use table::NextHopTable;

use crate::distance::assert_same_space;
use crate::distance::undirected::{self, Engine, Solution};
use crate::word::Word;

/// Reusable buffers for the allocation-free `*_into` routing variants.
///
/// One scratch per thread (or per batch worker) keeps the routers free of
/// per-call `Vec` churn: [`algorithm1_into`] reuses the failure-function
/// table, and every `*_into` variant rebuilds the caller's [`RoutePath`]
/// in place instead of allocating a fresh step vector. (The bit-parallel
/// distance engine keeps its own thread-local packed-lane scratch, so
/// [`route_with_engine_into`] is allocation-free end to end after
/// warm-up.)
#[derive(Debug, Default, Clone)]
pub struct RoutingScratch {
    fail: Vec<usize>,
}

impl RoutingScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The paper's Algorithm 1: a shortest route in the **uni-directional**
/// network `DN(d,k)`.
///
/// Computes the overlap `l` of Eq. (2) with the failure function and emits
/// the left-shift steps `y_{l+1}, …, y_k`. `O(k)` time and space; the
/// result length equals [`directed::distance`](crate::distance::directed::distance).
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
///
/// # Examples
///
/// ```
/// use debruijn_core::{routing, Word};
///
/// let x = Word::parse(2, "0110")?;
/// let y = Word::parse(2, "1001")?;
/// let route = routing::algorithm1(&x, &y);
/// assert_eq!(route.to_string(), "(0,0)(0,1)");
/// assert!(route.leads_to(&x, &y));
/// # Ok::<(), debruijn_core::Error>(())
/// ```
pub fn algorithm1(x: &Word, y: &Word) -> RoutePath {
    let mut out = RoutePath::empty();
    algorithm1_into(x, y, &mut RoutingScratch::new(), &mut out);
    out
}

/// Allocation-free variant of [`algorithm1`]: rebuilds `out` in place,
/// reusing the scratch's failure-function buffer.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn algorithm1_into(x: &Word, y: &Word, scratch: &mut RoutingScratch, out: &mut RoutePath) {
    assert_same_space(x, y);
    out.clear();
    if x == y {
        return;
    }
    let l =
        debruijn_strings::failure::overlap_with_scratch(x.digits(), y.digits(), &mut scratch.fail);
    out.steps_vec_mut()
        .extend((l..y.len()).map(|i| Step::left(y.digits()[i])));
}

/// The always-valid `k`-hop route: left-shift in all `k` digits of the
/// destination (the path used in the paper's diameter argument and in
/// Algorithm 2's `D₁ = D₂ = k` case).
///
/// Works from **any** source in `DG(d,k)`; it is the baseline the optimal
/// algorithms are compared against in the benchmarks.
pub fn trivial_route(y: &Word) -> RoutePath {
    let mut out = RoutePath::empty();
    trivial_route_into(y, &mut out);
    out
}

/// Allocation-free variant of [`trivial_route`]: rebuilds `out` in place.
pub fn trivial_route_into(y: &Word, out: &mut RoutePath) {
    out.clear();
    out.steps_vec_mut()
        .extend(y.digits().iter().map(|&b| Step::left(b)));
}

/// The paper's Algorithm 2: a shortest route in the **bi-directional**
/// network, using the Morris–Pratt matching-function engine (`O(k²)` time,
/// `O(k)` space).
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn algorithm2(x: &Word, y: &Word) -> RoutePath {
    route_with_engine(x, y, Engine::MorrisPratt)
}

/// The paper's Algorithm 4: a shortest route in the **bi-directional**
/// network, using compact prefix/suffix trees (`O(k)` time and space).
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn algorithm4(x: &Word, y: &Word) -> RoutePath {
    route_with_engine(x, y, Engine::SuffixTree)
}

/// Shortest bi-directional route with automatic engine selection
/// (see [`Engine::Auto`]).
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn route_bidirectional(x: &Word, y: &Word) -> RoutePath {
    route_with_engine(x, y, Engine::Auto)
}

/// Shortest bi-directional route with an explicit engine.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn route_with_engine(x: &Word, y: &Word, engine: Engine) -> RoutePath {
    let mut out = RoutePath::empty();
    route_with_engine_into(x, y, engine, &mut out);
    out
}

/// Allocation-free variant of [`route_with_engine`]: rebuilds `out` in
/// place. With [`Engine::BitParallel`] (or [`Engine::Auto`] below the
/// crossover) no allocation happens after warm-up.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn route_with_engine_into(x: &Word, y: &Word, engine: Engine, out: &mut RoutePath) {
    assert_same_space(x, y);
    out.clear();
    if x == y {
        return;
    }
    let sol = undirected::solve(x, y, engine);
    route_from_solution_into(y, &sol, out);
}

/// Builds the route of Algorithm 2 lines 5–9 from a Theorem 2 solution.
///
/// Exposed so callers that already hold a [`Solution`] (e.g. when both the
/// distance and the route are needed) can avoid recomputing it.
///
/// The construction (proof of Theorem 2):
///
/// * **`D₁ ≤ D₂` (L case):** `X` contains the block `y_{t−θ+1}…y_t` at
///   position `s`. Do `s−1` free left shifts to park the block at the
///   register head, then `k−θ` right shifts feeding `y_{t−θ}, …, y_1` and
///   `k−t` free digits, then `k−t` left shifts feeding `y_{t+1}, …, y_k`.
/// * **`D₂ < D₁` (R case):** symmetric, starting with `k−s` free right
///   shifts.
/// * **`D₁ = D₂ = k`:** the trivial left-shift route.
pub fn route_from_solution(y: &Word, sol: &Solution) -> RoutePath {
    let mut out = RoutePath::empty();
    route_from_solution_into(y, sol, &mut out);
    out
}

/// Allocation-free variant of [`route_from_solution`]: rebuilds `out` in
/// place (see [`route_from_solution`] for the construction).
pub fn route_from_solution_into(y: &Word, sol: &Solution, out: &mut RoutePath) {
    let k = sol.k;
    debug_assert_eq!(y.len(), k);
    let d1 = sol.left_family;
    let d2 = sol.right_family;
    // Theorem 2 guarantees min(D₁, D₂) <= k; callers may pass a sentinel
    // above k on the *other* family to force one branch (multipath).
    debug_assert!(d1.steps.min(d2.steps) <= k);
    let yd = y.digits();

    // Line 5–6: both families degenerate to the trivial route.
    if d1.steps == k && d2.steps == k {
        trivial_route_into(y, out);
        return;
    }

    out.clear();
    let steps = out.steps_vec_mut();
    if d1.steps <= d2.steps {
        // Line 8 — L case with (s, t, θ) = (s₁, t₁, θ₁).
        let (s, t, theta) = (d1.s, d1.t, d1.theta);
        steps.extend((0..s - 1).map(|_| Step::left_any()));
        steps.extend((1..=t - theta).rev().map(|i| Step::right(yd[i - 1])));
        steps.extend((0..k - t).map(|_| Step::right_any()));
        steps.extend((t + 1..=k).map(|i| Step::left(yd[i - 1])));
        debug_assert_eq!(steps.len(), d1.steps);
    } else {
        // Line 9 — R case with (s, t, θ) = (s₂, t₂, θ₂).
        let (s, t, theta) = (d2.s, d2.t, d2.theta);
        steps.extend((0..k - s).map(|_| Step::right_any()));
        steps.extend((t + theta..=k).map(|i| Step::left(yd[i - 1])));
        steps.extend((0..t - 1).map(|_| Step::left_any()));
        steps.extend((1..=t - 1).rev().map(|i| Step::right(yd[i - 1])));
        debug_assert_eq!(steps.len(), d2.steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::directed;
    use crate::distance::undirected::Engine;
    use crate::space::DeBruijn;

    fn spaces() -> Vec<DeBruijn> {
        vec![
            DeBruijn::new(2, 1).unwrap(),
            DeBruijn::new(2, 2).unwrap(),
            DeBruijn::new(2, 3).unwrap(),
            DeBruijn::new(2, 4).unwrap(),
            DeBruijn::new(2, 5).unwrap(),
            DeBruijn::new(3, 2).unwrap(),
            DeBruijn::new(3, 3).unwrap(),
            DeBruijn::new(4, 2).unwrap(),
        ]
    }

    #[test]
    fn algorithm1_routes_are_shortest_and_valid() {
        for g in spaces() {
            for x in g.vertices() {
                for y in g.vertices() {
                    let p = algorithm1(&x, &y);
                    assert_eq!(
                        p.len(),
                        directed::distance(&x, &y),
                        "length mismatch {x} -> {y}"
                    );
                    assert!(p.leads_to(&x, &y), "invalid route {x} -> {y}: {p}");
                    assert!(
                        p.iter().all(|s| s.shift == ShiftKind::Left),
                        "uni-directional route used a right shift"
                    );
                }
            }
        }
    }

    #[test]
    fn algorithm2_routes_are_shortest_and_valid() {
        for g in spaces() {
            for x in g.vertices() {
                for y in g.vertices() {
                    let p = algorithm2(&x, &y);
                    assert_eq!(
                        p.len(),
                        undirected::distance_with(Engine::Naive, &x, &y),
                        "length mismatch {x} -> {y}"
                    );
                    assert!(p.leads_to(&x, &y), "invalid route {x} -> {y}: {p}");
                }
            }
        }
    }

    #[test]
    fn algorithm4_routes_are_shortest_and_valid() {
        for g in spaces() {
            for x in g.vertices() {
                for y in g.vertices() {
                    let p = algorithm4(&x, &y);
                    assert_eq!(
                        p.len(),
                        undirected::distance_with(Engine::Naive, &x, &y),
                        "length mismatch {x} -> {y}"
                    );
                    assert!(p.leads_to(&x, &y), "invalid route {x} -> {y}: {p}");
                }
            }
        }
    }

    #[test]
    fn trivial_route_always_reaches_in_k_hops() {
        let g = DeBruijn::new(3, 3).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let p = trivial_route(&y);
                assert_eq!(p.len(), 3);
                assert!(p.leads_to(&x, &y), "{x} -> {y}");
            }
        }
    }

    #[test]
    fn routes_between_equal_words_are_empty() {
        let x = Word::parse(2, "0101").unwrap();
        assert!(algorithm1(&x, &x).is_empty());
        assert!(algorithm2(&x, &x).is_empty());
        assert!(algorithm4(&x, &x).is_empty());
    }

    #[test]
    fn wildcards_never_harm_validity_under_adversarial_resolution() {
        // Resolve every wildcard with the worst-case digit (d-1, then
        // alternating) and confirm arrival regardless.
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let p = algorithm2(&x, &y);
                let via_zero = p.apply(&x);
                let via_one = p.apply_with(&x, |_, _| 1);
                let mut flip = false;
                let via_alt = p.apply_with(&x, |_, _| {
                    flip = !flip;
                    u8::from(flip)
                });
                assert_eq!(via_zero, y);
                assert_eq!(via_one, y);
                assert_eq!(via_alt, y);
            }
        }
    }

    #[test]
    fn bidirectional_routes_beat_or_match_directed_routes() {
        let g = DeBruijn::new(2, 5).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                assert!(algorithm2(&x, &y).len() <= algorithm1(&x, &y).len());
            }
        }
    }

    #[test]
    fn route_bidirectional_auto_matches_explicit_engines() {
        let g = DeBruijn::new(3, 3).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let auto = route_bidirectional(&x, &y);
                assert_eq!(auto.len(), algorithm2(&x, &y).len());
                assert!(auto.leads_to(&x, &y));
            }
        }
    }

    #[test]
    fn paper_example_diameter_pair_uses_trivial_route() {
        // D(0…0, 1…1) = k: Algorithm 2 line 6 applies.
        let x = Word::parse(2, "0000").unwrap();
        let y = Word::parse(2, "1111").unwrap();
        let p = algorithm2(&x, &y);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|s| s.shift == ShiftKind::Left));
        assert!(p.leads_to(&x, &y));
    }
}
