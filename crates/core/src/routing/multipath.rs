//! Enumerating *all* shortest routes between a pair.
//!
//! Theorem 2's minimum is usually attained by several `(s, t, θ)`
//! minimizers, each yielding a different shortest route (on top of the
//! per-route freedom the wildcards already give). Enumerating them powers
//! multipath routing: spreading a flow across distinct shortest routes
//! balances links beyond what wildcard resolution alone can do, and gives
//! disjoint-ish alternatives for fault masking.

use std::collections::HashSet;

use debruijn_strings::matching::{l_table, r_table};

use crate::distance::assert_same_space;
use crate::distance::undirected::{FamilyMinimum, Solution};
use crate::routing::{route_from_solution, trivial_route, RoutePath};
use crate::word::Word;

/// All distinct shortest routes from `x` to `y` in the bi-directional
/// network, one per Theorem 2 minimizer (plus the trivial route when the
/// distance equals `k`).
///
/// Routes are syntactically distinct `(a,b)`-sequences; wildcard steps
/// are not expanded. The result is never empty and always contains the
/// route Algorithm 2 would emit. Runs in `O(k²)` time; up to `O(k²)`
/// routes can exist for diameter-distance pairs.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
///
/// # Examples
///
/// ```
/// use debruijn_core::routing::{all_shortest_routes, algorithm2};
/// use debruijn_core::Word;
///
/// let x = Word::parse(2, "0110")?;
/// let y = Word::parse(2, "1001")?;
/// let routes = all_shortest_routes(&x, &y);
/// assert!(routes.contains(&algorithm2(&x, &y)));
/// for r in &routes {
///     assert!(r.leads_to(&x, &y));
/// }
/// # Ok::<(), debruijn_core::Error>(())
/// ```
pub fn all_shortest_routes(x: &Word, y: &Word) -> Vec<RoutePath> {
    assert_same_space(x, y);
    if x == y {
        return vec![RoutePath::empty()];
    }
    let k = x.len();
    let l = l_table(x.digits(), y.digits());
    let r = r_table(x.digits(), y.digits());

    // Route lengths of each family at each (s, t), 1-indexed coordinates.
    let d1_at =
        |s: usize, t: usize| 2 * k as i64 - 1 + s as i64 - t as i64 - l[s - 1][t - 1] as i64;
    let d2_at =
        |s: usize, t: usize| 2 * k as i64 - 1 - (s as i64) + t as i64 - r[s - 1][t - 1] as i64;

    let mut best = k as i64; // the trivial route is always available
    for s in 1..=k {
        for t in 1..=k {
            best = best.min(d1_at(s, t)).min(d2_at(s, t));
        }
    }

    let mut seen: HashSet<RoutePath> = HashSet::new();
    let mut routes = Vec::new();
    let mut push = |route: RoutePath, routes: &mut Vec<RoutePath>| {
        debug_assert_eq!(route.len() as i64, best);
        if seen.insert(route.clone()) {
            routes.push(route);
        }
    };

    for s in 1..=k {
        for t in 1..=k {
            if d1_at(s, t) == best {
                let sol = Solution {
                    k,
                    left_family: FamilyMinimum {
                        steps: best as usize,
                        s,
                        t,
                        theta: l[s - 1][t - 1],
                    },
                    // Force the L branch by making the R side worse.
                    right_family: FamilyMinimum {
                        steps: k + 1,
                        s: 1,
                        t: 1,
                        theta: 0,
                    },
                };
                push(build_capped(y, &sol), &mut routes);
            }
            if d2_at(s, t) == best {
                let sol = Solution {
                    k,
                    left_family: FamilyMinimum {
                        steps: k + 1,
                        s: 1,
                        t: 1,
                        theta: 0,
                    },
                    right_family: FamilyMinimum {
                        steps: best as usize,
                        s,
                        t,
                        theta: r[s - 1][t - 1],
                    },
                };
                push(build_capped(y, &sol), &mut routes);
            }
        }
    }
    if best == k as i64 {
        let t = trivial_route(y);
        if seen.insert(t.clone()) {
            routes.push(t);
        }
    }
    debug_assert!(!routes.is_empty());
    routes
}

/// `route_from_solution` requires both family step counts `<= k` (its
/// debug invariant); the sentinel "worse" family here uses `k + 1`, so we
/// bypass the trivial-route fast path deliberately and call the branch
/// construction directly.
fn build_capped(y: &Word, sol: &Solution) -> RoutePath {
    route_from_solution(y, sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::undirected;
    use crate::routing::algorithm2;
    use crate::space::DeBruijn;

    #[test]
    fn every_route_is_shortest_and_valid() {
        for (d, k) in [(2u8, 3usize), (2, 4), (3, 2), (3, 3)] {
            let g = DeBruijn::new(d, k).unwrap();
            for x in g.vertices() {
                for y in g.vertices() {
                    let dist = undirected::distance(&x, &y);
                    let routes = all_shortest_routes(&x, &y);
                    assert!(!routes.is_empty());
                    for route in &routes {
                        assert_eq!(route.len(), dist, "{x}->{y}: {route}");
                        assert!(route.leads_to(&x, &y), "{x}->{y}: {route}");
                    }
                }
            }
        }
    }

    #[test]
    fn contains_the_algorithm2_route() {
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let routes = all_shortest_routes(&x, &y);
                assert!(routes.contains(&algorithm2(&x, &y)), "{x}->{y}: {routes:?}");
            }
        }
    }

    #[test]
    fn routes_are_pairwise_distinct() {
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let routes = all_shortest_routes(&x, &y);
                let set: HashSet<_> = routes.iter().cloned().collect();
                assert_eq!(set.len(), routes.len(), "{x}->{y}");
            }
        }
    }

    #[test]
    fn self_pair_has_exactly_the_empty_route() {
        let x = Word::parse(2, "0101").unwrap();
        assert_eq!(all_shortest_routes(&x, &x), vec![RoutePath::empty()]);
    }

    #[test]
    fn diameter_pairs_offer_multiple_routes() {
        // 0000 -> 1111 at distance 4: the trivial route plus the
        // right-shift variants.
        let x = Word::parse(2, "0000").unwrap();
        let y = Word::parse(2, "1111").unwrap();
        let routes = all_shortest_routes(&x, &y);
        assert!(routes.len() >= 2, "expected path diversity, got {routes:?}");
    }

    #[test]
    fn adjacent_pairs_can_still_have_one_route() {
        let x = Word::parse(2, "0001").unwrap();
        let y = x.shift_left(1);
        let routes = all_shortest_routes(&x, &y);
        for r in &routes {
            assert_eq!(r.len(), 1);
        }
    }
}
