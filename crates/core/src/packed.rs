//! Bit-packed words: a constant-time shift-register representation.
//!
//! [`Word`] stores one digit per byte, which is the right general-purpose
//! representation but wastes time on per-digit loops for the operations a
//! router executes millions of times: shifts, equality, rank. A
//! [`PackedWord`] packs the `k` digits into a single `u128` at
//! `⌈log₂ d⌉` bits per digit, making both shift operations and equality
//! `O(1)` word operations, and the directed-distance overlap a loop of
//! `k` single-word compares.
//!
//! The packing is an *ablation* of the paper's model: the algorithms stay
//! identical; only the register arithmetic changes. The
//! `routing_algorithms` bench group measures the difference.

use crate::error::Error;
use crate::word::Word;

/// A `DG(d,k)` vertex packed into a `u128` at `⌈log₂ d⌉` bits per digit.
///
/// Digit `x_1` (the paper's leftmost) occupies the most significant used
/// bits, so the numeric order of the raw value matches [`Word::rank`]
/// order when `d` is a power of two.
///
/// # Examples
///
/// ```
/// use debruijn_core::packed::PackedWord;
/// use debruijn_core::Word;
///
/// let w = Word::parse(2, "0110")?;
/// let p = PackedWord::from_word(&w)?;
/// assert_eq!(p.shift_left(1).to_word(), w.shift_left(1));
/// assert_eq!(p.shift_right(1).to_word(), w.shift_right(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedWord {
    bits: u128,
    d: u8,
    k: u16,
    bits_per_digit: u8,
}

impl PackedWord {
    /// Bits needed per digit for radix `d` (i.e. to represent `d − 1`).
    fn digit_width(d: u8) -> u8 {
        (16 - (u16::from(d) - 1).leading_zeros()).max(1) as u8
    }

    /// Packs a [`Word`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthTooSmall`]-style validation errors when the
    /// word does not fit: `k · ⌈log₂ d⌉` must be at most 128.
    pub fn from_word(w: &Word) -> Result<Self, Error> {
        let width = Self::digit_width(w.radix());
        let needed = w.len() * usize::from(width);
        if needed > 128 {
            return Err(Error::PackedTooWide {
                k: w.len(),
                d: w.radix(),
            });
        }
        let mut bits: u128 = 0;
        for &digit in w.digits() {
            bits = (bits << width) | u128::from(digit);
        }
        Ok(Self {
            bits,
            d: w.radix(),
            k: w.len() as u16,
            bits_per_digit: width,
        })
    }

    /// Packs digits directly.
    ///
    /// # Errors
    ///
    /// Same as [`Word::new`] plus the width check of
    /// [`PackedWord::from_word`].
    pub fn new(d: u8, digits: &[u8]) -> Result<Self, Error> {
        Self::from_word(&Word::new(d, digits.to_vec())?)
    }

    /// Unpacks into a [`Word`].
    pub fn to_word(&self) -> Word {
        let width = self.bits_per_digit;
        let mask = self.digit_mask();
        let digits: Vec<u8> = (0..self.k)
            .rev()
            .map(|i| ((self.bits >> (u32::from(i) * u32::from(width))) & mask) as u8)
            .collect();
        Word::new(self.d, digits).expect("packed digits are below d")
    }

    fn digit_mask(&self) -> u128 {
        (1u128 << self.bits_per_digit) - 1
    }

    fn value_mask(&self) -> u128 {
        let total = u32::from(self.k) * u32::from(self.bits_per_digit);
        if total == 128 {
            u128::MAX
        } else {
            (1u128 << total) - 1
        }
    }

    /// The radix `d`.
    pub fn radix(&self) -> u8 {
        self.d
    }

    /// The word length `k`.
    pub fn len(&self) -> usize {
        usize::from(self.k)
    }

    /// Always `false` (`k >= 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The left shift `X⁻(a)` in `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= d`.
    pub fn shift_left(&self, a: u8) -> PackedWord {
        assert!(a < self.d, "shift digit {a} not below radix {}", self.d);
        let bits = ((self.bits << self.bits_per_digit) | u128::from(a)) & self.value_mask();
        PackedWord { bits, ..*self }
    }

    /// The right shift `X⁺(a)` in `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= d`.
    pub fn shift_right(&self, a: u8) -> PackedWord {
        assert!(a < self.d, "shift digit {a} not below radix {}", self.d);
        let top = u32::from(self.k - 1) * u32::from(self.bits_per_digit);
        let bits = (self.bits >> self.bits_per_digit) | (u128::from(a) << top);
        PackedWord { bits, ..*self }
    }

    /// The digit at the paper's 1-indexed position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is `0` or greater than `k`.
    pub fn digit_1idx(&self, i: usize) -> u8 {
        assert!(
            i >= 1 && i <= self.len(),
            "1-indexed digit {i} out of range"
        );
        let shift = (self.len() - i) as u32 * u32::from(self.bits_per_digit);
        ((self.bits >> shift) & self.digit_mask()) as u8
    }

    /// The overlap of Eq. (2) — longest suffix of `self` equal to a
    /// prefix of `other` — via word-parallel masked compares: `O(k)`
    /// iterations of `O(1)` work each, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the words differ in radix or length.
    pub fn overlap(&self, other: &PackedWord) -> usize {
        assert!(
            self.d == other.d && self.k == other.k,
            "packed words must share radix and length"
        );
        let width = u32::from(self.bits_per_digit);
        // Suffix of length s of self: low s·width bits.
        // Prefix of length s of other: bits shifted down by (k−s)·width.
        for s in (1..=usize::from(self.k)).rev() {
            let low_bits = s as u32 * width;
            let mask = if low_bits == 128 {
                u128::MAX
            } else {
                (1u128 << low_bits) - 1
            };
            let suffix = self.bits & mask;
            let prefix = other.bits >> ((u32::from(self.k) - s as u32) * width);
            if suffix == prefix {
                return s;
            }
        }
        0
    }

    /// Directed distance (Property 1) on packed words.
    ///
    /// # Panics
    ///
    /// Panics if the words differ in radix or length.
    pub fn distance_directed(&self, other: &PackedWord) -> usize {
        self.len() - self.overlap(other)
    }

    /// The rank of the word (digits as a radix-`d` number) — `O(1)` when
    /// `d` is a power of two, `O(k)` otherwise.
    pub fn rank(&self) -> u128 {
        if self.d.is_power_of_two() {
            self.bits
        } else {
            self.to_word().rank()
        }
    }
}

impl std::fmt::Display for PackedWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.to_word().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::directed;
    use crate::space::DeBruijn;

    #[test]
    fn round_trips_through_word() {
        for (d, k) in [(2u8, 4usize), (3, 3), (5, 5), (16, 8)] {
            let g = DeBruijn::new(d, k).unwrap();
            for w in g.vertices().take(200) {
                let p = PackedWord::from_word(&w).unwrap();
                assert_eq!(p.to_word(), w, "d={d} k={k}");
                assert_eq!(p.len(), k);
                assert_eq!(p.radix(), d);
            }
        }
    }

    #[test]
    fn shifts_match_word_shifts_exhaustively() {
        let g = DeBruijn::new(3, 4).unwrap();
        for w in g.vertices() {
            let p = PackedWord::from_word(&w).unwrap();
            for a in 0..3 {
                assert_eq!(p.shift_left(a).to_word(), w.shift_left(a));
                assert_eq!(p.shift_right(a).to_word(), w.shift_right(a));
            }
        }
    }

    #[test]
    fn overlap_matches_unpacked_distance() {
        for (d, k) in [(2u8, 6usize), (3, 3), (4, 3)] {
            let g = DeBruijn::new(d, k).unwrap();
            for x in g.vertices() {
                for y in g.vertices() {
                    let px = PackedWord::from_word(&x).unwrap();
                    let py = PackedWord::from_word(&y).unwrap();
                    assert_eq!(
                        px.distance_directed(&py),
                        directed::distance(&x, &y),
                        "d={d} {x} {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_matches_word_rank() {
        for (d, k) in [(2u8, 8usize), (3, 4), (4, 4)] {
            let g = DeBruijn::new(d, k).unwrap();
            for w in g.vertices() {
                let p = PackedWord::from_word(&w).unwrap();
                assert_eq!(p.rank(), w.rank(), "d={d} k={k} {w}");
            }
        }
    }

    #[test]
    fn digit_accessor_matches() {
        let w = Word::parse(5, "40312").unwrap();
        let p = PackedWord::from_word(&w).unwrap();
        for i in 1..=5 {
            assert_eq!(p.digit_1idx(i), w.digit_1idx(i));
        }
    }

    #[test]
    fn full_width_binary_word_works() {
        // k = 128, d = 2: exactly 128 bits.
        let digits: Vec<u8> = (0..128).map(|i| (i % 2) as u8).collect();
        let w = Word::new(2, digits).unwrap();
        let p = PackedWord::from_word(&w).unwrap();
        assert_eq!(p.to_word(), w);
        assert_eq!(p.shift_left(1).to_word(), w.shift_left(1));
        assert_eq!(p.overlap(&p), 128);
    }

    #[test]
    fn oversized_words_are_rejected() {
        let w = Word::uniform(2, 129, 0).unwrap();
        assert!(matches!(
            PackedWord::from_word(&w),
            Err(Error::PackedTooWide { .. })
        ));
        let w16 = Word::uniform(16, 33, 0).unwrap(); // 33 * 4 = 132 bits
        assert!(PackedWord::from_word(&w16).is_err());
    }

    #[test]
    #[should_panic(expected = "share radix and length")]
    fn overlap_rejects_mismatched_words() {
        let a = PackedWord::new(2, &[0, 1]).unwrap();
        let b = PackedWord::new(2, &[0, 1, 1]).unwrap();
        a.overlap(&b);
    }
}
