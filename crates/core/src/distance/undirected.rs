//! Distance in the **undirected** de Bruijn graph (Theorem 2).
//!
//! With both shift directions available, a shortest walk keeps one block of
//! `X` and rebuilds the rest of `Y` around it. Theorem 2 makes this exact:
//!
//! ```text
//! D(X,Y) = 2k − 1 + min{ min_{i,j}(i − j − l_{i,j}),  min_{i,j}(−i + j − r_{i,j}) }
//! ```
//!
//! where `l`/`r` are the matching functions of Eqs. (8–9). The two inner
//! minima (the paper's `D₁` and `D₂` of Algorithm 2) are computed here by
//! one of four interchangeable engines:
//!
//! | engine | time | reference |
//! |---|---|---|
//! | [`Engine::Naive`] | `O(k⁴)` | the definition (§4 remark: fine for small `k`) |
//! | [`Engine::MorrisPratt`] | `O(k²)` | Algorithms 2 + 3 |
//! | [`Engine::SuffixTree`] | `O(k)` | Algorithm 4 |
//! | [`Engine::BitParallel`] | `O(k²/w)` words | diagonal-run sweep, [`debruijn_strings::bitmatch`] |
//!
//! All four return not just the distance but the minimizers
//! `(s₁,t₁,θ₁)` / `(s₂,t₂,θ₂)` needed to *construct* a shortest route.

use std::cell::RefCell;

use debruijn_strings::bitmatch;
use debruijn_strings::matching::{self, MatchTerm};
use debruijn_strings::TwoStringTree;

use super::assert_same_space;
use crate::word::Word;

/// Which implementation computes the matching-function minima.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Brute-force evaluation of Eqs. (8–9); `O(k⁴)`.
    Naive,
    /// The paper's Algorithm 2 engine (failure functions); `O(k²)` time,
    /// `O(k)` space.
    MorrisPratt,
    /// The paper's Algorithm 4 engine (compact prefix/suffix trees);
    /// `O(k)` time and space.
    SuffixTree,
    /// Word-parallel diagonal-run sweep over packed digit lanes
    /// ([`debruijn_strings::bitmatch`]): `O(k²·lane_bits / 64)` word
    /// operations, allocation-free after warm-up. Fastest engine up to
    /// `k ≈ 512` (roughly 9× over Morris–Pratt at `k = 128`).
    BitParallel,
    /// Picks [`Engine::BitParallel`] for `k ≤ 512` and
    /// [`Engine::SuffixTree`] beyond — the measured crossover where the
    /// suffix tree's `O(k)` asymptotics overtake the bit-parallel
    /// engine's word-level constants (see `docs/PERFORMANCE.md`).
    #[default]
    Auto,
}

/// `Engine::Auto` uses [`Engine::BitParallel`] up to this `k` and
/// [`Engine::SuffixTree`] beyond.
///
/// Pinned against the `distance_engines` series in
/// `BENCH_results.json` (re-measured 2026-08; `bench.sh` regenerates
/// it): at `k = 512` the bit-parallel sweep still wins (≈545 µs vs
/// ≈700 µs per 1k pairs for the suffix tree), while at `k = 1024` the
/// suffix tree's `O(k)` construction has overtaken the sweep's
/// `O(k²/64)` word work (≈1.43 ms vs ≈2.18 ms). The crossover
/// therefore lies in `(512, 1024]`; 512 is the largest benched size
/// where bit-parallel is not dominated. See `docs/PERFORMANCE.md`.
pub const AUTO_BITPARALLEL_MAX_K: usize = 512;

impl Engine {
    /// The concrete engine [`Engine::Auto`] picks for word length `k`
    /// (other engines resolve to themselves). Exposed so benchmarks and
    /// tests can assert the selection matches the measured winner.
    #[must_use]
    pub fn resolve(self, k: usize) -> Engine {
        match self {
            Engine::Auto => {
                if k <= AUTO_BITPARALLEL_MAX_K {
                    Engine::BitParallel
                } else {
                    Engine::SuffixTree
                }
            }
            other => other,
        }
    }
}

/// The minimum of one matching-function family, with its minimizer.
///
/// For the `l` family, `steps = 2k − 1 + s − t − θ` (the paper's `D₁`);
/// for the `r` family, `steps = 2k − 1 − s + t − θ` (the paper's `D₂`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyMinimum {
    /// Route length this family achieves (`D₁` or `D₂`).
    pub steps: usize,
    /// 1-indexed position in `X` (paper's `s₁` / `s₂`).
    pub s: usize,
    /// 1-indexed position in `Y` (paper's `t₁` / `t₂`).
    pub t: usize,
    /// Length of the matched block (paper's `θ₁` / `θ₂`).
    pub theta: usize,
}

/// The full output of Theorem 2 for one pair `(X,Y)`: both family minima.
///
/// Consumed by `routing::algorithm2` / `routing::algorithm4` to build the
/// route; `D(X,Y) = min(D₁, D₂)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Solution {
    /// The word length `k`.
    pub k: usize,
    /// Minimum over the `l` family (paper's `D₁`, `s₁`, `t₁`, `θ₁`).
    pub left_family: FamilyMinimum,
    /// Minimum over the `r` family (paper's `D₂`, `s₂`, `t₂`, `θ₂`).
    pub right_family: FamilyMinimum,
}

impl Solution {
    /// The distance `D(X,Y) = min(D₁, D₂)`.
    pub fn distance(&self) -> usize {
        self.left_family.steps.min(self.right_family.steps)
    }
}

/// Solves Theorem 2 for `(X,Y)` with the requested engine.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
///
/// # Examples
///
/// ```
/// use debruijn_core::distance::undirected::{solve, Engine};
/// use debruijn_core::Word;
///
/// let x = Word::parse(2, "0110")?;
/// let y = Word::parse(2, "1011")?;
/// // One right shift: 0110⁺(1) = 1011.
/// let sol = solve(&x, &y, Engine::SuffixTree);
/// assert_eq!(sol.distance(), 1);
/// # Ok::<(), debruijn_core::Error>(())
/// ```
pub fn solve(x: &Word, y: &Word, engine: Engine) -> Solution {
    assert_same_space(x, y);
    let k = x.len();
    let resolved = engine.resolve(k);
    if engine == Engine::Auto {
        match resolved {
            Engine::BitParallel => crate::profile::count_auto_to_bit_parallel(),
            Engine::SuffixTree => crate::profile::count_auto_to_suffix_tree(),
            _ => unreachable!("Auto resolves to a measured engine"),
        }
    }
    let engine = resolved;
    match engine {
        Engine::Naive => crate::profile::count_engine_naive(),
        Engine::MorrisPratt => crate::profile::count_engine_morris_pratt(),
        Engine::SuffixTree => crate::profile::count_engine_suffix_tree(),
        Engine::BitParallel => crate::profile::count_engine_bit_parallel(),
        Engine::Auto => unreachable!("resolved above"),
    }
    let (l_min, r_min_reversed) = match engine {
        Engine::Naive => (naive_min(x, y), naive_min(&x.reversed(), &y.reversed())),
        Engine::MorrisPratt => MP_SCRATCH.with(|s| {
            let (scratch, xr, yr) = &mut *s.borrow_mut();
            let l = matching::min_l_term_with_scratch(x.digits(), y.digits(), scratch);
            xr.clear();
            xr.extend(x.digits().iter().rev());
            yr.clear();
            yr.extend(y.digits().iter().rev());
            let r = matching::min_l_term_with_scratch(xr, yr, scratch);
            (l, r)
        }),
        Engine::SuffixTree => (suffix_tree_min(x, y), {
            let xr = x.reversed();
            let yr = y.reversed();
            suffix_tree_min(&xr, &yr)
        }),
        Engine::BitParallel => BIT_SCRATCH.with(|s| {
            bitmatch::both_family_minima(x.radix(), x.digits(), y.digits(), &mut s.borrow_mut())
        }),
        Engine::Auto => unreachable!("resolved above"),
    };

    // D₁ = 2k − 1 + min(i − j − l_{i,j}); the baseline candidate (l = 0 at
    // i = 1, j = k) caps it at k.
    let d1 = (2 * k as i64 - 1 + l_min.value) as usize;
    let left_family = FamilyMinimum {
        steps: d1,
        s: l_min.s,
        t: l_min.t,
        theta: l_min.theta,
    };

    // The r family on (X,Y) is the l family on the reversals:
    // r_{i,j}(X,Y) = l_{k+1−i,k+1−j}(X̄,Ȳ), and
    // −i + j − r_{i,j} = i′ − j′ − l_{i′,j′} under i′ = k+1−i, j′ = k+1−j.
    let d2 = (2 * k as i64 - 1 + r_min_reversed.value) as usize;
    let right_family = FamilyMinimum {
        steps: d2,
        s: k + 1 - r_min_reversed.s,
        t: k + 1 - r_min_reversed.t,
        theta: r_min_reversed.theta,
    };

    Solution {
        k,
        left_family,
        right_family,
    }
}

/// Distance between `X` and `Y` in the undirected `DG(d,k)` with the
/// default engine. See [`solve`] for engine selection.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn distance(x: &Word, y: &Word) -> usize {
    solve(x, y, Engine::Auto).distance()
}

/// Distance with an explicit engine choice.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
pub fn distance_with(engine: Engine, x: &Word, y: &Word) -> usize {
    solve(x, y, engine).distance()
}

thread_local! {
    // One packed-lane scratch per thread keeps the bit-parallel engine
    // allocation-free across solves without threading a buffer through
    // every caller.
    static BIT_SCRATCH: RefCell<bitmatch::BitScratch> = RefCell::new(bitmatch::BitScratch::new());

    // Row buffers plus reversed-digit buffers for the Morris–Pratt engine:
    // the r-family pass reverses both words, and reusing these vectors
    // keeps Algorithm 2's hot path free of per-solve allocations too.
    #[allow(clippy::type_complexity)]
    static MP_SCRATCH: RefCell<(matching::MatchScratch, Vec<u8>, Vec<u8>)> =
        RefCell::new((matching::MatchScratch::new(), Vec::new(), Vec::new()));
}

fn naive_min(x: &Word, y: &Word) -> MatchTerm {
    let table = matching::l_table_naive(x.digits(), y.digits());
    matching::min_l_term_from_table(&table)
}

fn suffix_tree_min(x: &Word, y: &Word) -> MatchTerm {
    let tree = TwoStringTree::new(&x.digits_u32(), &y.digits_u32());
    let m = tree.match_minimum();
    MatchTerm {
        value: m.value,
        s: m.s,
        t: m.t,
        theta: m.theta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DeBruijn;
    use std::collections::HashMap;
    use std::collections::VecDeque;

    /// Reference BFS distance over the undirected neighbor relation.
    fn bfs_distance(g: &DeBruijn, x: &Word, y: &Word) -> usize {
        let mut dist: HashMap<Word, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(x.clone(), 0);
        queue.push_back(x.clone());
        while let Some(v) = queue.pop_front() {
            let dv = dist[&v];
            if &v == y {
                return dv;
            }
            for n in g.undirected_neighbors(&v) {
                if !dist.contains_key(&n) {
                    dist.insert(n.clone(), dv + 1);
                    queue.push_back(n);
                }
            }
        }
        unreachable!("de Bruijn graphs are connected");
    }

    fn engines() -> [Engine; 4] {
        [
            Engine::Naive,
            Engine::MorrisPratt,
            Engine::SuffixTree,
            Engine::BitParallel,
        ]
    }

    #[test]
    fn all_engines_match_bfs_on_dg_2_3() {
        let g = DeBruijn::new(2, 3).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let want = bfs_distance(&g, &x, &y);
                for e in engines() {
                    assert_eq!(distance_with(e, &x, &y), want, "{x} {y} {e:?}");
                }
            }
        }
    }

    #[test]
    fn all_engines_match_bfs_on_dg_2_4() {
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let want = bfs_distance(&g, &x, &y);
                for e in engines() {
                    assert_eq!(distance_with(e, &x, &y), want, "{x} {y} {e:?}");
                }
            }
        }
    }

    #[test]
    fn all_engines_match_bfs_on_dg_3_2() {
        let g = DeBruijn::new(3, 2).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let want = bfs_distance(&g, &x, &y);
                for e in engines() {
                    assert_eq!(distance_with(e, &x, &y), want, "{x} {y} {e:?}");
                }
            }
        }
    }

    #[test]
    fn undirected_distance_is_symmetric() {
        let g = DeBruijn::new(2, 5).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                assert_eq!(distance(&x, &y), distance(&y, &x), "{x} {y}");
            }
        }
    }

    #[test]
    fn undirected_is_at_most_directed() {
        use crate::distance::directed;
        let g = DeBruijn::new(2, 5).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                assert!(distance(&x, &y) <= directed::distance(&x, &y));
            }
        }
    }

    #[test]
    fn family_minimizers_attain_their_step_counts() {
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                for e in engines() {
                    let sol = solve(&x, &y, e);
                    let k = sol.k as i64;
                    let lf = sol.left_family;
                    assert_eq!(
                        lf.steps as i64,
                        2 * k - 1 + lf.s as i64 - lf.t as i64 - lf.theta as i64,
                        "L family inconsistent: {x} {y} {e:?}"
                    );
                    let rf = sol.right_family;
                    assert_eq!(
                        rf.steps as i64,
                        2 * k - 1 - rf.s as i64 + rf.t as i64 - rf.theta as i64,
                        "R family inconsistent: {x} {y} {e:?}"
                    );
                    assert!(lf.steps <= sol.k || rf.steps <= sol.k);
                }
            }
        }
    }

    #[test]
    fn distance_zero_iff_equal() {
        let g = DeBruijn::new(3, 3).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                assert_eq!(distance(&x, &y) == 0, x == y);
            }
        }
    }

    #[test]
    fn engines_agree_on_large_random_words() {
        // Deterministic pseudo-random digits via a simple LCG: no rand
        // dependency in the library crate.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for d in [2u8, 3, 5] {
            for k in [33usize, 65, 120] {
                let digits_x: Vec<u8> = (0..k).map(|_| (next() % d as u64) as u8).collect();
                let digits_y: Vec<u8> = (0..k).map(|_| (next() % d as u64) as u8).collect();
                let x = Word::new(d, digits_x).unwrap();
                let y = Word::new(d, digits_y).unwrap();
                let mp = distance_with(Engine::MorrisPratt, &x, &y);
                let st = distance_with(Engine::SuffixTree, &x, &y);
                let bp = distance_with(Engine::BitParallel, &x, &y);
                let auto = distance(&x, &y);
                assert_eq!(mp, st, "d={d} k={k}");
                assert_eq!(mp, bp, "d={d} k={k}");
                assert_eq!(mp, auto, "d={d} k={k}");
            }
        }
    }

    #[test]
    fn diameter_pair_reaches_k() {
        // D(0…0, 1…1) = k in the undirected graph too.
        for k in 1..=8usize {
            let x = Word::uniform(2, k, 0).unwrap();
            let y = Word::uniform(2, k, 1).unwrap();
            assert_eq!(distance(&x, &y), k, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "share radix and length")]
    fn rejects_mismatched_spaces() {
        let x = Word::parse(2, "01").unwrap();
        let y = Word::parse(3, "01").unwrap();
        distance(&x, &y);
    }

    /// Auto must never pick an engine the `distance_engines` bench
    /// series shows to be dominated at that size. The measured winners
    /// (BENCH_results.json, `bench.sh` regenerates): bit-parallel at
    /// every benched `k ≤ 512`, suffix tree at `k ≥ 1024`. If the
    /// crossover [`AUTO_BITPARALLEL_MAX_K`] drifts away from the data,
    /// this fails before a user sees the regression.
    #[test]
    fn auto_never_selects_a_dominated_engine_at_bench_sizes() {
        for k in [8usize, 32, 128, 512] {
            assert_eq!(
                Engine::Auto.resolve(k),
                Engine::BitParallel,
                "bit-parallel is the measured winner at k={k}"
            );
        }
        for k in [1024usize, 2048] {
            assert_eq!(
                Engine::Auto.resolve(k),
                Engine::SuffixTree,
                "suffix tree is the measured winner at k={k}"
            );
        }
        // Non-auto engines resolve to themselves at any size.
        for e in [
            Engine::Naive,
            Engine::MorrisPratt,
            Engine::SuffixTree,
            Engine::BitParallel,
        ] {
            assert_eq!(e.resolve(4096), e);
        }
    }
}
