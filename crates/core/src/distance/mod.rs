//! Distance functions for de Bruijn graphs.
//!
//! * [`directed`] — Property 1: `D(X,Y) = k − overlap(X,Y)` where the
//!   overlap is the longest suffix of `X` that is a prefix of `Y`.
//! * [`undirected`] — Theorem 2 / Corollary 4: the distance is a minimum
//!   over the two matching-function families `l_{i,j}` and `r_{i,j}`.
//!
//! The undirected engines expose their minimizers (the paper's
//! `(s₁,t₁,θ₁)` and `(s₂,t₂,θ₂)`), which the routing algorithms consume to
//! emit explicit shortest paths.

pub mod directed;
pub mod undirected;

pub(crate) fn assert_same_space(x: &crate::Word, y: &crate::Word) {
    assert!(
        x.same_space(y),
        "words must share radix and length: ({}, k={}) vs ({}, k={})",
        x.radix(),
        x.len(),
        y.radix(),
        y.len()
    );
}
