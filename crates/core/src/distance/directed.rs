//! Distance in the **directed** de Bruijn graph (paper's Property 1).
//!
//! Only left shifts `X → X⁻(a)` are arcs, so a walk of length `n` replaces
//! `X` by `(x_{n+1}, …, x_k, b_1, …, b_n)`: reaching `Y` requires the kept
//! suffix of `X` to be a prefix of `Y`. Hence
//!
//! `D(X,Y) = k − max{ s | x_{k−s+1}…x_k = y_1…y_s }`
//!
//! and the maximum (the *overlap* of `X` onto `Y`) is computable in `O(k)`
//! with the Morris–Pratt failure function.

use debruijn_strings::failure;

use super::assert_same_space;
use crate::word::Word;

/// The paper's `l` of Eq. (2): length of the longest suffix of `X` that is
/// a prefix of `Y` (0 if none, `k` iff `X = Y`).
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
///
/// # Examples
///
/// ```
/// use debruijn_core::{distance::directed, Word};
///
/// let x = Word::parse(2, "0110")?;
/// let y = Word::parse(2, "1001")?;
/// assert_eq!(directed::overlap(&x, &y), 2); // suffix "10" = prefix "10"
/// # Ok::<(), debruijn_core::Error>(())
/// ```
pub fn overlap(x: &Word, y: &Word) -> usize {
    assert_same_space(x, y);
    failure::overlap(x.digits(), y.digits())
}

/// Distance from `X` to `Y` in the directed `DG(d,k)` (Property 1),
/// computed in `O(k)`.
///
/// Note the asymmetry: `distance(x, y)` and `distance(y, x)` generally
/// differ in a directed graph.
///
/// # Panics
///
/// Panics if the words are not in the same `DG(d,k)`.
///
/// # Examples
///
/// ```
/// use debruijn_core::{distance::directed, Word};
///
/// let zeros = Word::parse(2, "000")?;
/// let ones = Word::parse(2, "111")?;
/// // The paper's diameter witness: 0…0 to 1…1 takes k steps.
/// assert_eq!(directed::distance(&zeros, &ones), 3);
/// # Ok::<(), debruijn_core::Error>(())
/// ```
pub fn distance(x: &Word, y: &Word) -> usize {
    x.len() - overlap(x, y)
}

/// Distance computed from the definition by scanning all suffix lengths
/// (`O(k²)`); reference implementation for differential testing.
pub fn distance_naive(x: &Word, y: &Word) -> usize {
    assert_same_space(x, y);
    x.len() - failure::overlap_naive(x.digits(), y.digits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DeBruijn;

    #[test]
    fn distance_is_zero_iff_equal() {
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                let d = distance(&x, &y);
                assert_eq!(d == 0, x == y, "{x} {y}");
            }
        }
    }

    #[test]
    fn distance_never_exceeds_diameter() {
        let g = DeBruijn::new(3, 3).unwrap();
        for x in g.vertices() {
            for y in g.vertices() {
                assert!(distance(&x, &y) <= g.diameter());
            }
        }
    }

    #[test]
    fn agrees_with_naive_exhaustively() {
        for (d, k) in [(2u8, 5usize), (3, 3), (4, 2)] {
            let g = DeBruijn::new(d, k).unwrap();
            for x in g.vertices() {
                for y in g.vertices() {
                    assert_eq!(distance(&x, &y), distance_naive(&x, &y), "{x} {y}");
                }
            }
        }
    }

    #[test]
    fn one_step_neighbors_are_at_distance_one() {
        let g = DeBruijn::new(2, 4).unwrap();
        for x in g.vertices() {
            for n in g.directed_out_neighbors(&x) {
                assert_eq!(distance(&x, &n), 1, "{x} -> {n}");
            }
        }
    }

    #[test]
    fn triangle_inequality_over_arcs() {
        // D(X,Y) <= D(X,Z) + D(Z,Y) for all triples in DG(2,3).
        let g = DeBruijn::new(2, 3).unwrap();
        let all: Vec<_> = g.vertices().collect();
        for x in &all {
            for y in &all {
                for z in &all {
                    assert!(distance(x, y) <= distance(x, z) + distance(z, y));
                }
            }
        }
    }

    #[test]
    fn asymmetric_example() {
        let x = Word::parse(2, "001").unwrap();
        let y = Word::parse(2, "011").unwrap();
        // 001 → 011 in one left shift; 011 → 001 needs more.
        assert_eq!(distance(&x, &y), 1);
        assert_eq!(distance(&y, &x), 3);
    }

    #[test]
    #[should_panic(expected = "share radix and length")]
    fn rejects_mismatched_spaces() {
        let x = Word::parse(2, "01").unwrap();
        let y = Word::parse(2, "011").unwrap();
        distance(&x, &y);
    }
}
