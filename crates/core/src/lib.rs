//! Optimal routing in de Bruijn networks — the core library.
//!
//! This crate reproduces the central results of Zhen Liu, *"Optimal Routing
//! in the De Bruijn Networks"* (INRIA RR-1130, 1989 / ICDCS 1990):
//!
//! * [`Word`] — a vertex of the de Bruijn graph `DG(d,k)`: a word of `k`
//!   digits over the alphabet `{0, …, d−1}`, with the two shift operations
//!   `X⁻(a)` ([`Word::shift_left`]) and `X⁺(a)` ([`Word::shift_right`]);
//! * [`DeBruijn`] — the parameter space `(d, k)` with vertex and neighbor
//!   enumeration for both the directed and the undirected graph;
//! * [`distance`] — the paper's distance functions: Property 1 for the
//!   directed graph (`D(X,Y) = k − overlap(X,Y)`) and Theorem 2 for the
//!   undirected graph, with three interchangeable engines (naive,
//!   Morris–Pratt, suffix tree);
//! * [`routing`] — the paper's Algorithms 1, 2 and 4, emitting explicit
//!   shortest routing paths as sequences of `(shift type, digit)` pairs,
//!   including the wildcard `*` digits the paper proposes for traffic
//!   balancing.
//!
//! # Quick example
//!
//! Route between two nodes of the binary de Bruijn network `DN(2,4)`:
//!
//! ```
//! use debruijn_core::{distance, routing, Word};
//!
//! let x = Word::parse(2, "0110")?;
//! let y = Word::parse(2, "1011")?;
//!
//! // Directed network: follow left shifts only.
//! assert_eq!(distance::directed::distance(&x, &y), 2);
//!
//! // Undirected network: mixing left and right shifts can be shorter.
//! let route = routing::algorithm2(&x, &y);
//! assert_eq!(route.len(), distance::undirected::distance(&x, &y));
//! assert!(route.leads_to(&x, &y));
//! # Ok::<(), debruijn_core::Error>(())
//! ```

pub mod batch;
pub mod distance;
pub mod error;
pub mod packed;
pub mod profile;
pub mod rng;
pub mod routing;
pub mod space;
pub mod word;

pub use batch::{distance_batch, distance_batch_into, route_batch, route_batch_into, BatchScratch};
pub use error::Error;
pub use routing::{Digit, RoutePath, ShiftKind, Step};
pub use space::DeBruijn;
pub use word::Word;

/// Average inter-vertex distance of the **directed** `DG(d,k)`, Eq. (5).
///
/// `δ(d,k) = Σ_{i=1..k} i·α^{k−i}·(1−α)` with `α = 1/d`, which telescopes
/// to `k − (1 − α^k)·α/(1−α)`. For `d = 2` this is `k − 1 + 2^{−k}`.
///
/// The average is taken over ordered pairs `(X,Y)` drawn uniformly
/// (including `X = Y`), matching the paper's derivation from the suffix
/// match-length distribution.
///
/// **Erratum note:** the paper's derivation treats the overlap length as
/// geometrically distributed (`P(D = i) = α^{k−i}·(1−α)`), which ignores
/// pairs whose longest match is longer than their longest *contiguous
/// chain* of matches — e.g. `X = Y = 01` overlaps at length 2 but not 1.
/// Eq. (5) therefore **overestimates** the true average: for `DG(2,2)`
/// the exact all-pairs average is `9/8`, not `10/8`, and for `d = 2` the
/// gap converges to ≈ 0.53 hops as `k` grows (it shrinks quickly with
/// `d`). The exact value is computed by `debruijn-analysis`; experiment
/// E1 quantifies the gap.
///
/// # Examples
///
/// ```
/// use debruijn_core::directed_average_distance;
///
/// let d2k3 = directed_average_distance(2, 3);
/// assert!((d2k3 - (3.0 - 1.0 + 0.125)).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `d < 2` or `k < 1`.
pub fn directed_average_distance(d: u8, k: usize) -> f64 {
    assert!(d >= 2, "de Bruijn graphs require d >= 2");
    assert!(k >= 1, "de Bruijn graphs require k >= 1");
    let alpha = 1.0 / f64::from(d);
    let alpha_bar = 1.0 - alpha;
    k as f64 - (1.0 - alpha.powi(k as i32)) * alpha / alpha_bar
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_matches_paper_special_case_d2() {
        for k in 1..=20 {
            let want = k as f64 - 1.0 + 0.5f64.powi(k as i32);
            assert!(
                (directed_average_distance(2, k) - want).abs() < 1e-12,
                "k={k}"
            );
        }
    }

    #[test]
    fn eq5_matches_direct_summation() {
        for d in 2u8..=9 {
            for k in 1..=12usize {
                let alpha = 1.0 / f64::from(d);
                let direct: f64 = (1..=k)
                    .map(|i| i as f64 * alpha.powi((k - i) as i32) * (1.0 - alpha))
                    .sum();
                assert!(
                    (directed_average_distance(d, k) - direct).abs() < 1e-10,
                    "d={d} k={k}"
                );
            }
        }
    }

    #[test]
    fn average_distance_is_below_diameter() {
        for d in 2u8..=5 {
            for k in 1..=10usize {
                let avg = directed_average_distance(d, k);
                assert!(avg > 0.0 && avg < k as f64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn rejects_degenerate_radix() {
        directed_average_distance(1, 3);
    }
}
