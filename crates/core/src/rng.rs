//! Small deterministic PRNG, so the workspace builds with no external
//! dependencies.
//!
//! The simulator, the workload generators and the Monte-Carlo estimators
//! all need reproducible pseudo-randomness, but nothing cryptographic:
//! the paper's experiments only require that a seed fully determines a
//! run. This module provides Steele, Lea and Flood's **SplitMix64**
//! generator (the seeding generator of `java.util.SplittableRandom`):
//! a 64-bit state, one add and two xor-shift-multiply mixes per output,
//! passes BigCrush, and is trivially portable.
//!
//! Everything downstream (`debruijn-net`'s workloads and wildcard
//! policies, `debruijn-analysis`'s sampled averages, the benches) draws
//! from this one implementation, which keeps results bit-identical
//! across the workspace and lets the whole tree build offline.

/// A deterministic SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use debruijn_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed gives an independent,
    /// full-period-64 stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`, by rejection sampling (no modulo
    /// bias).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below_u64 requires n > 0");
        // Accept only draws below the largest multiple of n.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// A uniform `u128` in `[0, n)`, for rank sampling in spaces too
    /// large for `u64` (e.g. `DG(2,100)`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "below_u128 requires n > 0");
        if let Ok(small) = u64::try_from(n) {
            return u128::from(self.below_u64(small));
        }
        let zone = u128::MAX - (u128::MAX % n);
        loop {
            let hi = u128::from(self.next_u64());
            let lo = u128::from(self.next_u64());
            let v = (hi << 64) | lo;
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform digit in `[0, d)` — the alphabet of `DG(d,k)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn digit(&mut self, d: u8) -> u8 {
        self.below_u64(u64::from(d)) as u8
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_splitmix64_reference_vectors() {
        // Reference outputs for seed 1234567 (Vigna's splitmix64.c).
        let mut rng = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for want in expected {
            assert_eq!(rng.next_u64(), want);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_hits_everything() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below_u64(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn below_u128_handles_large_bounds() {
        let mut rng = SplitMix64::new(3);
        let n = u128::from(u64::MAX) + 12345;
        for _ in 0..50 {
            assert!(rng.below_u128(n) < n);
        }
        assert_eq!(rng.below_u128(1), 0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of Uniform(0,1) is 0.5; 2000 samples stay well inside ±0.05.
        assert!((sum / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut rng = SplitMix64::new(13);
        let hits = (0..2000).filter(|_| rng.next_bool(0.8)).count();
        assert!((1500..=1900).contains(&hits), "{hits} of 2000 at p = 0.8");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(17);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, sorted, "100 items almost surely move");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn rejects_empty_range() {
        SplitMix64::new(0).below_u64(0);
    }
}
