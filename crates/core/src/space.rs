//! The de Bruijn parameter space `DG(d,k)` and neighborhood structure.

use crate::error::Error;
use crate::word::Word;

/// The de Bruijn graph parameters `(d, k)`: `d^k` vertices, diameter `k`.
///
/// `DeBruijn` is a lightweight descriptor; it owns no adjacency. Vertex
/// enumeration and neighbor generation operate on [`Word`]s directly,
/// which is what makes routing `O(k)` rather than `O(d^k)`. Materialized
/// adjacency (for BFS baselines and structural censuses) lives in the
/// `debruijn-graph` crate.
///
/// # Examples
///
/// ```
/// use debruijn_core::DeBruijn;
///
/// let g = DeBruijn::new(2, 3)?;
/// assert_eq!(g.order(), Some(8));
/// assert_eq!(g.diameter(), 3);
/// assert_eq!(g.vertices().count(), 8);
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeBruijn {
    d: u8,
    k: usize,
}

impl DeBruijn {
    /// Creates the parameter space for `DG(d,k)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `d < 2` or `k < 1`.
    pub fn new(d: u8, k: usize) -> Result<Self, Error> {
        if d < 2 {
            return Err(Error::RadixTooSmall { d });
        }
        if k < 1 {
            return Err(Error::LengthTooSmall);
        }
        Ok(Self { d, k })
    }

    /// The digit radix `d` (the graph degree is `2d`, counting
    /// multiplicities).
    pub fn d(&self) -> u8 {
        self.d
    }

    /// The word length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices `d^k`, or `None` if it overflows `u128`.
    pub fn order(&self) -> Option<u128> {
        u128::from(self.d).checked_pow(u32::try_from(self.k).ok()?)
    }

    /// Number of vertices `d^k` as `usize`, or `None` if it does not fit.
    ///
    /// Use this before materializing anything per-vertex.
    pub fn order_usize(&self) -> Option<usize> {
        usize::try_from(self.order()?).ok()
    }

    /// The diameter of `DG(d,k)`, which is `k` (paper §2: the trivial
    /// left-shift path has length `k`, and `0…0 → 1…1` requires `k`).
    pub fn diameter(&self) -> usize {
        self.k
    }

    /// Whether `w` is a vertex of this graph.
    pub fn contains(&self, w: &Word) -> bool {
        w.radix() == self.d && w.len() == self.k
    }

    /// The vertex with the given rank (radix-`d` value of its digits).
    ///
    /// # Errors
    ///
    /// Returns an error if `rank >= d^k`.
    pub fn word_from_rank(&self, rank: u128) -> Result<Word, Error> {
        Word::from_rank(self.d, self.k, rank)
    }

    /// Iterates over all `d^k` vertices in rank order.
    ///
    /// # Panics
    ///
    /// Panics if `d^k` overflows `u128` (enumerate only graphs that fit).
    pub fn vertices(&self) -> Vertices {
        let order = self
            .order()
            .expect("vertex enumeration requires d^k to fit in u128");
        Vertices {
            space: *self,
            next: 0,
            order,
        }
    }

    /// The `d` type-L (left-shift) neighbors `X⁻(a)`, `a = 0, …, d−1`,
    /// including duplicates and self-loops.
    pub fn left_neighbors<'a>(&self, w: &'a Word) -> impl Iterator<Item = Word> + 'a {
        debug_assert!(self.contains(w));
        let d = self.d;
        (0..d).map(move |a| w.shift_left(a))
    }

    /// The `d` type-R (right-shift) neighbors `X⁺(a)`, `a = 0, …, d−1`,
    /// including duplicates and self-loops.
    pub fn right_neighbors<'a>(&self, w: &'a Word) -> impl Iterator<Item = Word> + 'a {
        debug_assert!(self.contains(w));
        let d = self.d;
        (0..d).map(move |a| w.shift_right(a))
    }

    /// Out-neighbors in the **directed** graph (the type-L neighbors),
    /// deduplicated and with self-loops removed.
    ///
    /// The directed `DG(d,k)` has arcs `X → X⁻(a)` only; the arcs
    /// `X⁺(a) → X` are their reverses.
    pub fn directed_out_neighbors(&self, w: &Word) -> Vec<Word> {
        let mut out: Vec<Word> = self.left_neighbors(w).filter(|n| n != w).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// In-neighbors in the **directed** graph (the type-R neighbors),
    /// deduplicated and with self-loops removed.
    pub fn directed_in_neighbors(&self, w: &Word) -> Vec<Word> {
        let mut out: Vec<Word> = self.right_neighbors(w).filter(|n| n != w).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Neighbors in the **undirected** graph: the union of type-L and
    /// type-R neighbors, deduplicated, self-loops removed.
    ///
    /// The paper's §1 census: after removing redundant edges, vertices
    /// have degree `2d`, `2d−1` or `2d−2` depending on how many shifts
    /// coincide.
    pub fn undirected_neighbors(&self, w: &Word) -> Vec<Word> {
        let mut out: Vec<Word> = self
            .left_neighbors(w)
            .chain(self.right_neighbors(w))
            .filter(|n| n != w)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Index arithmetic on an enumerable de Bruijn space: node IDs are word
/// ranks (`0 ≤ id < d^k`), and the two shift operations become `O(1)`
/// integer operations instead of digit-vector rebuilds.
///
/// With `x1` the most significant digit of the rank,
/// `X⁻(a) = (x_2, …, x_k, a)` has rank `(rank·d + a) mod d^k` and
/// `X⁺(a) = (a, x_1, …, x_{k−1})` has rank `a·d^{k−1} + ⌊rank/d⌋`. This is
/// what lets simulator hot loops route without allocating a [`Word`] per
/// message.
///
/// # Examples
///
/// ```
/// use debruijn_core::space::RankSpace;
/// use debruijn_core::{DeBruijn, Word};
///
/// let space = DeBruijn::new(2, 4)?;
/// let ranks = RankSpace::new(space).expect("2^4 fits in u64");
/// let x = Word::parse(2, "0110")?;
/// let id = x.rank() as u64;
/// assert_eq!(ranks.shift_left(id, 1), x.shift_left(1).rank() as u64);
/// assert_eq!(ranks.shift_right(id, 1), x.shift_right(1).rank() as u64);
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankSpace {
    space: DeBruijn,
    /// `d` widened for the mixed arithmetic below.
    d: u64,
    /// `d^k`, the number of vertices.
    order: u64,
    /// `d^{k−1}`, the weight of the most significant digit.
    msd: u64,
}

impl RankSpace {
    /// Wraps `space`, or `None` if `d^k` does not fit in `u64`.
    pub fn new(space: DeBruijn) -> Option<Self> {
        let order = u64::from(space.d()).checked_pow(u32::try_from(space.k()).ok()?)?;
        Some(Self {
            space,
            d: u64::from(space.d()),
            order,
            msd: order / u64::from(space.d()),
        })
    }

    /// The wrapped parameter space.
    pub fn space(&self) -> DeBruijn {
        self.space
    }

    /// Number of vertices `d^k`.
    pub fn order(&self) -> u64 {
        self.order
    }

    /// Rank of the type-L neighbor `X⁻(a)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `id < d^k` and `a < d`.
    #[inline]
    pub fn shift_left(&self, id: u64, a: u8) -> u64 {
        debug_assert!(id < self.order && u64::from(a) < self.d);
        (id % self.msd) * self.d + u64::from(a)
    }

    /// Rank of the type-R neighbor `X⁺(a)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `id < d^k` and `a < d`.
    #[inline]
    pub fn shift_right(&self, id: u64, a: u8) -> u64 {
        debug_assert!(id < self.order && u64::from(a) < self.d);
        u64::from(a) * self.msd + id / self.d
    }
}

/// Iterator over all vertices of a [`DeBruijn`] space in rank order.
///
/// Created by [`DeBruijn::vertices`].
#[derive(Debug, Clone)]
pub struct Vertices {
    space: DeBruijn,
    next: u128,
    order: u128,
}

impl Iterator for Vertices {
    type Item = Word;

    fn next(&mut self) -> Option<Word> {
        if self.next >= self.order {
            return None;
        }
        let w = self
            .space
            .word_from_rank(self.next)
            .expect("rank below order is valid");
        self.next += 1;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.order - self.next;
        match usize::try_from(rem) {
            Ok(n) => (n, Some(n)),
            Err(_) => (usize::MAX, None),
        }
    }
}

impl ExactSizeIterator for Vertices {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_diameter() {
        let g = DeBruijn::new(3, 4).unwrap();
        assert_eq!(g.order(), Some(81));
        assert_eq!(g.order_usize(), Some(81));
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(DeBruijn::new(1, 3), Err(Error::RadixTooSmall { d: 1 }));
        assert_eq!(DeBruijn::new(2, 0), Err(Error::LengthTooSmall));
    }

    #[test]
    fn vertex_iteration_is_exhaustive_and_ordered() {
        let g = DeBruijn::new(2, 3).unwrap();
        let all: Vec<String> = g.vertices().map(|w| w.to_string()).collect();
        assert_eq!(
            all,
            ["000", "001", "010", "011", "100", "101", "110", "111"]
        );
        assert_eq!(g.vertices().len(), 8);
    }

    #[test]
    fn directed_neighbors_follow_shift_structure() {
        let g = DeBruijn::new(2, 3).unwrap();
        let x = Word::parse(2, "011").unwrap();
        let out: Vec<String> = g
            .directed_out_neighbors(&x)
            .iter()
            .map(|w| w.to_string())
            .collect();
        assert_eq!(out, ["110", "111"]);
        let inn: Vec<String> = g
            .directed_in_neighbors(&x)
            .iter()
            .map(|w| w.to_string())
            .collect();
        assert_eq!(inn, ["001", "101"]);
    }

    #[test]
    fn self_loops_are_removed() {
        let g = DeBruijn::new(2, 3).unwrap();
        let zero = Word::parse(2, "000").unwrap();
        // 000⁻(0) = 000 is a self-loop and must be filtered.
        assert!(!g.directed_out_neighbors(&zero).contains(&zero));
        assert!(!g.undirected_neighbors(&zero).contains(&zero));
    }

    #[test]
    fn undirected_neighbors_match_figure_1b() {
        // In the undirected DG(2,3) of Figure 1(b), 010 and 101 are
        // mutually adjacent both ways; check 010's neighborhood.
        let g = DeBruijn::new(2, 3).unwrap();
        let x = Word::parse(2, "010").unwrap();
        let n: Vec<String> = g
            .undirected_neighbors(&x)
            .iter()
            .map(|w| w.to_string())
            .collect();
        assert_eq!(n, ["001", "100", "101"]);
    }

    #[test]
    fn degrees_match_paper_census_directed() {
        // Directed DG(d,k): N − d vertices of degree 2d, d of degree 2d−2
        // (the uniform words aaa…a lose their two self-loop incidences).
        for (d, k) in [(2u8, 3usize), (3, 3), (2, 4)] {
            let g = DeBruijn::new(d, k).unwrap();
            let mut full = 0usize;
            let mut reduced = 0usize;
            for w in g.vertices() {
                let deg = g.directed_out_neighbors(&w).len() + g.directed_in_neighbors(&w).len();
                if deg == 2 * d as usize {
                    full += 1;
                } else if deg == 2 * d as usize - 2 {
                    reduced += 1;
                } else {
                    panic!("unexpected directed degree {deg} for {w}");
                }
            }
            let n = g.order_usize().unwrap();
            assert_eq!(full, n - d as usize, "d={d} k={k}");
            assert_eq!(reduced, d as usize, "d={d} k={k}");
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric_undirected() {
        let g = DeBruijn::new(3, 2).unwrap();
        for w in g.vertices() {
            for n in g.undirected_neighbors(&w) {
                assert!(
                    g.undirected_neighbors(&n).contains(&w),
                    "asymmetric neighbor pair {w} / {n}"
                );
            }
        }
    }

    #[test]
    fn contains_checks_space_membership() {
        let g = DeBruijn::new(2, 3).unwrap();
        assert!(g.contains(&Word::parse(2, "010").unwrap()));
        assert!(!g.contains(&Word::parse(2, "01").unwrap()));
        assert!(!g.contains(&Word::parse(3, "010").unwrap()));
    }

    #[test]
    fn huge_spaces_report_order_overflow() {
        let g = DeBruijn::new(255, 1000).unwrap();
        assert_eq!(g.order(), None);
        assert_eq!(g.order_usize(), None);
    }
}
