//! Vertices of the de Bruijn graph: `d`-ary words of length `k`.
//!
//! A vertex `X = (x_1, …, x_k)` of `DG(d,k)` is the state of a `k`-stage
//! shift register over `d`-ary digits. The two register operations define
//! the edges of the graph:
//!
//! * the **left shift** `X⁻(a) = (x_2, …, x_k, a)` (type-L neighbor),
//! * the **right shift** `X⁺(a) = (a, x_1, …, x_{k−1})` (type-R neighbor).

use std::fmt;

use crate::error::Error;

/// A `d`-ary word of length `k ≥ 1`: a vertex of `DG(d,k)`.
///
/// Words are immutable; the shift operations return new words. Two words
/// compare equal iff they have the same radix and the same digits.
///
/// # Examples
///
/// ```
/// use debruijn_core::Word;
///
/// let x = Word::parse(2, "0110")?;
/// assert_eq!(x.shift_left(1).to_string(), "1101");
/// assert_eq!(x.shift_right(1).to_string(), "1011");
/// assert_eq!(x.rank(), 0b0110);
/// # Ok::<(), debruijn_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Word {
    d: u8,
    digits: Vec<u8>,
}

impl Word {
    /// Creates a word from its digits, most significant (leftmost, `x_1`)
    /// first.
    ///
    /// # Errors
    ///
    /// Returns an error if `d < 2`, if `digits` is empty, or if any digit
    /// is `>= d`.
    pub fn new(d: u8, digits: Vec<u8>) -> Result<Self, Error> {
        if d < 2 {
            return Err(Error::RadixTooSmall { d });
        }
        if digits.is_empty() {
            return Err(Error::LengthTooSmall);
        }
        if let Some((index, &digit)) = digits.iter().enumerate().find(|&(_, &digit)| digit >= d) {
            return Err(Error::DigitOutOfRange { digit, d, index });
        }
        Ok(Self { d, digits })
    }

    /// Creates the uniform word `(a, a, …, a)` of length `k`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Word::new`].
    pub fn uniform(d: u8, k: usize, a: u8) -> Result<Self, Error> {
        Self::new(d, vec![a; k])
    }

    /// Creates the word of length `k` whose digits are the radix-`d`
    /// representation of `rank` (most significant digit first).
    ///
    /// This is the inverse of [`Word::rank`]; it gives the canonical
    /// bijection `{0, …, d^k − 1} ↔ V(DG(d,k))` used by the explicit-graph
    /// crates.
    ///
    /// # Errors
    ///
    /// Returns an error if `d < 2`, `k < 1`, or `rank >= d^k`.
    pub fn from_rank(d: u8, k: usize, rank: u128) -> Result<Self, Error> {
        if d < 2 {
            return Err(Error::RadixTooSmall { d });
        }
        if k < 1 {
            return Err(Error::LengthTooSmall);
        }
        let mut digits = vec![0u8; k];
        let mut rest = rank;
        for slot in digits.iter_mut().rev() {
            *slot = (rest % u128::from(d)) as u8;
            rest /= u128::from(d);
        }
        if rest != 0 {
            return Err(Error::RankOutOfRange { rank, d, k });
        }
        Ok(Self { d, digits })
    }

    /// Parses a word from text.
    ///
    /// For radices up to 10 the format is one ASCII digit per symbol
    /// (`"0120"`); larger radices additionally accept digits separated by
    /// dots (`"11.3.0"`), which is also what [`Word`]'s `Display` produces
    /// for them.
    ///
    /// # Errors
    ///
    /// Returns an error on empty input, unparsable characters, or digits
    /// `>= d`.
    pub fn parse(d: u8, text: &str) -> Result<Self, Error> {
        let digits: Result<Vec<u8>, Error> = if text.contains('.') {
            text.split('.')
                .enumerate()
                .map(|(index, part)| part.parse::<u8>().map_err(|_| Error::ParseDigit { index }))
                .collect()
        } else {
            text.bytes()
                .enumerate()
                .map(|(index, b)| {
                    if b.is_ascii_digit() {
                        Ok(b - b'0')
                    } else {
                        Err(Error::ParseDigit { index })
                    }
                })
                .collect()
        };
        let digits = digits?;
        if digits.is_empty() {
            return Err(Error::ParseEmpty);
        }
        Self::new(d, digits)
    }

    /// The digit radix `d`.
    pub fn radix(&self) -> u8 {
        self.d
    }

    /// The word length `k`.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// Always `false`: words have length at least 1. Provided for API
    /// completeness alongside [`Word::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The digits, leftmost (`x_1`) first.
    pub fn digits(&self) -> &[u8] {
        &self.digits
    }

    /// The paper's 1-indexed digit accessor: `x(1) = x_1`, …, `x(k) = x_k`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is `0` or greater than `k`.
    pub fn digit_1idx(&self, i: usize) -> u8 {
        assert!(
            i >= 1 && i <= self.len(),
            "1-indexed digit {i} out of range"
        );
        self.digits[i - 1]
    }

    /// The rank of this word: its digits read as a radix-`d` number.
    ///
    /// Inverse of [`Word::from_rank`]. Words of length up to 128 binary
    /// digits (and correspondingly fewer for larger `d`) fit; beyond that
    /// the rank arithmetic would overflow.
    ///
    /// # Panics
    ///
    /// Panics if `d^k` overflows `u128`.
    pub fn rank(&self) -> u128 {
        let mut rank: u128 = 0;
        for &digit in &self.digits {
            rank = rank
                .checked_mul(u128::from(self.d))
                .and_then(|r| r.checked_add(u128::from(digit)))
                .expect("word rank overflows u128");
        }
        rank
    }

    /// The left shift `X⁻(a) = (x_2, …, x_k, a)` — the type-L neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `a >= d`.
    pub fn shift_left(&self, a: u8) -> Word {
        assert!(a < self.d, "shift digit {a} not below radix {}", self.d);
        let mut digits = Vec::with_capacity(self.digits.len());
        digits.extend_from_slice(&self.digits[1..]);
        digits.push(a);
        Word { d: self.d, digits }
    }

    /// The right shift `X⁺(a) = (a, x_1, …, x_{k−1})` — the type-R
    /// neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `a >= d`.
    pub fn shift_right(&self, a: u8) -> Word {
        assert!(a < self.d, "shift digit {a} not below radix {}", self.d);
        let mut digits = Vec::with_capacity(self.digits.len());
        digits.push(a);
        digits.extend_from_slice(&self.digits[..self.digits.len() - 1]);
        Word { d: self.d, digits }
    }

    /// The reversal `X̄ = (x_k, …, x_1)`.
    ///
    /// Used by the `r`-family matching functions through the identity
    /// `r_{i,j}(X,Y) = l_{k+1−i,k+1−j}(X̄,Ȳ)`.
    pub fn reversed(&self) -> Word {
        let mut digits = self.digits.clone();
        digits.reverse();
        Word { d: self.d, digits }
    }

    /// Whether `other` lives in the same `DG(d,k)` (same radix and
    /// length).
    pub fn same_space(&self, other: &Word) -> bool {
        self.d == other.d && self.len() == other.len()
    }

    /// Digits widened to `u32`, for the suffix-tree engines.
    pub fn digits_u32(&self) -> Vec<u32> {
        self.digits.iter().map(|&b| u32::from(b)).collect()
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.d <= 10 {
            for &digit in &self.digits {
                write!(f, "{digit}")?;
            }
        } else {
            for (i, &digit) in self.digits.iter().enumerate() {
                if i > 0 {
                    write!(f, ".")?;
                }
                write!(f, "{digit}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_digits() {
        assert!(Word::new(2, vec![0, 1, 0]).is_ok());
        assert_eq!(
            Word::new(2, vec![0, 2, 0]),
            Err(Error::DigitOutOfRange {
                digit: 2,
                d: 2,
                index: 1
            })
        );
        assert_eq!(Word::new(1, vec![0]), Err(Error::RadixTooSmall { d: 1 }));
        assert_eq!(Word::new(2, vec![]), Err(Error::LengthTooSmall));
    }

    #[test]
    fn shifts_match_paper_definitions() {
        let x = Word::new(3, vec![0, 1, 2]).unwrap();
        assert_eq!(x.shift_left(2).digits(), &[1, 2, 2]);
        assert_eq!(x.shift_right(1).digits(), &[1, 0, 1]);
    }

    #[test]
    fn left_then_right_shift_restores_with_original_digit() {
        let x = Word::new(2, vec![1, 0, 1, 1]).unwrap();
        for a in 0..2 {
            let y = x.shift_left(a).shift_right(x.digits()[0]);
            assert_eq!(y, x, "a={a}");
        }
    }

    #[test]
    fn right_then_left_shift_restores_with_original_digit() {
        let x = Word::new(2, vec![1, 0, 1, 1]).unwrap();
        for a in 0..2 {
            let last = *x.digits().last().unwrap();
            assert_eq!(x.shift_right(a).shift_left(last), x, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "not below radix")]
    fn shift_rejects_oversized_digit() {
        Word::new(2, vec![0, 1]).unwrap().shift_left(2);
    }

    #[test]
    fn rank_round_trips() {
        for d in [2u8, 3, 5] {
            let k = 4usize;
            let n = u128::from(d).pow(k as u32);
            for rank in 0..n {
                let w = Word::from_rank(d, k, rank).unwrap();
                assert_eq!(w.rank(), rank, "d={d} rank={rank}");
                assert_eq!(w.len(), k);
            }
        }
    }

    #[test]
    fn from_rank_rejects_out_of_range() {
        assert_eq!(
            Word::from_rank(2, 3, 8),
            Err(Error::RankOutOfRange {
                rank: 8,
                d: 2,
                k: 3
            })
        );
        assert!(Word::from_rank(2, 3, 7).is_ok());
    }

    #[test]
    fn parse_and_display_round_trip_small_radix() {
        let w = Word::parse(4, "0312").unwrap();
        assert_eq!(w.digits(), &[0, 3, 1, 2]);
        assert_eq!(w.to_string(), "0312");
    }

    #[test]
    fn parse_and_display_round_trip_large_radix() {
        let w = Word::parse(16, "11.3.0.15").unwrap();
        assert_eq!(w.digits(), &[11, 3, 0, 15]);
        assert_eq!(w.to_string(), "11.3.0.15");
        let again = Word::parse(16, &w.to_string()).unwrap();
        assert_eq!(again, w);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!(Word::parse(2, ""), Err(Error::ParseEmpty));
        assert_eq!(Word::parse(2, "01a"), Err(Error::ParseDigit { index: 2 }));
        assert_eq!(
            Word::parse(2, "012"),
            Err(Error::DigitOutOfRange {
                digit: 2,
                d: 2,
                index: 2
            })
        );
        assert_eq!(
            Word::parse(16, "1.x.2"),
            Err(Error::ParseDigit { index: 1 })
        );
    }

    #[test]
    fn reversal_is_involutive() {
        let w = Word::parse(3, "01202").unwrap();
        assert_eq!(w.reversed().reversed(), w);
        assert_eq!(w.reversed().digits(), &[2, 0, 2, 1, 0]);
    }

    #[test]
    fn digit_1idx_matches_paper_indexing() {
        let w = Word::parse(2, "011").unwrap();
        assert_eq!(w.digit_1idx(1), 0);
        assert_eq!(w.digit_1idx(3), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_1idx_rejects_zero() {
        Word::parse(2, "011").unwrap().digit_1idx(0);
    }

    #[test]
    fn same_space_requires_matching_radix_and_length() {
        let a = Word::parse(2, "01").unwrap();
        let b = Word::parse(2, "011").unwrap();
        let c = Word::parse(3, "01").unwrap();
        assert!(!a.same_space(&b));
        assert!(!a.same_space(&c));
        assert!(a.same_space(&a.clone()));
    }

    #[test]
    fn uniform_builds_constant_words() {
        let w = Word::uniform(3, 4, 2).unwrap();
        assert_eq!(w.digits(), &[2, 2, 2, 2]);
        assert!(Word::uniform(3, 4, 3).is_err());
    }
}
